#!/usr/bin/env bash
# Lint + test gate for the whole workspace.
#
# Usage: scripts/ci.sh [--release]
# - clippy with warnings denied (vendor/ stubs included: they compile as
#   workspace members and must stay warning-free too)
# - the full test suite (unit + property + integration)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=()
if [[ "${1:-}" == "--release" ]]; then
  MODE=(--release)
fi

echo "=== clippy (deny warnings) ==="
cargo clippy --workspace --all-targets "${MODE[@]}" -- -D warnings

echo "=== tests ==="
cargo test --workspace -q "${MODE[@]}"

echo "CI gate passed."
