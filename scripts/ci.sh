#!/usr/bin/env bash
# Lint + test gate for the whole workspace.
#
# Usage: scripts/ci.sh [--release]
# - clippy with warnings denied (vendor/ stubs included: they compile as
#   workspace members and must stay warning-free too)
# - the full test suite (unit + property + integration), run twice: once on
#   a single-worker pool and once on four workers. FV_THREADS is read once
#   per process, so the two passes are what exercises both the sequential
#   fast paths and real work-stealing (races, panic propagation, and the
#   deterministic-chunking contract of vendor/fv-runtime).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=()
if [[ "${1:-}" == "--release" ]]; then
  MODE=(--release)
fi

echo "=== clippy (deny warnings) ==="
cargo clippy --workspace --all-targets "${MODE[@]}" -- -D warnings

echo "=== tests (FV_THREADS=1) ==="
FV_THREADS=1 cargo test --workspace -q "${MODE[@]}"

echo "=== tests (FV_THREADS=4) ==="
FV_THREADS=4 cargo test --workspace -q "${MODE[@]}"

echo "CI gate passed."
