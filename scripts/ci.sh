#!/usr/bin/env bash
# Lint + test gate for the whole workspace.
#
# Usage: scripts/ci.sh [--release]
# - clippy with warnings denied (vendor/ stubs included: they compile as
#   workspace members and must stay warning-free too)
# - the full test suite (unit + property + integration), run twice: once on
#   a single-worker pool and once on four workers. FV_THREADS is read once
#   per process, so the two passes are what exercises both the sequential
#   fast paths and real work-stealing (races, panic propagation, and the
#   deterministic-chunking contract of vendor/fv-runtime).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=()
if [[ "${1:-}" == "--release" ]]; then
  MODE=(--release)
fi

echo "=== clippy (deny warnings) ==="
cargo clippy --workspace --all-targets "${MODE[@]}" -- -D warnings

echo "=== rustdoc (deny warnings) ==="
# Broken intra-doc links and malformed doc comments fail the gate: the API
# docs are the contract surface for every crate in the workspace.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "=== tests (FV_THREADS=1) ==="
FV_THREADS=1 cargo test --workspace -q "${MODE[@]}"

echo "=== tests (FV_THREADS=4) ==="
FV_THREADS=4 cargo test --workspace -q "${MODE[@]}"

echo "=== chaos smoke (seeded fault sweeps, 1 and 4 workers) ==="
# The chaos suite (tests/chaos.rs) sweeps 32 seeds per fault kind through
# the supervised in-situ session; every step must answer (Ok + finite
# field, fallback reported) and nothing may hang. The suite has its own
# per-sweep watchdog; the outer `timeout` is the backstop that fails the
# gate if the harness itself wedges.
for t in 1 4; do
  FV_THREADS=$t timeout 900 cargo test -q "${MODE[@]}" --test chaos \
    || { echo "chaos smoke failed (FV_THREADS=$t)"; exit 1; }
done

echo "=== runtime smoke (thread scaling + bitwise determinism) ==="
# exp_runtime exits non-zero on its own when reconstructions diverge across
# thread counts; on top of that, gate the two workspace-layer guarantees:
# every row bitwise-matches the 1-thread reference, and 4-thread training is
# not slower than 1-thread (>10% tolerance for machine noise).
cargo run --release -q -p fv-bench --bin exp_runtime > /dev/null
python3 - <<'EOF'
import json, sys
rows = json.load(open("BENCH_runtime.json"))["rows"]
bad = [r["threads"] for r in rows if not r["bitwise_match"]]
if bad:
    sys.exit(f"runtime smoke: bitwise divergence at threads={bad}")
t = {r["threads"]: r["train_s"] for r in rows}
if t[4] > 1.10 * t[1]:
    sys.exit(f"runtime smoke: 4-thread training regressed: {t[4]:.3f}s vs {t[1]:.3f}s at 1 thread")
print(f"runtime smoke ok: train 1T={t[1]:.3f}s 4T={t[4]:.3f}s, all rows bitwise-identical")
EOF

echo "=== gemm kernel stage (microkernel parity, portable vs auto dispatch) ==="
# The packed-GEMM layer promises bitwise-identical products no matter which
# microkernel dispatch picks (DESIGN.md §15). The parity suite pins every
# product variant against a canonical-order reference under both kernels
# in-process; on top of that, run the whole training + reconstruction
# experiment once per FV_GEMM_KERNEL setting and require identical SNR and
# an identical reconstruction fingerprint across the two processes.
for kern in portable auto; do
  FV_GEMM_KERNEL=$kern cargo test -q "${MODE[@]}" --test gemm \
    || { echo "gemm parity suite failed (FV_GEMM_KERNEL=$kern)"; exit 1; }
done
FV_GEMM_KERNEL=portable cargo run --release -q -p fv-bench --bin exp_runtime > /dev/null
mv BENCH_runtime.json BENCH_runtime_portable.json
FV_GEMM_KERNEL=auto cargo run --release -q -p fv-bench --bin exp_runtime > /dev/null
python3 - <<'EOF'
import json, sys
p = json.load(open("BENCH_runtime_portable.json"))
a = json.load(open("BENCH_runtime.json"))
for rp, ra in zip(p["rows"], a["rows"]):
    if rp["snr_db"] != ra["snr_db"] or rp["recon_fnv"] != ra["recon_fnv"]:
        sys.exit(
            f"gemm stage: portable vs auto diverged at threads={rp['threads']}: "
            f"snr {rp['snr_db']} vs {ra['snr_db']}, fnv {rp['recon_fnv']} vs {ra['recon_fnv']}"
        )
    if not (rp["bitwise_match"] and ra["bitwise_match"]):
        sys.exit(f"gemm stage: in-run divergence at threads={rp['threads']}")
g = a["gemm"]
if g["detected"][-1] != "portable":
    sys.exit(f"gemm stage: detected-kernel list must end with portable, got {g['detected']}")
for v in g["variants"]:
    if v["pack_grows"] != 1 or v["pack_reuses"] != v["pack_calls"] - 1:
        sys.exit(f"gemm stage: pack buffers not reused in steady state: {v}")
print(
    f"gemm stage ok: active={g['active_kernel']} detected={g['detected']}, "
    + ", ".join(f"{v['kernel']} {v['gflops']:.1f} GF/s" for v in g["variants"])
    + ", SNR + fingerprint identical across kernels"
)
EOF
rm -f BENCH_runtime_portable.json

echo "=== telemetry smoke (zero-cost when disabled, bitwise-identical when enabled) ==="
# Re-run the runtime experiment with FV_TELEMETRY=1 and hold the
# observability layer to its contract: identical SNR per row (recording
# must never perturb the numerics), a telemetry section present in the
# JSON covering the pool / training / kNN / reconstruction / in-situ
# sites, and a 1-thread training wall-clock within 25% of the disabled
# run. Measured overhead is ~3%; the generous slack absorbs co-tenant
# noise on shared CI machines while still catching an accidentally hot
# always-on path (those cost multiples, not percents).
cp BENCH_runtime.json BENCH_runtime_disabled.json
FV_TELEMETRY=1 cargo run --release -q -p fv-bench --bin exp_runtime > /dev/null
python3 - <<'EOF'
import json, sys
off = json.load(open("BENCH_runtime_disabled.json"))
on = json.load(open("BENCH_runtime.json"))
if "telemetry" in off:
    sys.exit("telemetry smoke: disabled run exported a telemetry section")
if "telemetry" not in on:
    sys.exit("telemetry smoke: enabled run is missing the telemetry section")
for a, b in zip(off["rows"], on["rows"]):
    if a["snr_db"] != b["snr_db"] or not b["bitwise_match"]:
        sys.exit(f"telemetry smoke: numerics diverged at threads={a['threads']}")
names = {s["name"] for s in on["telemetry"]["sites"]}
names |= {c["name"] for c in on["telemetry"]["counters"]}
want = {"pool.jobs", "train.step", "spatial.knn_batch", "core.feature_build", "recon", "insitu.step", "brick.pipeline", "brick.completed", "linalg.gemm.pack", "linalg.gemm.kernel", "linalg.gemm.pack_bytes"}
missing = want - names
if missing:
    sys.exit(f"telemetry smoke: expected sites missing from snapshot: {sorted(missing)}")
t_off = {r["threads"]: r["train_s"] for r in off["rows"]}
t_on = {r["threads"]: r["train_s"] for r in on["rows"]}
if t_on[1] > 1.25 * t_off[1]:
    sys.exit(f"telemetry smoke: enabled training too slow: {t_on[1]:.3f}s vs {t_off[1]:.3f}s disabled")
print(f"telemetry smoke ok: {len(names)} instruments, train 1T {t_off[1]:.3f}s -> {t_on[1]:.3f}s enabled")
EOF
rm -f BENCH_runtime_disabled.json

echo "=== brick resume smoke (out-of-core memory bound + crash-only recovery) ==="
# exp_brick streams the volume through fixed-size bricks, then injects a
# seeded mid-volume crash and resumes from the per-brick ledger. The gate
# holds the ISSUE's acceptance bar: the streamed volume bitwise-matches the
# whole-grid path, peak in-flight bytes stay within the configured budget,
# and the resumed run reuses every durable brick (resumed > 0) while
# recomputing exactly the unfinished remainder, again to identical bits.
cargo run --release -q -p fv-bench --bin exp_brick > /dev/null
python3 - <<'EOF'
import json, sys
b = json.load(open("BENCH_brick.json"))
if not b["bitwise_equal"]:
    sys.exit("brick smoke: bricked volume diverged from whole-grid")
if not b["inflight_within_budget"]:
    sys.exit(f"brick smoke: in-flight {b['peak_inflight_bytes']} B exceeded budget {b['budget_bytes']} B")
if b["volume_bytes"] < 4 * b["budget_bytes"]:
    sys.exit("brick smoke: volume is not >= 4x the brick budget (not out-of-core)")
r = b["resume"]
if not r["bitwise_equal"]:
    sys.exit("brick smoke: resumed volume diverged from whole-grid")
if r["resumed"] <= 0 or r["resumed"] >= r["total"]:
    sys.exit(f"brick smoke: crash was not mid-volume ({r['resumed']}/{r['total']} resumed)")
if r["resumed"] + r["recomputed"] != r["total"]:
    sys.exit(f"brick smoke: resume recomputed {r['recomputed']} with {r['resumed']} durable, expected {r['total']} total")
print(f"brick smoke ok: {b['total_bricks']} bricks, inflight {b['peak_inflight_bytes']}/{b['budget_bytes']} B, "
      f"resume reused {r['resumed']} + recomputed {r['recomputed']}, bitwise-identical")
EOF

echo "=== serve smoke (reconstruction-as-a-service, 1 and 4 workers) ==="
# exp_serve starts a loopback server on an ephemeral port, runs client
# fleets at 1/4/16/64 connections, and exits non-zero on its own if any
# served volume diverges bitwise from the in-process reconstruction or if
# micro-batched p99 fails to beat batch-size-1 mode at 16 clients. It then
# runs the hot-swap storm: 100 model promotions under a 16-client fleet,
# preceded by one deliberately canary-rejected candidate. The gate
# re-checks everything from the JSON at 1 and 4 workers (the batcher's
# packed passes must stay bitwise-stable across pool sizes): zero dropped
# or misrouted requests across all 100 swaps, exactly one canary
# rejection, drain/p99 timing fields present, and a clean shutdown that
# left no stray temp files behind. Finally the brick-stream segment: an
# over-cap volume must be redirected to ReconstructBricked, stream back
# bitwise-identical, resume a torn stream without redoing committed
# bricks, and keep a second tenant's dense p99 within 3x its unloaded
# baseline while the bulk stream runs.
for t in 1 4; do
  FV_THREADS=$t timeout 600 cargo run --release -q -p fv-bench --bin exp_serve > /dev/null \
    || { echo "serve smoke failed (FV_THREADS=$t)"; exit 1; }
  FV_T=$t python3 - <<'EOF'
import glob, json, os, sys
s = json.load(open("BENCH_serve.json"))
t = os.environ["FV_T"]
if not s["bitwise_equal"]:
    sys.exit(f"serve smoke (FV_THREADS={t}): served volume diverged from the in-process path")
if not s["batched_p99_beats_batch1"]:
    sys.exit(f"serve smoke (FV_THREADS={t}): micro-batched p99 did not beat batch-size-1 at 16 clients")
if s["degraded_responses"] != 0:
    sys.exit(f"serve smoke (FV_THREADS={t}): {s['degraded_responses']} degraded responses on a healthy model")
sw = s["swap"]
if sw["swaps"] != 100 or sw["promoted"] != 100:
    sys.exit(f"serve smoke (FV_THREADS={t}): swap storm ran {sw['promoted']}/{sw['swaps']} promotions, expected 100/100")
if sw["dropped"] != 0 or sw["misrouted"] != 0:
    sys.exit(f"serve smoke (FV_THREADS={t}): hot-swap dropped {sw['dropped']} / misrouted {sw['misrouted']} requests")
if sw["rejected_canary"] != 1:
    sys.exit(f"serve smoke (FV_THREADS={t}): expected exactly 1 canary rejection, saw {sw['rejected_canary']}")
for k in ("p99_during_swap_ms", "drain_ms_max", "canary_ms_mean"):
    if not (sw[k] >= 0):
        sys.exit(f"serve smoke (FV_THREADS={t}): swap timing field {k} is missing or NaN")
st = s["stream"]
if not st["bitwise_equal"]:
    sys.exit(f"serve smoke (FV_THREADS={t}): brick stream diverged bitwise from the in-process path")
if not st["over_cap_rejected"]:
    sys.exit(f"serve smoke (FV_THREADS={t}): over-cap dense request was served instead of redirected to the stream path")
if st["fairness_ratio"] > 3.0:
    sys.exit(f"serve smoke (FV_THREADS={t}): interactive p99 degraded {st['fairness_ratio']:.2f}x under a bulk stream (cap 3x)")
if st["resume_skipped"] <= 0:
    sys.exit(f"serve smoke (FV_THREADS={t}): healed stream recomputed every brick instead of resuming")
stray = glob.glob("*.tmp")
if stray:
    sys.exit(f"serve smoke (FV_THREADS={t}): stray temp files after shutdown: {stray}")
fleet = {f["clients"]: f for f in s["fleet"]}
print(f"serve smoke ok (FV_THREADS={t}): 16-client p99 {fleet[16]['p99_ms']:.1f} ms batched "
      f"vs {s['batch1_16c']['p99_ms']:.1f} ms batch-1, all volumes bitwise-identical; "
      f"{sw['promoted']} hot-swaps, 0 dropped/misrouted, worst drain {sw['drain_ms_max']:.1f} ms; "
      f"{st['total_bricks']}-brick stream bitwise, fairness {st['fairness_ratio']:.2f}x, "
      f"resume skipped {st['resume_skipped']}")
EOF
done

echo "CI gate passed."
