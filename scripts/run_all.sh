#!/usr/bin/env bash
# Regenerate every table/figure of the paper plus the extension studies.
#
# Usage: scripts/run_all.sh [--tiny|--small|--medium|--full] [--seed N]
# Output: one log per experiment under results/, reused by EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

FLAGS=("$@")
mkdir -p results

# Fail fast if the workspace doesn't pass the lint+test gate: a broken
# build should not burn hours of experiment time first.
scripts/ci.sh

BINS=(
  exp_fig06 exp_fig07 exp_fig08 exp_fig09 exp_fig10 exp_fig11 exp_fig12
  exp_fig13 exp_fig14 exp_table1 exp_table2 exp_qualitative
  exp_ablation_features exp_ablation_k exp_ablation_sampler
  exp_ablation_finetune exp_ext_uncertainty exp_ext_spatial exp_serve
)

cargo build --release -p fv-bench --bins

for bin in "${BINS[@]}"; do
  echo "=== $bin ${FLAGS[*]:-} ==="
  ./target/release/"$bin" "${FLAGS[@]}" | tee "results/$bin.txt"
done

echo "All experiment logs written to results/"
