/root/repo/target/release/deps/exp_fig08-a70a4513fd0f5705.d: crates/bench/src/bin/exp_fig08.rs

/root/repo/target/release/deps/exp_fig08-a70a4513fd0f5705: crates/bench/src/bin/exp_fig08.rs

crates/bench/src/bin/exp_fig08.rs:
