/root/repo/target/release/deps/fv_sampling-b382788da63c091d.d: /root/repo/crates/sampling/src/lib.rs /root/repo/crates/sampling/src/cloud.rs /root/repo/crates/sampling/src/importance.rs /root/repo/crates/sampling/src/random.rs /root/repo/crates/sampling/src/regular.rs /root/repo/crates/sampling/src/storage.rs /root/repo/crates/sampling/src/stratified.rs /root/repo/crates/sampling/src/value_stratified.rs

/root/repo/target/release/deps/libfv_sampling-b382788da63c091d.rlib: /root/repo/crates/sampling/src/lib.rs /root/repo/crates/sampling/src/cloud.rs /root/repo/crates/sampling/src/importance.rs /root/repo/crates/sampling/src/random.rs /root/repo/crates/sampling/src/regular.rs /root/repo/crates/sampling/src/storage.rs /root/repo/crates/sampling/src/stratified.rs /root/repo/crates/sampling/src/value_stratified.rs

/root/repo/target/release/deps/libfv_sampling-b382788da63c091d.rmeta: /root/repo/crates/sampling/src/lib.rs /root/repo/crates/sampling/src/cloud.rs /root/repo/crates/sampling/src/importance.rs /root/repo/crates/sampling/src/random.rs /root/repo/crates/sampling/src/regular.rs /root/repo/crates/sampling/src/storage.rs /root/repo/crates/sampling/src/stratified.rs /root/repo/crates/sampling/src/value_stratified.rs

/root/repo/crates/sampling/src/lib.rs:
/root/repo/crates/sampling/src/cloud.rs:
/root/repo/crates/sampling/src/importance.rs:
/root/repo/crates/sampling/src/random.rs:
/root/repo/crates/sampling/src/regular.rs:
/root/repo/crates/sampling/src/storage.rs:
/root/repo/crates/sampling/src/stratified.rs:
/root/repo/crates/sampling/src/value_stratified.rs:
