/root/repo/target/release/deps/fv_linalg-54d4a745dab92695.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/scalar.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libfv_linalg-54d4a745dab92695.rlib: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/scalar.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libfv_linalg-54d4a745dab92695.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/scalar.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/scalar.rs:
crates/linalg/src/vector.rs:
