/root/repo/target/release/deps/fillvoid-44fc9a69d1692562.d: /root/repo/src/lib.rs

/root/repo/target/release/deps/libfillvoid-44fc9a69d1692562.rlib: /root/repo/src/lib.rs

/root/repo/target/release/deps/libfillvoid-44fc9a69d1692562.rmeta: /root/repo/src/lib.rs

/root/repo/src/lib.rs:
