/root/repo/target/release/deps/exp_fig10-15d4f2529c637ec2.d: crates/bench/src/bin/exp_fig10.rs

/root/repo/target/release/deps/exp_fig10-15d4f2529c637ec2: crates/bench/src/bin/exp_fig10.rs

crates/bench/src/bin/exp_fig10.rs:
