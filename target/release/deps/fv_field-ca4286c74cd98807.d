/root/repo/target/release/deps/fv_field-ca4286c74cd98807.d: crates/field/src/lib.rs crates/field/src/checksum.rs crates/field/src/error.rs crates/field/src/faults.rs crates/field/src/gradient.rs crates/field/src/grid.rs crates/field/src/io.rs crates/field/src/resample.rs crates/field/src/stats.rs crates/field/src/volume.rs

/root/repo/target/release/deps/libfv_field-ca4286c74cd98807.rlib: crates/field/src/lib.rs crates/field/src/checksum.rs crates/field/src/error.rs crates/field/src/faults.rs crates/field/src/gradient.rs crates/field/src/grid.rs crates/field/src/io.rs crates/field/src/resample.rs crates/field/src/stats.rs crates/field/src/volume.rs

/root/repo/target/release/deps/libfv_field-ca4286c74cd98807.rmeta: crates/field/src/lib.rs crates/field/src/checksum.rs crates/field/src/error.rs crates/field/src/faults.rs crates/field/src/gradient.rs crates/field/src/grid.rs crates/field/src/io.rs crates/field/src/resample.rs crates/field/src/stats.rs crates/field/src/volume.rs

crates/field/src/lib.rs:
crates/field/src/checksum.rs:
crates/field/src/error.rs:
crates/field/src/faults.rs:
crates/field/src/gradient.rs:
crates/field/src/grid.rs:
crates/field/src/io.rs:
crates/field/src/resample.rs:
crates/field/src/stats.rs:
crates/field/src/volume.rs:
