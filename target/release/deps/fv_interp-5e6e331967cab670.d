/root/repo/target/release/deps/fv_interp-5e6e331967cab670.d: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/idw.rs crates/interp/src/linear.rs crates/interp/src/natural.rs crates/interp/src/nearest.rs crates/interp/src/rbf.rs crates/interp/src/shepard.rs

/root/repo/target/release/deps/libfv_interp-5e6e331967cab670.rlib: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/idw.rs crates/interp/src/linear.rs crates/interp/src/natural.rs crates/interp/src/nearest.rs crates/interp/src/rbf.rs crates/interp/src/shepard.rs

/root/repo/target/release/deps/libfv_interp-5e6e331967cab670.rmeta: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/idw.rs crates/interp/src/linear.rs crates/interp/src/natural.rs crates/interp/src/nearest.rs crates/interp/src/rbf.rs crates/interp/src/shepard.rs

crates/interp/src/lib.rs:
crates/interp/src/error.rs:
crates/interp/src/idw.rs:
crates/interp/src/linear.rs:
crates/interp/src/natural.rs:
crates/interp/src/nearest.rs:
crates/interp/src/rbf.rs:
crates/interp/src/shepard.rs:
