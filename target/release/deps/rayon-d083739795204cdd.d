/root/repo/target/release/deps/rayon-d083739795204cdd.d: /root/repo/vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-d083739795204cdd.rlib: /root/repo/vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-d083739795204cdd.rmeta: /root/repo/vendor/rayon/src/lib.rs

/root/repo/vendor/rayon/src/lib.rs:
