/root/repo/target/release/deps/exp_ablation_finetune-c9c54fd52a4a8315.d: crates/bench/src/bin/exp_ablation_finetune.rs

/root/repo/target/release/deps/exp_ablation_finetune-c9c54fd52a4a8315: crates/bench/src/bin/exp_ablation_finetune.rs

crates/bench/src/bin/exp_ablation_finetune.rs:
