/root/repo/target/release/deps/fv_linalg-ceab221b918d2e74.d: /root/repo/crates/linalg/src/lib.rs /root/repo/crates/linalg/src/cholesky.rs /root/repo/crates/linalg/src/error.rs /root/repo/crates/linalg/src/lu.rs /root/repo/crates/linalg/src/matrix.rs /root/repo/crates/linalg/src/scalar.rs /root/repo/crates/linalg/src/vector.rs

/root/repo/target/release/deps/libfv_linalg-ceab221b918d2e74.rlib: /root/repo/crates/linalg/src/lib.rs /root/repo/crates/linalg/src/cholesky.rs /root/repo/crates/linalg/src/error.rs /root/repo/crates/linalg/src/lu.rs /root/repo/crates/linalg/src/matrix.rs /root/repo/crates/linalg/src/scalar.rs /root/repo/crates/linalg/src/vector.rs

/root/repo/target/release/deps/libfv_linalg-ceab221b918d2e74.rmeta: /root/repo/crates/linalg/src/lib.rs /root/repo/crates/linalg/src/cholesky.rs /root/repo/crates/linalg/src/error.rs /root/repo/crates/linalg/src/lu.rs /root/repo/crates/linalg/src/matrix.rs /root/repo/crates/linalg/src/scalar.rs /root/repo/crates/linalg/src/vector.rs

/root/repo/crates/linalg/src/lib.rs:
/root/repo/crates/linalg/src/cholesky.rs:
/root/repo/crates/linalg/src/error.rs:
/root/repo/crates/linalg/src/lu.rs:
/root/repo/crates/linalg/src/matrix.rs:
/root/repo/crates/linalg/src/scalar.rs:
/root/repo/crates/linalg/src/vector.rs:
