/root/repo/target/release/deps/fv_verify_driver-dacfba8dd73ef7ef.d: src/main.rs

/root/repo/target/release/deps/fv_verify_driver-dacfba8dd73ef7ef: src/main.rs

src/main.rs:
