/root/repo/target/release/deps/fv_sims-0360f7c612c5ca0d.d: /root/repo/crates/sims/src/lib.rs /root/repo/crates/sims/src/combustion.rs /root/repo/crates/sims/src/hurricane.rs /root/repo/crates/sims/src/ionization.rs /root/repo/crates/sims/src/noise.rs /root/repo/crates/sims/src/registry.rs

/root/repo/target/release/deps/libfv_sims-0360f7c612c5ca0d.rlib: /root/repo/crates/sims/src/lib.rs /root/repo/crates/sims/src/combustion.rs /root/repo/crates/sims/src/hurricane.rs /root/repo/crates/sims/src/ionization.rs /root/repo/crates/sims/src/noise.rs /root/repo/crates/sims/src/registry.rs

/root/repo/target/release/deps/libfv_sims-0360f7c612c5ca0d.rmeta: /root/repo/crates/sims/src/lib.rs /root/repo/crates/sims/src/combustion.rs /root/repo/crates/sims/src/hurricane.rs /root/repo/crates/sims/src/ionization.rs /root/repo/crates/sims/src/noise.rs /root/repo/crates/sims/src/registry.rs

/root/repo/crates/sims/src/lib.rs:
/root/repo/crates/sims/src/combustion.rs:
/root/repo/crates/sims/src/hurricane.rs:
/root/repo/crates/sims/src/ionization.rs:
/root/repo/crates/sims/src/noise.rs:
/root/repo/crates/sims/src/registry.rs:
