/root/repo/target/release/deps/rand-61469aecb8ab8ca2.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-61469aecb8ab8ca2.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-61469aecb8ab8ca2.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
