/root/repo/target/release/deps/fv_spatial-6775ed3628aa9b70.d: /root/repo/crates/spatial/src/lib.rs /root/repo/crates/spatial/src/delaunay.rs /root/repo/crates/spatial/src/gridindex.rs /root/repo/crates/spatial/src/jitter.rs /root/repo/crates/spatial/src/kdtree.rs /root/repo/crates/spatial/src/morton.rs /root/repo/crates/spatial/src/predicates.rs

/root/repo/target/release/deps/libfv_spatial-6775ed3628aa9b70.rlib: /root/repo/crates/spatial/src/lib.rs /root/repo/crates/spatial/src/delaunay.rs /root/repo/crates/spatial/src/gridindex.rs /root/repo/crates/spatial/src/jitter.rs /root/repo/crates/spatial/src/kdtree.rs /root/repo/crates/spatial/src/morton.rs /root/repo/crates/spatial/src/predicates.rs

/root/repo/target/release/deps/libfv_spatial-6775ed3628aa9b70.rmeta: /root/repo/crates/spatial/src/lib.rs /root/repo/crates/spatial/src/delaunay.rs /root/repo/crates/spatial/src/gridindex.rs /root/repo/crates/spatial/src/jitter.rs /root/repo/crates/spatial/src/kdtree.rs /root/repo/crates/spatial/src/morton.rs /root/repo/crates/spatial/src/predicates.rs

/root/repo/crates/spatial/src/lib.rs:
/root/repo/crates/spatial/src/delaunay.rs:
/root/repo/crates/spatial/src/gridindex.rs:
/root/repo/crates/spatial/src/jitter.rs:
/root/repo/crates/spatial/src/kdtree.rs:
/root/repo/crates/spatial/src/morton.rs:
/root/repo/crates/spatial/src/predicates.rs:
