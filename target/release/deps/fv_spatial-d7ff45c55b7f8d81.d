/root/repo/target/release/deps/fv_spatial-d7ff45c55b7f8d81.d: crates/spatial/src/lib.rs crates/spatial/src/delaunay.rs crates/spatial/src/gridindex.rs crates/spatial/src/jitter.rs crates/spatial/src/kdtree.rs crates/spatial/src/morton.rs crates/spatial/src/predicates.rs

/root/repo/target/release/deps/libfv_spatial-d7ff45c55b7f8d81.rlib: crates/spatial/src/lib.rs crates/spatial/src/delaunay.rs crates/spatial/src/gridindex.rs crates/spatial/src/jitter.rs crates/spatial/src/kdtree.rs crates/spatial/src/morton.rs crates/spatial/src/predicates.rs

/root/repo/target/release/deps/libfv_spatial-d7ff45c55b7f8d81.rmeta: crates/spatial/src/lib.rs crates/spatial/src/delaunay.rs crates/spatial/src/gridindex.rs crates/spatial/src/jitter.rs crates/spatial/src/kdtree.rs crates/spatial/src/morton.rs crates/spatial/src/predicates.rs

crates/spatial/src/lib.rs:
crates/spatial/src/delaunay.rs:
crates/spatial/src/gridindex.rs:
crates/spatial/src/jitter.rs:
crates/spatial/src/kdtree.rs:
crates/spatial/src/morton.rs:
crates/spatial/src/predicates.rs:
