/root/repo/target/release/deps/fillvoid_core-7edd47351b0cab67.d: /root/repo/crates/core/src/lib.rs /root/repo/crates/core/src/checkpoint.rs /root/repo/crates/core/src/error.rs /root/repo/crates/core/src/ensemble.rs /root/repo/crates/core/src/experiment.rs /root/repo/crates/core/src/features.rs /root/repo/crates/core/src/insitu.rs /root/repo/crates/core/src/metrics.rs /root/repo/crates/core/src/normalize.rs /root/repo/crates/core/src/pipeline.rs /root/repo/crates/core/src/render.rs /root/repo/crates/core/src/report.rs /root/repo/crates/core/src/timesteps.rs /root/repo/crates/core/src/upscale.rs

/root/repo/target/release/deps/libfillvoid_core-7edd47351b0cab67.rlib: /root/repo/crates/core/src/lib.rs /root/repo/crates/core/src/checkpoint.rs /root/repo/crates/core/src/error.rs /root/repo/crates/core/src/ensemble.rs /root/repo/crates/core/src/experiment.rs /root/repo/crates/core/src/features.rs /root/repo/crates/core/src/insitu.rs /root/repo/crates/core/src/metrics.rs /root/repo/crates/core/src/normalize.rs /root/repo/crates/core/src/pipeline.rs /root/repo/crates/core/src/render.rs /root/repo/crates/core/src/report.rs /root/repo/crates/core/src/timesteps.rs /root/repo/crates/core/src/upscale.rs

/root/repo/target/release/deps/libfillvoid_core-7edd47351b0cab67.rmeta: /root/repo/crates/core/src/lib.rs /root/repo/crates/core/src/checkpoint.rs /root/repo/crates/core/src/error.rs /root/repo/crates/core/src/ensemble.rs /root/repo/crates/core/src/experiment.rs /root/repo/crates/core/src/features.rs /root/repo/crates/core/src/insitu.rs /root/repo/crates/core/src/metrics.rs /root/repo/crates/core/src/normalize.rs /root/repo/crates/core/src/pipeline.rs /root/repo/crates/core/src/render.rs /root/repo/crates/core/src/report.rs /root/repo/crates/core/src/timesteps.rs /root/repo/crates/core/src/upscale.rs

/root/repo/crates/core/src/lib.rs:
/root/repo/crates/core/src/checkpoint.rs:
/root/repo/crates/core/src/error.rs:
/root/repo/crates/core/src/ensemble.rs:
/root/repo/crates/core/src/experiment.rs:
/root/repo/crates/core/src/features.rs:
/root/repo/crates/core/src/insitu.rs:
/root/repo/crates/core/src/metrics.rs:
/root/repo/crates/core/src/normalize.rs:
/root/repo/crates/core/src/pipeline.rs:
/root/repo/crates/core/src/render.rs:
/root/repo/crates/core/src/report.rs:
/root/repo/crates/core/src/timesteps.rs:
/root/repo/crates/core/src/upscale.rs:
