/root/repo/target/release/deps/fv_interp-a56ccd3d1d538ed3.d: /root/repo/crates/interp/src/lib.rs /root/repo/crates/interp/src/error.rs /root/repo/crates/interp/src/idw.rs /root/repo/crates/interp/src/linear.rs /root/repo/crates/interp/src/natural.rs /root/repo/crates/interp/src/nearest.rs /root/repo/crates/interp/src/rbf.rs /root/repo/crates/interp/src/shepard.rs

/root/repo/target/release/deps/libfv_interp-a56ccd3d1d538ed3.rlib: /root/repo/crates/interp/src/lib.rs /root/repo/crates/interp/src/error.rs /root/repo/crates/interp/src/idw.rs /root/repo/crates/interp/src/linear.rs /root/repo/crates/interp/src/natural.rs /root/repo/crates/interp/src/nearest.rs /root/repo/crates/interp/src/rbf.rs /root/repo/crates/interp/src/shepard.rs

/root/repo/target/release/deps/libfv_interp-a56ccd3d1d538ed3.rmeta: /root/repo/crates/interp/src/lib.rs /root/repo/crates/interp/src/error.rs /root/repo/crates/interp/src/idw.rs /root/repo/crates/interp/src/linear.rs /root/repo/crates/interp/src/natural.rs /root/repo/crates/interp/src/nearest.rs /root/repo/crates/interp/src/rbf.rs /root/repo/crates/interp/src/shepard.rs

/root/repo/crates/interp/src/lib.rs:
/root/repo/crates/interp/src/error.rs:
/root/repo/crates/interp/src/idw.rs:
/root/repo/crates/interp/src/linear.rs:
/root/repo/crates/interp/src/natural.rs:
/root/repo/crates/interp/src/nearest.rs:
/root/repo/crates/interp/src/rbf.rs:
/root/repo/crates/interp/src/shepard.rs:
