/root/repo/target/release/deps/exp_ablation_sampler-b3e01dd2d738c82f.d: crates/bench/src/bin/exp_ablation_sampler.rs

/root/repo/target/release/deps/exp_ablation_sampler-b3e01dd2d738c82f: crates/bench/src/bin/exp_ablation_sampler.rs

crates/bench/src/bin/exp_ablation_sampler.rs:
