/root/repo/target/release/deps/fv_sampling-bf8fbe43f51dbdb9.d: crates/sampling/src/lib.rs crates/sampling/src/cloud.rs crates/sampling/src/importance.rs crates/sampling/src/random.rs crates/sampling/src/regular.rs crates/sampling/src/storage.rs crates/sampling/src/stratified.rs crates/sampling/src/value_stratified.rs

/root/repo/target/release/deps/libfv_sampling-bf8fbe43f51dbdb9.rlib: crates/sampling/src/lib.rs crates/sampling/src/cloud.rs crates/sampling/src/importance.rs crates/sampling/src/random.rs crates/sampling/src/regular.rs crates/sampling/src/storage.rs crates/sampling/src/stratified.rs crates/sampling/src/value_stratified.rs

/root/repo/target/release/deps/libfv_sampling-bf8fbe43f51dbdb9.rmeta: crates/sampling/src/lib.rs crates/sampling/src/cloud.rs crates/sampling/src/importance.rs crates/sampling/src/random.rs crates/sampling/src/regular.rs crates/sampling/src/storage.rs crates/sampling/src/stratified.rs crates/sampling/src/value_stratified.rs

crates/sampling/src/lib.rs:
crates/sampling/src/cloud.rs:
crates/sampling/src/importance.rs:
crates/sampling/src/random.rs:
crates/sampling/src/regular.rs:
crates/sampling/src/storage.rs:
crates/sampling/src/stratified.rs:
crates/sampling/src/value_stratified.rs:
