/root/repo/target/release/deps/exp_fig07-9d5094dbdc0643a3.d: crates/bench/src/bin/exp_fig07.rs

/root/repo/target/release/deps/exp_fig07-9d5094dbdc0643a3: crates/bench/src/bin/exp_fig07.rs

crates/bench/src/bin/exp_fig07.rs:
