/root/repo/target/release/deps/fv_sims-5c6c1e4221c72a97.d: crates/sims/src/lib.rs crates/sims/src/combustion.rs crates/sims/src/hurricane.rs crates/sims/src/ionization.rs crates/sims/src/noise.rs crates/sims/src/registry.rs

/root/repo/target/release/deps/libfv_sims-5c6c1e4221c72a97.rlib: crates/sims/src/lib.rs crates/sims/src/combustion.rs crates/sims/src/hurricane.rs crates/sims/src/ionization.rs crates/sims/src/noise.rs crates/sims/src/registry.rs

/root/repo/target/release/deps/libfv_sims-5c6c1e4221c72a97.rmeta: crates/sims/src/lib.rs crates/sims/src/combustion.rs crates/sims/src/hurricane.rs crates/sims/src/ionization.rs crates/sims/src/noise.rs crates/sims/src/registry.rs

crates/sims/src/lib.rs:
crates/sims/src/combustion.rs:
crates/sims/src/hurricane.rs:
crates/sims/src/ionization.rs:
crates/sims/src/noise.rs:
crates/sims/src/registry.rs:
