/root/repo/target/release/deps/fillvoid_core-79409d9506f768ac.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/error.rs crates/core/src/ensemble.rs crates/core/src/experiment.rs crates/core/src/features.rs crates/core/src/insitu.rs crates/core/src/metrics.rs crates/core/src/normalize.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs crates/core/src/timesteps.rs crates/core/src/upscale.rs

/root/repo/target/release/deps/libfillvoid_core-79409d9506f768ac.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/error.rs crates/core/src/ensemble.rs crates/core/src/experiment.rs crates/core/src/features.rs crates/core/src/insitu.rs crates/core/src/metrics.rs crates/core/src/normalize.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs crates/core/src/timesteps.rs crates/core/src/upscale.rs

/root/repo/target/release/deps/libfillvoid_core-79409d9506f768ac.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/error.rs crates/core/src/ensemble.rs crates/core/src/experiment.rs crates/core/src/features.rs crates/core/src/insitu.rs crates/core/src/metrics.rs crates/core/src/normalize.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs crates/core/src/timesteps.rs crates/core/src/upscale.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/error.rs:
crates/core/src/ensemble.rs:
crates/core/src/experiment.rs:
crates/core/src/features.rs:
crates/core/src/insitu.rs:
crates/core/src/metrics.rs:
crates/core/src/normalize.rs:
crates/core/src/pipeline.rs:
crates/core/src/render.rs:
crates/core/src/report.rs:
crates/core/src/timesteps.rs:
crates/core/src/upscale.rs:
