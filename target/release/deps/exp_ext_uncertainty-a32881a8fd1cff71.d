/root/repo/target/release/deps/exp_ext_uncertainty-a32881a8fd1cff71.d: crates/bench/src/bin/exp_ext_uncertainty.rs

/root/repo/target/release/deps/exp_ext_uncertainty-a32881a8fd1cff71: crates/bench/src/bin/exp_ext_uncertainty.rs

crates/bench/src/bin/exp_ext_uncertainty.rs:
