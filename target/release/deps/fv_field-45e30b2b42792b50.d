/root/repo/target/release/deps/fv_field-45e30b2b42792b50.d: /root/repo/crates/field/src/lib.rs /root/repo/crates/field/src/checksum.rs /root/repo/crates/field/src/error.rs /root/repo/crates/field/src/faults.rs /root/repo/crates/field/src/gradient.rs /root/repo/crates/field/src/grid.rs /root/repo/crates/field/src/io.rs /root/repo/crates/field/src/resample.rs /root/repo/crates/field/src/stats.rs /root/repo/crates/field/src/volume.rs

/root/repo/target/release/deps/libfv_field-45e30b2b42792b50.rlib: /root/repo/crates/field/src/lib.rs /root/repo/crates/field/src/checksum.rs /root/repo/crates/field/src/error.rs /root/repo/crates/field/src/faults.rs /root/repo/crates/field/src/gradient.rs /root/repo/crates/field/src/grid.rs /root/repo/crates/field/src/io.rs /root/repo/crates/field/src/resample.rs /root/repo/crates/field/src/stats.rs /root/repo/crates/field/src/volume.rs

/root/repo/target/release/deps/libfv_field-45e30b2b42792b50.rmeta: /root/repo/crates/field/src/lib.rs /root/repo/crates/field/src/checksum.rs /root/repo/crates/field/src/error.rs /root/repo/crates/field/src/faults.rs /root/repo/crates/field/src/gradient.rs /root/repo/crates/field/src/grid.rs /root/repo/crates/field/src/io.rs /root/repo/crates/field/src/resample.rs /root/repo/crates/field/src/stats.rs /root/repo/crates/field/src/volume.rs

/root/repo/crates/field/src/lib.rs:
/root/repo/crates/field/src/checksum.rs:
/root/repo/crates/field/src/error.rs:
/root/repo/crates/field/src/faults.rs:
/root/repo/crates/field/src/gradient.rs:
/root/repo/crates/field/src/grid.rs:
/root/repo/crates/field/src/io.rs:
/root/repo/crates/field/src/resample.rs:
/root/repo/crates/field/src/stats.rs:
/root/repo/crates/field/src/volume.rs:
