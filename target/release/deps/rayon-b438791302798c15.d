/root/repo/target/release/deps/rayon-b438791302798c15.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-b438791302798c15.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-b438791302798c15.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
