/root/repo/target/release/deps/fv_bench-7b09e1b47164de06.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfv_bench-7b09e1b47164de06.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfv_bench-7b09e1b47164de06.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
