/root/repo/target/release/deps/fv_nn-d2c2ebe909feb36f.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/checksum.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/guard.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libfv_nn-d2c2ebe909feb36f.rlib: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/checksum.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/guard.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libfv_nn-d2c2ebe909feb36f.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/checksum.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/guard.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/checksum.rs:
crates/nn/src/data.rs:
crates/nn/src/error.rs:
crates/nn/src/guard.rs:
crates/nn/src/init.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/schedule.rs:
crates/nn/src/serialize.rs:
crates/nn/src/train.rs:
