/root/repo/target/release/deps/rand-6139dc0756fa46ab.d: /root/repo/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-6139dc0756fa46ab.rlib: /root/repo/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-6139dc0756fa46ab.rmeta: /root/repo/vendor/rand/src/lib.rs

/root/repo/vendor/rand/src/lib.rs:
