/root/repo/target/release/deps/exp_table1-5dc220c028363520.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/release/deps/exp_table1-5dc220c028363520: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
