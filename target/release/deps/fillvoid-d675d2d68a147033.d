/root/repo/target/release/deps/fillvoid-d675d2d68a147033.d: src/lib.rs

/root/repo/target/release/deps/libfillvoid-d675d2d68a147033.rlib: src/lib.rs

/root/repo/target/release/deps/libfillvoid-d675d2d68a147033.rmeta: src/lib.rs

src/lib.rs:
