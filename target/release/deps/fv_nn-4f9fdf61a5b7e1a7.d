/root/repo/target/release/deps/fv_nn-4f9fdf61a5b7e1a7.d: /root/repo/crates/nn/src/lib.rs /root/repo/crates/nn/src/activation.rs /root/repo/crates/nn/src/checksum.rs /root/repo/crates/nn/src/data.rs /root/repo/crates/nn/src/error.rs /root/repo/crates/nn/src/guard.rs /root/repo/crates/nn/src/init.rs /root/repo/crates/nn/src/layer.rs /root/repo/crates/nn/src/loss.rs /root/repo/crates/nn/src/mlp.rs /root/repo/crates/nn/src/optim.rs /root/repo/crates/nn/src/schedule.rs /root/repo/crates/nn/src/serialize.rs /root/repo/crates/nn/src/train.rs

/root/repo/target/release/deps/libfv_nn-4f9fdf61a5b7e1a7.rlib: /root/repo/crates/nn/src/lib.rs /root/repo/crates/nn/src/activation.rs /root/repo/crates/nn/src/checksum.rs /root/repo/crates/nn/src/data.rs /root/repo/crates/nn/src/error.rs /root/repo/crates/nn/src/guard.rs /root/repo/crates/nn/src/init.rs /root/repo/crates/nn/src/layer.rs /root/repo/crates/nn/src/loss.rs /root/repo/crates/nn/src/mlp.rs /root/repo/crates/nn/src/optim.rs /root/repo/crates/nn/src/schedule.rs /root/repo/crates/nn/src/serialize.rs /root/repo/crates/nn/src/train.rs

/root/repo/target/release/deps/libfv_nn-4f9fdf61a5b7e1a7.rmeta: /root/repo/crates/nn/src/lib.rs /root/repo/crates/nn/src/activation.rs /root/repo/crates/nn/src/checksum.rs /root/repo/crates/nn/src/data.rs /root/repo/crates/nn/src/error.rs /root/repo/crates/nn/src/guard.rs /root/repo/crates/nn/src/init.rs /root/repo/crates/nn/src/layer.rs /root/repo/crates/nn/src/loss.rs /root/repo/crates/nn/src/mlp.rs /root/repo/crates/nn/src/optim.rs /root/repo/crates/nn/src/schedule.rs /root/repo/crates/nn/src/serialize.rs /root/repo/crates/nn/src/train.rs

/root/repo/crates/nn/src/lib.rs:
/root/repo/crates/nn/src/activation.rs:
/root/repo/crates/nn/src/checksum.rs:
/root/repo/crates/nn/src/data.rs:
/root/repo/crates/nn/src/error.rs:
/root/repo/crates/nn/src/guard.rs:
/root/repo/crates/nn/src/init.rs:
/root/repo/crates/nn/src/layer.rs:
/root/repo/crates/nn/src/loss.rs:
/root/repo/crates/nn/src/mlp.rs:
/root/repo/crates/nn/src/optim.rs:
/root/repo/crates/nn/src/schedule.rs:
/root/repo/crates/nn/src/serialize.rs:
/root/repo/crates/nn/src/train.rs:
