/root/repo/target/release/deps/exp_fig11-03610652b260bc16.d: crates/bench/src/bin/exp_fig11.rs

/root/repo/target/release/deps/exp_fig11-03610652b260bc16: crates/bench/src/bin/exp_fig11.rs

crates/bench/src/bin/exp_fig11.rs:
