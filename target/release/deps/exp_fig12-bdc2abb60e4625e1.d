/root/repo/target/release/deps/exp_fig12-bdc2abb60e4625e1.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/release/deps/exp_fig12-bdc2abb60e4625e1: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:
