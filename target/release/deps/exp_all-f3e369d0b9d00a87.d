/root/repo/target/release/deps/exp_all-f3e369d0b9d00a87.d: crates/bench/src/bin/exp_all.rs

/root/repo/target/release/deps/exp_all-f3e369d0b9d00a87: crates/bench/src/bin/exp_all.rs

crates/bench/src/bin/exp_all.rs:
