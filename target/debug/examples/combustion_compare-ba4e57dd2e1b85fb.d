/root/repo/target/debug/examples/combustion_compare-ba4e57dd2e1b85fb.d: examples/combustion_compare.rs Cargo.toml

/root/repo/target/debug/examples/libcombustion_compare-ba4e57dd2e1b85fb.rmeta: examples/combustion_compare.rs Cargo.toml

examples/combustion_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
