/root/repo/target/debug/examples/ionization_upscale-a26249d3db8dd242.d: examples/ionization_upscale.rs Cargo.toml

/root/repo/target/debug/examples/libionization_upscale-a26249d3db8dd242.rmeta: examples/ionization_upscale.rs Cargo.toml

examples/ionization_upscale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
