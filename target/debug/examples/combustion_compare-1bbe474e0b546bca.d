/root/repo/target/debug/examples/combustion_compare-1bbe474e0b546bca.d: examples/combustion_compare.rs

/root/repo/target/debug/examples/combustion_compare-1bbe474e0b546bca: examples/combustion_compare.rs

examples/combustion_compare.rs:
