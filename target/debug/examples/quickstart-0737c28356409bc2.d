/root/repo/target/debug/examples/quickstart-0737c28356409bc2.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0737c28356409bc2.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
