/root/repo/target/debug/examples/quickstart-0120398ea23823e4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0120398ea23823e4: examples/quickstart.rs

examples/quickstart.rs:
