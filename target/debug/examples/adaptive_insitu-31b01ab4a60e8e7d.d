/root/repo/target/debug/examples/adaptive_insitu-31b01ab4a60e8e7d.d: examples/adaptive_insitu.rs

/root/repo/target/debug/examples/adaptive_insitu-31b01ab4a60e8e7d: examples/adaptive_insitu.rs

examples/adaptive_insitu.rs:
