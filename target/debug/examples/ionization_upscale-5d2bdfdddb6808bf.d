/root/repo/target/debug/examples/ionization_upscale-5d2bdfdddb6808bf.d: examples/ionization_upscale.rs

/root/repo/target/debug/examples/ionization_upscale-5d2bdfdddb6808bf: examples/ionization_upscale.rs

examples/ionization_upscale.rs:
