/root/repo/target/debug/examples/hurricane_insitu-161fa47a1c09dabb.d: examples/hurricane_insitu.rs

/root/repo/target/debug/examples/hurricane_insitu-161fa47a1c09dabb: examples/hurricane_insitu.rs

examples/hurricane_insitu.rs:
