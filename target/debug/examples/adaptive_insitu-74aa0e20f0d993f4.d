/root/repo/target/debug/examples/adaptive_insitu-74aa0e20f0d993f4.d: examples/adaptive_insitu.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_insitu-74aa0e20f0d993f4.rmeta: examples/adaptive_insitu.rs Cargo.toml

examples/adaptive_insitu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
