/root/repo/target/debug/examples/hurricane_insitu-40157199d71d7be5.d: examples/hurricane_insitu.rs Cargo.toml

/root/repo/target/debug/examples/libhurricane_insitu-40157199d71d7be5.rmeta: examples/hurricane_insitu.rs Cargo.toml

examples/hurricane_insitu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
