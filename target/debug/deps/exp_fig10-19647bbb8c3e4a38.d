/root/repo/target/debug/deps/exp_fig10-19647bbb8c3e4a38.d: crates/bench/src/bin/exp_fig10.rs

/root/repo/target/debug/deps/exp_fig10-19647bbb8c3e4a38: crates/bench/src/bin/exp_fig10.rs

crates/bench/src/bin/exp_fig10.rs:
