/root/repo/target/debug/deps/fault_tolerance-d1bdc887f565b2b3.d: tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-d1bdc887f565b2b3.rmeta: tests/fault_tolerance.rs Cargo.toml

tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
