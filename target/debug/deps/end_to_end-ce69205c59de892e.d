/root/repo/target/debug/deps/end_to_end-ce69205c59de892e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ce69205c59de892e: tests/end_to_end.rs

tests/end_to_end.rs:
