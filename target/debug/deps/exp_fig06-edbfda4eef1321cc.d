/root/repo/target/debug/deps/exp_fig06-edbfda4eef1321cc.d: crates/bench/src/bin/exp_fig06.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig06-edbfda4eef1321cc.rmeta: crates/bench/src/bin/exp_fig06.rs Cargo.toml

crates/bench/src/bin/exp_fig06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
