/root/repo/target/debug/deps/insitu_workflow-212cd40200fd1009.d: tests/insitu_workflow.rs

/root/repo/target/debug/deps/insitu_workflow-212cd40200fd1009: tests/insitu_workflow.rs

tests/insitu_workflow.rs:
