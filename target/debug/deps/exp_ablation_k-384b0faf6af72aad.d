/root/repo/target/debug/deps/exp_ablation_k-384b0faf6af72aad.d: crates/bench/src/bin/exp_ablation_k.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation_k-384b0faf6af72aad.rmeta: crates/bench/src/bin/exp_ablation_k.rs Cargo.toml

crates/bench/src/bin/exp_ablation_k.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
