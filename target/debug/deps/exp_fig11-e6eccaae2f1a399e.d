/root/repo/target/debug/deps/exp_fig11-e6eccaae2f1a399e.d: crates/bench/src/bin/exp_fig11.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig11-e6eccaae2f1a399e.rmeta: crates/bench/src/bin/exp_fig11.rs Cargo.toml

crates/bench/src/bin/exp_fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
