/root/repo/target/debug/deps/fillvoid-9595aa903af667bf.d: src/lib.rs

/root/repo/target/debug/deps/fillvoid-9595aa903af667bf: src/lib.rs

src/lib.rs:
