/root/repo/target/debug/deps/exp_fig10-3a0989d6396036e6.d: crates/bench/src/bin/exp_fig10.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig10-3a0989d6396036e6.rmeta: crates/bench/src/bin/exp_fig10.rs Cargo.toml

crates/bench/src/bin/exp_fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
