/root/repo/target/debug/deps/fv_bench-30f35f0c4fe5248c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfv_bench-30f35f0c4fe5248c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
