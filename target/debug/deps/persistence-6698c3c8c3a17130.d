/root/repo/target/debug/deps/persistence-6698c3c8c3a17130.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-6698c3c8c3a17130: tests/persistence.rs

tests/persistence.rs:
