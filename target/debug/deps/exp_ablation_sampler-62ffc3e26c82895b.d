/root/repo/target/debug/deps/exp_ablation_sampler-62ffc3e26c82895b.d: crates/bench/src/bin/exp_ablation_sampler.rs

/root/repo/target/debug/deps/exp_ablation_sampler-62ffc3e26c82895b: crates/bench/src/bin/exp_ablation_sampler.rs

crates/bench/src/bin/exp_ablation_sampler.rs:
