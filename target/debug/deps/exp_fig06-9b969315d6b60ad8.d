/root/repo/target/debug/deps/exp_fig06-9b969315d6b60ad8.d: crates/bench/src/bin/exp_fig06.rs

/root/repo/target/debug/deps/exp_fig06-9b969315d6b60ad8: crates/bench/src/bin/exp_fig06.rs

crates/bench/src/bin/exp_fig06.rs:
