/root/repo/target/debug/deps/exp_fig11-32b5467a3caf19cb.d: crates/bench/src/bin/exp_fig11.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig11-32b5467a3caf19cb.rmeta: crates/bench/src/bin/exp_fig11.rs Cargo.toml

crates/bench/src/bin/exp_fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
