/root/repo/target/debug/deps/fv_spatial-e3da5efc617ae11c.d: crates/spatial/src/lib.rs crates/spatial/src/delaunay.rs crates/spatial/src/gridindex.rs crates/spatial/src/jitter.rs crates/spatial/src/kdtree.rs crates/spatial/src/morton.rs crates/spatial/src/predicates.rs

/root/repo/target/debug/deps/fv_spatial-e3da5efc617ae11c: crates/spatial/src/lib.rs crates/spatial/src/delaunay.rs crates/spatial/src/gridindex.rs crates/spatial/src/jitter.rs crates/spatial/src/kdtree.rs crates/spatial/src/morton.rs crates/spatial/src/predicates.rs

crates/spatial/src/lib.rs:
crates/spatial/src/delaunay.rs:
crates/spatial/src/gridindex.rs:
crates/spatial/src/jitter.rs:
crates/spatial/src/kdtree.rs:
crates/spatial/src/morton.rs:
crates/spatial/src/predicates.rs:
