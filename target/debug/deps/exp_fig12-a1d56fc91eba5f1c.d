/root/repo/target/debug/deps/exp_fig12-a1d56fc91eba5f1c.d: crates/bench/src/bin/exp_fig12.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig12-a1d56fc91eba5f1c.rmeta: crates/bench/src/bin/exp_fig12.rs Cargo.toml

crates/bench/src/bin/exp_fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
