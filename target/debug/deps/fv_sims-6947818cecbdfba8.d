/root/repo/target/debug/deps/fv_sims-6947818cecbdfba8.d: crates/sims/src/lib.rs crates/sims/src/combustion.rs crates/sims/src/hurricane.rs crates/sims/src/ionization.rs crates/sims/src/noise.rs crates/sims/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libfv_sims-6947818cecbdfba8.rmeta: crates/sims/src/lib.rs crates/sims/src/combustion.rs crates/sims/src/hurricane.rs crates/sims/src/ionization.rs crates/sims/src/noise.rs crates/sims/src/registry.rs Cargo.toml

crates/sims/src/lib.rs:
crates/sims/src/combustion.rs:
crates/sims/src/hurricane.rs:
crates/sims/src/ionization.rs:
crates/sims/src/noise.rs:
crates/sims/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
