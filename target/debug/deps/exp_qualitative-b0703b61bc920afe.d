/root/repo/target/debug/deps/exp_qualitative-b0703b61bc920afe.d: crates/bench/src/bin/exp_qualitative.rs Cargo.toml

/root/repo/target/debug/deps/libexp_qualitative-b0703b61bc920afe.rmeta: crates/bench/src/bin/exp_qualitative.rs Cargo.toml

crates/bench/src/bin/exp_qualitative.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
