/root/repo/target/debug/deps/fv_bench-55cfee624a0e1bd1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fv_bench-55cfee624a0e1bd1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
