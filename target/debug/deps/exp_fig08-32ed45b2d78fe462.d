/root/repo/target/debug/deps/exp_fig08-32ed45b2d78fe462.d: crates/bench/src/bin/exp_fig08.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig08-32ed45b2d78fe462.rmeta: crates/bench/src/bin/exp_fig08.rs Cargo.toml

crates/bench/src/bin/exp_fig08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
