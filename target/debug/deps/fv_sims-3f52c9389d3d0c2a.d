/root/repo/target/debug/deps/fv_sims-3f52c9389d3d0c2a.d: crates/sims/src/lib.rs crates/sims/src/combustion.rs crates/sims/src/hurricane.rs crates/sims/src/ionization.rs crates/sims/src/noise.rs crates/sims/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libfv_sims-3f52c9389d3d0c2a.rmeta: crates/sims/src/lib.rs crates/sims/src/combustion.rs crates/sims/src/hurricane.rs crates/sims/src/ionization.rs crates/sims/src/noise.rs crates/sims/src/registry.rs Cargo.toml

crates/sims/src/lib.rs:
crates/sims/src/combustion.rs:
crates/sims/src/hurricane.rs:
crates/sims/src/ionization.rs:
crates/sims/src/noise.rs:
crates/sims/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
