/root/repo/target/debug/deps/exp_table1-47851c9f3fac5b00.d: crates/bench/src/bin/exp_table1.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table1-47851c9f3fac5b00.rmeta: crates/bench/src/bin/exp_table1.rs Cargo.toml

crates/bench/src/bin/exp_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
