/root/repo/target/debug/deps/training_time-32e7a10a0c1386dc.d: crates/bench/benches/training_time.rs Cargo.toml

/root/repo/target/debug/deps/libtraining_time-32e7a10a0c1386dc.rmeta: crates/bench/benches/training_time.rs Cargo.toml

crates/bench/benches/training_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
