/root/repo/target/debug/deps/fv_sampling-39e2d6cce89012b3.d: crates/sampling/src/lib.rs crates/sampling/src/cloud.rs crates/sampling/src/importance.rs crates/sampling/src/random.rs crates/sampling/src/regular.rs crates/sampling/src/storage.rs crates/sampling/src/stratified.rs crates/sampling/src/value_stratified.rs

/root/repo/target/debug/deps/libfv_sampling-39e2d6cce89012b3.rlib: crates/sampling/src/lib.rs crates/sampling/src/cloud.rs crates/sampling/src/importance.rs crates/sampling/src/random.rs crates/sampling/src/regular.rs crates/sampling/src/storage.rs crates/sampling/src/stratified.rs crates/sampling/src/value_stratified.rs

/root/repo/target/debug/deps/libfv_sampling-39e2d6cce89012b3.rmeta: crates/sampling/src/lib.rs crates/sampling/src/cloud.rs crates/sampling/src/importance.rs crates/sampling/src/random.rs crates/sampling/src/regular.rs crates/sampling/src/storage.rs crates/sampling/src/stratified.rs crates/sampling/src/value_stratified.rs

crates/sampling/src/lib.rs:
crates/sampling/src/cloud.rs:
crates/sampling/src/importance.rs:
crates/sampling/src/random.rs:
crates/sampling/src/regular.rs:
crates/sampling/src/storage.rs:
crates/sampling/src/stratified.rs:
crates/sampling/src/value_stratified.rs:
