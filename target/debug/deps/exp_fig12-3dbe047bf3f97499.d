/root/repo/target/debug/deps/exp_fig12-3dbe047bf3f97499.d: crates/bench/src/bin/exp_fig12.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig12-3dbe047bf3f97499.rmeta: crates/bench/src/bin/exp_fig12.rs Cargo.toml

crates/bench/src/bin/exp_fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
