/root/repo/target/debug/deps/fillvoid-dc851eb3e21622e3.d: src/lib.rs

/root/repo/target/debug/deps/libfillvoid-dc851eb3e21622e3.rlib: src/lib.rs

/root/repo/target/debug/deps/libfillvoid-dc851eb3e21622e3.rmeta: src/lib.rs

src/lib.rs:
