/root/repo/target/debug/deps/exp_fig07-f3cef105341ac2b5.d: crates/bench/src/bin/exp_fig07.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig07-f3cef105341ac2b5.rmeta: crates/bench/src/bin/exp_fig07.rs Cargo.toml

crates/bench/src/bin/exp_fig07.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
