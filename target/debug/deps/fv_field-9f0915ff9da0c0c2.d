/root/repo/target/debug/deps/fv_field-9f0915ff9da0c0c2.d: crates/field/src/lib.rs crates/field/src/checksum.rs crates/field/src/error.rs crates/field/src/faults.rs crates/field/src/gradient.rs crates/field/src/grid.rs crates/field/src/io.rs crates/field/src/resample.rs crates/field/src/stats.rs crates/field/src/volume.rs Cargo.toml

/root/repo/target/debug/deps/libfv_field-9f0915ff9da0c0c2.rmeta: crates/field/src/lib.rs crates/field/src/checksum.rs crates/field/src/error.rs crates/field/src/faults.rs crates/field/src/gradient.rs crates/field/src/grid.rs crates/field/src/io.rs crates/field/src/resample.rs crates/field/src/stats.rs crates/field/src/volume.rs Cargo.toml

crates/field/src/lib.rs:
crates/field/src/checksum.rs:
crates/field/src/error.rs:
crates/field/src/faults.rs:
crates/field/src/gradient.rs:
crates/field/src/grid.rs:
crates/field/src/io.rs:
crates/field/src/resample.rs:
crates/field/src/stats.rs:
crates/field/src/volume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
