/root/repo/target/debug/deps/fault_tolerance-3d49babef8cfc443.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-3d49babef8cfc443: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
