/root/repo/target/debug/deps/fv_spatial-8714659ec241a699.d: crates/spatial/src/lib.rs crates/spatial/src/delaunay.rs crates/spatial/src/gridindex.rs crates/spatial/src/jitter.rs crates/spatial/src/kdtree.rs crates/spatial/src/morton.rs crates/spatial/src/predicates.rs Cargo.toml

/root/repo/target/debug/deps/libfv_spatial-8714659ec241a699.rmeta: crates/spatial/src/lib.rs crates/spatial/src/delaunay.rs crates/spatial/src/gridindex.rs crates/spatial/src/jitter.rs crates/spatial/src/kdtree.rs crates/spatial/src/morton.rs crates/spatial/src/predicates.rs Cargo.toml

crates/spatial/src/lib.rs:
crates/spatial/src/delaunay.rs:
crates/spatial/src/gridindex.rs:
crates/spatial/src/jitter.rs:
crates/spatial/src/kdtree.rs:
crates/spatial/src/morton.rs:
crates/spatial/src/predicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
