/root/repo/target/debug/deps/exp_ablation_k-94b76ed54ebe5bd8.d: crates/bench/src/bin/exp_ablation_k.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation_k-94b76ed54ebe5bd8.rmeta: crates/bench/src/bin/exp_ablation_k.rs Cargo.toml

crates/bench/src/bin/exp_ablation_k.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
