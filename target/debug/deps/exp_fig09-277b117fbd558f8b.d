/root/repo/target/debug/deps/exp_fig09-277b117fbd558f8b.d: crates/bench/src/bin/exp_fig09.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig09-277b117fbd558f8b.rmeta: crates/bench/src/bin/exp_fig09.rs Cargo.toml

crates/bench/src/bin/exp_fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
