/root/repo/target/debug/deps/properties-a32ec60670306ff8.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a32ec60670306ff8: tests/properties.rs

tests/properties.rs:
