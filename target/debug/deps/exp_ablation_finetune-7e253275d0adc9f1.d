/root/repo/target/debug/deps/exp_ablation_finetune-7e253275d0adc9f1.d: crates/bench/src/bin/exp_ablation_finetune.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation_finetune-7e253275d0adc9f1.rmeta: crates/bench/src/bin/exp_ablation_finetune.rs Cargo.toml

crates/bench/src/bin/exp_ablation_finetune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
