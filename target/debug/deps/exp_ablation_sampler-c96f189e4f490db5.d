/root/repo/target/debug/deps/exp_ablation_sampler-c96f189e4f490db5.d: crates/bench/src/bin/exp_ablation_sampler.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation_sampler-c96f189e4f490db5.rmeta: crates/bench/src/bin/exp_ablation_sampler.rs Cargo.toml

crates/bench/src/bin/exp_ablation_sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
