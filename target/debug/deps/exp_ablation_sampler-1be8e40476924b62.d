/root/repo/target/debug/deps/exp_ablation_sampler-1be8e40476924b62.d: crates/bench/src/bin/exp_ablation_sampler.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation_sampler-1be8e40476924b62.rmeta: crates/bench/src/bin/exp_ablation_sampler.rs Cargo.toml

crates/bench/src/bin/exp_ablation_sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
