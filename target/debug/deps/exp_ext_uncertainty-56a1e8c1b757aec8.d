/root/repo/target/debug/deps/exp_ext_uncertainty-56a1e8c1b757aec8.d: crates/bench/src/bin/exp_ext_uncertainty.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ext_uncertainty-56a1e8c1b757aec8.rmeta: crates/bench/src/bin/exp_ext_uncertainty.rs Cargo.toml

crates/bench/src/bin/exp_ext_uncertainty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
