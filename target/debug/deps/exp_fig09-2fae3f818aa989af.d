/root/repo/target/debug/deps/exp_fig09-2fae3f818aa989af.d: crates/bench/src/bin/exp_fig09.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig09-2fae3f818aa989af.rmeta: crates/bench/src/bin/exp_fig09.rs Cargo.toml

crates/bench/src/bin/exp_fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
