/root/repo/target/debug/deps/fv_interp-a93b7ba0b1ba10a7.d: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/idw.rs crates/interp/src/linear.rs crates/interp/src/natural.rs crates/interp/src/nearest.rs crates/interp/src/rbf.rs crates/interp/src/shepard.rs

/root/repo/target/debug/deps/fv_interp-a93b7ba0b1ba10a7: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/idw.rs crates/interp/src/linear.rs crates/interp/src/natural.rs crates/interp/src/nearest.rs crates/interp/src/rbf.rs crates/interp/src/shepard.rs

crates/interp/src/lib.rs:
crates/interp/src/error.rs:
crates/interp/src/idw.rs:
crates/interp/src/linear.rs:
crates/interp/src/natural.rs:
crates/interp/src/nearest.rs:
crates/interp/src/rbf.rs:
crates/interp/src/shepard.rs:
