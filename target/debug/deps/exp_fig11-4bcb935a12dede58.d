/root/repo/target/debug/deps/exp_fig11-4bcb935a12dede58.d: crates/bench/src/bin/exp_fig11.rs

/root/repo/target/debug/deps/exp_fig11-4bcb935a12dede58: crates/bench/src/bin/exp_fig11.rs

crates/bench/src/bin/exp_fig11.rs:
