/root/repo/target/debug/deps/insitu_workflow-b9357a1f92e1a385.d: tests/insitu_workflow.rs Cargo.toml

/root/repo/target/debug/deps/libinsitu_workflow-b9357a1f92e1a385.rmeta: tests/insitu_workflow.rs Cargo.toml

tests/insitu_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
