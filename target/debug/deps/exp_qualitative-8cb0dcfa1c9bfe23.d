/root/repo/target/debug/deps/exp_qualitative-8cb0dcfa1c9bfe23.d: crates/bench/src/bin/exp_qualitative.rs Cargo.toml

/root/repo/target/debug/deps/libexp_qualitative-8cb0dcfa1c9bfe23.rmeta: crates/bench/src/bin/exp_qualitative.rs Cargo.toml

crates/bench/src/bin/exp_qualitative.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
