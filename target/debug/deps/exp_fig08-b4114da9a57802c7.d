/root/repo/target/debug/deps/exp_fig08-b4114da9a57802c7.d: crates/bench/src/bin/exp_fig08.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig08-b4114da9a57802c7.rmeta: crates/bench/src/bin/exp_fig08.rs Cargo.toml

crates/bench/src/bin/exp_fig08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
