/root/repo/target/debug/deps/exp_ablation_features-e8415f004e6a52e2.d: crates/bench/src/bin/exp_ablation_features.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation_features-e8415f004e6a52e2.rmeta: crates/bench/src/bin/exp_ablation_features.rs Cargo.toml

crates/bench/src/bin/exp_ablation_features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
