/root/repo/target/debug/deps/exp_ablation_features-2d569e916d6cfb4b.d: crates/bench/src/bin/exp_ablation_features.rs

/root/repo/target/debug/deps/exp_ablation_features-2d569e916d6cfb4b: crates/bench/src/bin/exp_ablation_features.rs

crates/bench/src/bin/exp_ablation_features.rs:
