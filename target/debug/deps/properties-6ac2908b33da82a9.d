/root/repo/target/debug/deps/properties-6ac2908b33da82a9.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-6ac2908b33da82a9.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
