/root/repo/target/debug/deps/exp_fig13-725c19ab84b628e0.d: crates/bench/src/bin/exp_fig13.rs

/root/repo/target/debug/deps/exp_fig13-725c19ab84b628e0: crates/bench/src/bin/exp_fig13.rs

crates/bench/src/bin/exp_fig13.rs:
