/root/repo/target/debug/deps/fv_linalg-8636e7b81bc9c217.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/scalar.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libfv_linalg-8636e7b81bc9c217.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/scalar.rs crates/linalg/src/vector.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/scalar.rs:
crates/linalg/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
