/root/repo/target/debug/deps/exp_table1-a2ee3e66cec13d93.d: crates/bench/src/bin/exp_table1.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table1-a2ee3e66cec13d93.rmeta: crates/bench/src/bin/exp_table1.rs Cargo.toml

crates/bench/src/bin/exp_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
