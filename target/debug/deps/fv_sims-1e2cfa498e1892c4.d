/root/repo/target/debug/deps/fv_sims-1e2cfa498e1892c4.d: crates/sims/src/lib.rs crates/sims/src/combustion.rs crates/sims/src/hurricane.rs crates/sims/src/ionization.rs crates/sims/src/noise.rs crates/sims/src/registry.rs

/root/repo/target/debug/deps/libfv_sims-1e2cfa498e1892c4.rlib: crates/sims/src/lib.rs crates/sims/src/combustion.rs crates/sims/src/hurricane.rs crates/sims/src/ionization.rs crates/sims/src/noise.rs crates/sims/src/registry.rs

/root/repo/target/debug/deps/libfv_sims-1e2cfa498e1892c4.rmeta: crates/sims/src/lib.rs crates/sims/src/combustion.rs crates/sims/src/hurricane.rs crates/sims/src/ionization.rs crates/sims/src/noise.rs crates/sims/src/registry.rs

crates/sims/src/lib.rs:
crates/sims/src/combustion.rs:
crates/sims/src/hurricane.rs:
crates/sims/src/ionization.rs:
crates/sims/src/noise.rs:
crates/sims/src/registry.rs:
