/root/repo/target/debug/deps/exp_fig08-914fe6ebe06f7bcd.d: crates/bench/src/bin/exp_fig08.rs

/root/repo/target/debug/deps/exp_fig08-914fe6ebe06f7bcd: crates/bench/src/bin/exp_fig08.rs

crates/bench/src/bin/exp_fig08.rs:
