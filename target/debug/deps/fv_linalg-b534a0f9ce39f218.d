/root/repo/target/debug/deps/fv_linalg-b534a0f9ce39f218.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/scalar.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/fv_linalg-b534a0f9ce39f218: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/scalar.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/scalar.rs:
crates/linalg/src/vector.rs:
