/root/repo/target/debug/deps/fillvoid-227d0e2cf77fc955.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfillvoid-227d0e2cf77fc955.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
