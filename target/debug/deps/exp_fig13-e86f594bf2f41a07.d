/root/repo/target/debug/deps/exp_fig13-e86f594bf2f41a07.d: crates/bench/src/bin/exp_fig13.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig13-e86f594bf2f41a07.rmeta: crates/bench/src/bin/exp_fig13.rs Cargo.toml

crates/bench/src/bin/exp_fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
