/root/repo/target/debug/deps/fv_interp-a0277ad96ce12c4e.d: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/idw.rs crates/interp/src/linear.rs crates/interp/src/natural.rs crates/interp/src/nearest.rs crates/interp/src/rbf.rs crates/interp/src/shepard.rs Cargo.toml

/root/repo/target/debug/deps/libfv_interp-a0277ad96ce12c4e.rmeta: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/idw.rs crates/interp/src/linear.rs crates/interp/src/natural.rs crates/interp/src/nearest.rs crates/interp/src/rbf.rs crates/interp/src/shepard.rs Cargo.toml

crates/interp/src/lib.rs:
crates/interp/src/error.rs:
crates/interp/src/idw.rs:
crates/interp/src/linear.rs:
crates/interp/src/natural.rs:
crates/interp/src/nearest.rs:
crates/interp/src/rbf.rs:
crates/interp/src/shepard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
