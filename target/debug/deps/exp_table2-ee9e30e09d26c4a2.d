/root/repo/target/debug/deps/exp_table2-ee9e30e09d26c4a2.d: crates/bench/src/bin/exp_table2.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table2-ee9e30e09d26c4a2.rmeta: crates/bench/src/bin/exp_table2.rs Cargo.toml

crates/bench/src/bin/exp_table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
