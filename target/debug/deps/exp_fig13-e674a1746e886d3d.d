/root/repo/target/debug/deps/exp_fig13-e674a1746e886d3d.d: crates/bench/src/bin/exp_fig13.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig13-e674a1746e886d3d.rmeta: crates/bench/src/bin/exp_fig13.rs Cargo.toml

crates/bench/src/bin/exp_fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
