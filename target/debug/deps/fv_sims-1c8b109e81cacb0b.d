/root/repo/target/debug/deps/fv_sims-1c8b109e81cacb0b.d: crates/sims/src/lib.rs crates/sims/src/combustion.rs crates/sims/src/hurricane.rs crates/sims/src/ionization.rs crates/sims/src/noise.rs crates/sims/src/registry.rs

/root/repo/target/debug/deps/fv_sims-1c8b109e81cacb0b: crates/sims/src/lib.rs crates/sims/src/combustion.rs crates/sims/src/hurricane.rs crates/sims/src/ionization.rs crates/sims/src/noise.rs crates/sims/src/registry.rs

crates/sims/src/lib.rs:
crates/sims/src/combustion.rs:
crates/sims/src/hurricane.rs:
crates/sims/src/ionization.rs:
crates/sims/src/noise.rs:
crates/sims/src/registry.rs:
