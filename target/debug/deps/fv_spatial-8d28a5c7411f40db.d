/root/repo/target/debug/deps/fv_spatial-8d28a5c7411f40db.d: crates/spatial/src/lib.rs crates/spatial/src/delaunay.rs crates/spatial/src/gridindex.rs crates/spatial/src/jitter.rs crates/spatial/src/kdtree.rs crates/spatial/src/morton.rs crates/spatial/src/predicates.rs

/root/repo/target/debug/deps/libfv_spatial-8d28a5c7411f40db.rlib: crates/spatial/src/lib.rs crates/spatial/src/delaunay.rs crates/spatial/src/gridindex.rs crates/spatial/src/jitter.rs crates/spatial/src/kdtree.rs crates/spatial/src/morton.rs crates/spatial/src/predicates.rs

/root/repo/target/debug/deps/libfv_spatial-8d28a5c7411f40db.rmeta: crates/spatial/src/lib.rs crates/spatial/src/delaunay.rs crates/spatial/src/gridindex.rs crates/spatial/src/jitter.rs crates/spatial/src/kdtree.rs crates/spatial/src/morton.rs crates/spatial/src/predicates.rs

crates/spatial/src/lib.rs:
crates/spatial/src/delaunay.rs:
crates/spatial/src/gridindex.rs:
crates/spatial/src/jitter.rs:
crates/spatial/src/kdtree.rs:
crates/spatial/src/morton.rs:
crates/spatial/src/predicates.rs:
