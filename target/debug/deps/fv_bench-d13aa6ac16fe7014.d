/root/repo/target/debug/deps/fv_bench-d13aa6ac16fe7014.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfv_bench-d13aa6ac16fe7014.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
