/root/repo/target/debug/deps/exp_all-d0c0b56033cfdb91.d: crates/bench/src/bin/exp_all.rs Cargo.toml

/root/repo/target/debug/deps/libexp_all-d0c0b56033cfdb91.rmeta: crates/bench/src/bin/exp_all.rs Cargo.toml

crates/bench/src/bin/exp_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
