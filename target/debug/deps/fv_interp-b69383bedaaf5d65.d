/root/repo/target/debug/deps/fv_interp-b69383bedaaf5d65.d: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/idw.rs crates/interp/src/linear.rs crates/interp/src/natural.rs crates/interp/src/nearest.rs crates/interp/src/rbf.rs crates/interp/src/shepard.rs

/root/repo/target/debug/deps/libfv_interp-b69383bedaaf5d65.rlib: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/idw.rs crates/interp/src/linear.rs crates/interp/src/natural.rs crates/interp/src/nearest.rs crates/interp/src/rbf.rs crates/interp/src/shepard.rs

/root/repo/target/debug/deps/libfv_interp-b69383bedaaf5d65.rmeta: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/idw.rs crates/interp/src/linear.rs crates/interp/src/natural.rs crates/interp/src/nearest.rs crates/interp/src/rbf.rs crates/interp/src/shepard.rs

crates/interp/src/lib.rs:
crates/interp/src/error.rs:
crates/interp/src/idw.rs:
crates/interp/src/linear.rs:
crates/interp/src/natural.rs:
crates/interp/src/nearest.rs:
crates/interp/src/rbf.rs:
crates/interp/src/shepard.rs:
