/root/repo/target/debug/deps/fillvoid_core-26a222698275254d.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/error.rs crates/core/src/ensemble.rs crates/core/src/experiment.rs crates/core/src/features.rs crates/core/src/insitu.rs crates/core/src/metrics.rs crates/core/src/normalize.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs crates/core/src/timesteps.rs crates/core/src/upscale.rs Cargo.toml

/root/repo/target/debug/deps/libfillvoid_core-26a222698275254d.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/error.rs crates/core/src/ensemble.rs crates/core/src/experiment.rs crates/core/src/features.rs crates/core/src/insitu.rs crates/core/src/metrics.rs crates/core/src/normalize.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs crates/core/src/timesteps.rs crates/core/src/upscale.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/error.rs:
crates/core/src/ensemble.rs:
crates/core/src/experiment.rs:
crates/core/src/features.rs:
crates/core/src/insitu.rs:
crates/core/src/metrics.rs:
crates/core/src/normalize.rs:
crates/core/src/pipeline.rs:
crates/core/src/render.rs:
crates/core/src/report.rs:
crates/core/src/timesteps.rs:
crates/core/src/upscale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
