/root/repo/target/debug/deps/exp_fig07-a007cbb1e34c34c7.d: crates/bench/src/bin/exp_fig07.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig07-a007cbb1e34c34c7.rmeta: crates/bench/src/bin/exp_fig07.rs Cargo.toml

crates/bench/src/bin/exp_fig07.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
