/root/repo/target/debug/deps/fv_field-f5ad05bb45eb1976.d: crates/field/src/lib.rs crates/field/src/checksum.rs crates/field/src/error.rs crates/field/src/faults.rs crates/field/src/gradient.rs crates/field/src/grid.rs crates/field/src/io.rs crates/field/src/resample.rs crates/field/src/stats.rs crates/field/src/volume.rs

/root/repo/target/debug/deps/libfv_field-f5ad05bb45eb1976.rlib: crates/field/src/lib.rs crates/field/src/checksum.rs crates/field/src/error.rs crates/field/src/faults.rs crates/field/src/gradient.rs crates/field/src/grid.rs crates/field/src/io.rs crates/field/src/resample.rs crates/field/src/stats.rs crates/field/src/volume.rs

/root/repo/target/debug/deps/libfv_field-f5ad05bb45eb1976.rmeta: crates/field/src/lib.rs crates/field/src/checksum.rs crates/field/src/error.rs crates/field/src/faults.rs crates/field/src/gradient.rs crates/field/src/grid.rs crates/field/src/io.rs crates/field/src/resample.rs crates/field/src/stats.rs crates/field/src/volume.rs

crates/field/src/lib.rs:
crates/field/src/checksum.rs:
crates/field/src/error.rs:
crates/field/src/faults.rs:
crates/field/src/gradient.rs:
crates/field/src/grid.rs:
crates/field/src/io.rs:
crates/field/src/resample.rs:
crates/field/src/stats.rs:
crates/field/src/volume.rs:
