/root/repo/target/debug/deps/persistence-3fae5f8d75a8748d.d: tests/persistence.rs Cargo.toml

/root/repo/target/debug/deps/libpersistence-3fae5f8d75a8748d.rmeta: tests/persistence.rs Cargo.toml

tests/persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
