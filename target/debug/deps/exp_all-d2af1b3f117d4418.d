/root/repo/target/debug/deps/exp_all-d2af1b3f117d4418.d: crates/bench/src/bin/exp_all.rs

/root/repo/target/debug/deps/exp_all-d2af1b3f117d4418: crates/bench/src/bin/exp_all.rs

crates/bench/src/bin/exp_all.rs:
