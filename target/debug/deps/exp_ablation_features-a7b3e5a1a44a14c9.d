/root/repo/target/debug/deps/exp_ablation_features-a7b3e5a1a44a14c9.d: crates/bench/src/bin/exp_ablation_features.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation_features-a7b3e5a1a44a14c9.rmeta: crates/bench/src/bin/exp_ablation_features.rs Cargo.toml

crates/bench/src/bin/exp_ablation_features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
