/root/repo/target/debug/deps/exp_ext_uncertainty-778e9d098dc6561f.d: crates/bench/src/bin/exp_ext_uncertainty.rs

/root/repo/target/debug/deps/exp_ext_uncertainty-778e9d098dc6561f: crates/bench/src/bin/exp_ext_uncertainty.rs

crates/bench/src/bin/exp_ext_uncertainty.rs:
