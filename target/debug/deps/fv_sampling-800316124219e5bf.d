/root/repo/target/debug/deps/fv_sampling-800316124219e5bf.d: crates/sampling/src/lib.rs crates/sampling/src/cloud.rs crates/sampling/src/importance.rs crates/sampling/src/random.rs crates/sampling/src/regular.rs crates/sampling/src/storage.rs crates/sampling/src/stratified.rs crates/sampling/src/value_stratified.rs Cargo.toml

/root/repo/target/debug/deps/libfv_sampling-800316124219e5bf.rmeta: crates/sampling/src/lib.rs crates/sampling/src/cloud.rs crates/sampling/src/importance.rs crates/sampling/src/random.rs crates/sampling/src/regular.rs crates/sampling/src/storage.rs crates/sampling/src/stratified.rs crates/sampling/src/value_stratified.rs Cargo.toml

crates/sampling/src/lib.rs:
crates/sampling/src/cloud.rs:
crates/sampling/src/importance.rs:
crates/sampling/src/random.rs:
crates/sampling/src/regular.rs:
crates/sampling/src/storage.rs:
crates/sampling/src/stratified.rs:
crates/sampling/src/value_stratified.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
