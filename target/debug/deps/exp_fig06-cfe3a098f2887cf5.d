/root/repo/target/debug/deps/exp_fig06-cfe3a098f2887cf5.d: crates/bench/src/bin/exp_fig06.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig06-cfe3a098f2887cf5.rmeta: crates/bench/src/bin/exp_fig06.rs Cargo.toml

crates/bench/src/bin/exp_fig06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
