/root/repo/target/debug/deps/exp_fig07-57693ffcb167ef66.d: crates/bench/src/bin/exp_fig07.rs

/root/repo/target/debug/deps/exp_fig07-57693ffcb167ef66: crates/bench/src/bin/exp_fig07.rs

crates/bench/src/bin/exp_fig07.rs:
