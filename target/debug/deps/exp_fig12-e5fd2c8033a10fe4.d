/root/repo/target/debug/deps/exp_fig12-e5fd2c8033a10fe4.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/debug/deps/exp_fig12-e5fd2c8033a10fe4: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:
