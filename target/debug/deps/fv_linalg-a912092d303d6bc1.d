/root/repo/target/debug/deps/fv_linalg-a912092d303d6bc1.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/scalar.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libfv_linalg-a912092d303d6bc1.rlib: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/scalar.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libfv_linalg-a912092d303d6bc1.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/scalar.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/scalar.rs:
crates/linalg/src/vector.rs:
