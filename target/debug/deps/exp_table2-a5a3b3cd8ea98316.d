/root/repo/target/debug/deps/exp_table2-a5a3b3cd8ea98316.d: crates/bench/src/bin/exp_table2.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table2-a5a3b3cd8ea98316.rmeta: crates/bench/src/bin/exp_table2.rs Cargo.toml

crates/bench/src/bin/exp_table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
