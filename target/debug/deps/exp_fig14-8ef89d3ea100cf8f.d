/root/repo/target/debug/deps/exp_fig14-8ef89d3ea100cf8f.d: crates/bench/src/bin/exp_fig14.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig14-8ef89d3ea100cf8f.rmeta: crates/bench/src/bin/exp_fig14.rs Cargo.toml

crates/bench/src/bin/exp_fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
