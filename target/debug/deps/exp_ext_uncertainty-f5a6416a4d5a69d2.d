/root/repo/target/debug/deps/exp_ext_uncertainty-f5a6416a4d5a69d2.d: crates/bench/src/bin/exp_ext_uncertainty.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ext_uncertainty-f5a6416a4d5a69d2.rmeta: crates/bench/src/bin/exp_ext_uncertainty.rs Cargo.toml

crates/bench/src/bin/exp_ext_uncertainty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
