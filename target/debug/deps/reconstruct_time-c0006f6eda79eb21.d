/root/repo/target/debug/deps/reconstruct_time-c0006f6eda79eb21.d: crates/bench/benches/reconstruct_time.rs Cargo.toml

/root/repo/target/debug/deps/libreconstruct_time-c0006f6eda79eb21.rmeta: crates/bench/benches/reconstruct_time.rs Cargo.toml

crates/bench/benches/reconstruct_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
