/root/repo/target/debug/deps/exp_qualitative-43e72b08bffad5fc.d: crates/bench/src/bin/exp_qualitative.rs

/root/repo/target/debug/deps/exp_qualitative-43e72b08bffad5fc: crates/bench/src/bin/exp_qualitative.rs

crates/bench/src/bin/exp_qualitative.rs:
