/root/repo/target/debug/deps/fv_bench-53359e9cd7f36adb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfv_bench-53359e9cd7f36adb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfv_bench-53359e9cd7f36adb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
