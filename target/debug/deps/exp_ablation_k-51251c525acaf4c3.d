/root/repo/target/debug/deps/exp_ablation_k-51251c525acaf4c3.d: crates/bench/src/bin/exp_ablation_k.rs

/root/repo/target/debug/deps/exp_ablation_k-51251c525acaf4c3: crates/bench/src/bin/exp_ablation_k.rs

crates/bench/src/bin/exp_ablation_k.rs:
