/root/repo/target/debug/deps/exp_fig09-080e84139d6d0e82.d: crates/bench/src/bin/exp_fig09.rs

/root/repo/target/debug/deps/exp_fig09-080e84139d6d0e82: crates/bench/src/bin/exp_fig09.rs

crates/bench/src/bin/exp_fig09.rs:
