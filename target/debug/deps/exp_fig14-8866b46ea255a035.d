/root/repo/target/debug/deps/exp_fig14-8866b46ea255a035.d: crates/bench/src/bin/exp_fig14.rs

/root/repo/target/debug/deps/exp_fig14-8866b46ea255a035: crates/bench/src/bin/exp_fig14.rs

crates/bench/src/bin/exp_fig14.rs:
