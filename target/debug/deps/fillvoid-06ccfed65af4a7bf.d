/root/repo/target/debug/deps/fillvoid-06ccfed65af4a7bf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfillvoid-06ccfed65af4a7bf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
