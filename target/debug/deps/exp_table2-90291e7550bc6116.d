/root/repo/target/debug/deps/exp_table2-90291e7550bc6116.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/debug/deps/exp_table2-90291e7550bc6116: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
