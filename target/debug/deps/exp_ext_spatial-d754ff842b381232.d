/root/repo/target/debug/deps/exp_ext_spatial-d754ff842b381232.d: crates/bench/src/bin/exp_ext_spatial.rs

/root/repo/target/debug/deps/exp_ext_spatial-d754ff842b381232: crates/bench/src/bin/exp_ext_spatial.rs

crates/bench/src/bin/exp_ext_spatial.rs:
