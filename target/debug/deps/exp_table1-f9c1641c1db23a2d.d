/root/repo/target/debug/deps/exp_table1-f9c1641c1db23a2d.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/exp_table1-f9c1641c1db23a2d: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
