/root/repo/target/debug/deps/exp_ablation_finetune-669a24cb58e61269.d: crates/bench/src/bin/exp_ablation_finetune.rs

/root/repo/target/debug/deps/exp_ablation_finetune-669a24cb58e61269: crates/bench/src/bin/exp_ablation_finetune.rs

crates/bench/src/bin/exp_ablation_finetune.rs:
