/root/repo/target/debug/deps/exp_ext_spatial-bfc4ddf37ff31d69.d: crates/bench/src/bin/exp_ext_spatial.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ext_spatial-bfc4ddf37ff31d69.rmeta: crates/bench/src/bin/exp_ext_spatial.rs Cargo.toml

crates/bench/src/bin/exp_ext_spatial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
