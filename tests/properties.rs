//! Property-based integration tests spanning crates: invariants that must
//! hold for *any* field, sampling rate and seed.

use fillvoid::field::{Grid3, ScalarField};
use fillvoid::prelude::*;
use fillvoid::sampling::{
    FieldSampler, RandomSampler, RegularSampler, StratifiedSampler, ValueStratifiedSampler,
};
use fillvoid::spatial::gridindex::GridIndex;
use fillvoid::spatial::{Delaunay3, KdTree};
use proptest::prelude::*;

/// A small random field driven by proptest-chosen parameters.
fn arb_field() -> impl Strategy<Value = ScalarField> {
    (
        4usize..10,
        4usize..10,
        2usize..6,
        -5.0f64..5.0,
        0.1f64..3.0,
        any::<u64>(),
    )
        .prop_map(|(nx, ny, nz, offset, freq, seed)| {
            let g = Grid3::new([nx, ny, nz]).unwrap();
            let phase = (seed % 1000) as f64 * 0.01;
            ScalarField::from_world_fn(g, move |p| {
                (offset
                    + (p[0] * freq + phase).sin()
                    + (p[1] * freq * 0.7).cos()
                    + 0.25 * p[2]) as f32
            })
        })
}

/// Train + reconstruct end-to-end at a given pool width. Everything inside
/// `install` — feature extraction, kNN, matmuls, Adam, prediction — runs on
/// that pool, so this exercises the full deterministic-parallelism contract.
fn pipeline_at_width(width: usize, field: &ScalarField) -> Vec<u32> {
    use fillvoid::core::pipeline::{FcnnPipeline, PipelineConfig};
    let pool = fv_runtime::Pool::new(width);
    pool.install(|| {
        let config = PipelineConfig::small_for_tests();
        let model = FcnnPipeline::train(field, &config, 42).unwrap();
        let cloud = ImportanceSampler::default().sample(field, 0.05, 7);
        let recon = model.reconstruct(&cloud, field.grid()).unwrap();
        recon.values().iter().map(|v| v.to_bits()).collect()
    })
}

/// The tentpole guarantee: with deterministic chunking (the default), the
/// entire ML pipeline — training corpus assembly, kNN features, forward /
/// backward matmuls, the Adam updates and the final full-grid prediction —
/// produces bitwise identical floats at any thread count.
#[test]
fn fcnn_pipeline_bitwise_identical_across_thread_counts() {
    let g = Grid3::new([10, 10, 4]).unwrap();
    let field = ScalarField::from_world_fn(g, |p| {
        ((p[0] * 1.3).sin() + (p[1] * 0.7).cos() + 0.2 * p[2]) as f32
    });
    let narrow = pipeline_at_width(1, &field);
    let wide = pipeline_at_width(8, &field);
    assert_eq!(narrow, wide, "reconstruction differs between 1 and 8 threads");
}

/// The workspace execution layer is an optimization, not a semantic change:
/// forward/backward through `TrainWorkspace` must be bitwise-identical to
/// the legacy per-call-allocating `forward_cached`/`backward` path — at
/// every pool width, on a batch large enough (2048×64 into [128, 64]) that
/// the fused kernels cross the granularity threshold and actually fan out.
#[test]
fn workspace_training_path_matches_legacy_at_all_widths() {
    use fillvoid::linalg::Matrix;
    use fillvoid::nn::data::Dataset;
    use fillvoid::nn::loss::Loss;
    use fillvoid::nn::{Mlp, TrainWorkspace};

    let rows = 2048usize;
    let mlp = Mlp::regression(64, &[128, 64], 4, 9);
    let x = Matrix::from_fn(rows, 64, |r, c| ((r * 31 + c * 17) % 101) as f32 * 0.02 - 1.0);
    let y = Matrix::from_fn(rows, 4, |r, c| ((r + c * 13) % 19) as f32 * 0.1 - 0.9);
    let data = Dataset::new(x.clone(), y.clone()).unwrap();
    let idx: Vec<usize> = (0..rows).collect();

    let mut reference: Option<(Vec<u32>, Vec<u32>)> = None;
    for width in [1usize, 4, 8] {
        let pool = fv_runtime::Pool::new(width);
        let (legacy, workspace) = pool.install(|| {
            let (pred, caches) = mlp.forward_cached(x.clone()).unwrap();
            let grads = mlp.backward(Loss::Mse.gradient(&pred, &y), &caches);
            let mut legacy_bits: (Vec<u32>, Vec<u32>) =
                (pred.as_slice().iter().map(|v| v.to_bits()).collect(), Vec::new());
            for g in &grads {
                legacy_bits.1.extend(g.weights.as_slice().iter().map(|v| v.to_bits()));
                legacy_bits.1.extend(g.bias.iter().map(|v| v.to_bits()));
            }

            let mut ws = TrainWorkspace::new(&mlp, rows, 4);
            ws.load_batch(&data, &idx);
            mlp.forward_workspace(&mut ws).unwrap();
            ws.seed_loss_gradient(Loss::Mse);
            mlp.backward_workspace(&mut ws);
            let mut ws_bits: (Vec<u32>, Vec<u32>) = (
                ws.prediction().as_slice().iter().map(|v| v.to_bits()).collect(),
                Vec::new(),
            );
            for g in ws.grads() {
                ws_bits.1.extend(g.weights.as_slice().iter().map(|v| v.to_bits()));
                ws_bits.1.extend(g.bias.iter().map(|v| v.to_bits()));
            }
            (legacy_bits, ws_bits)
        });
        assert_eq!(workspace.0, legacy.0, "forward diverged from legacy at width {width}");
        assert_eq!(workspace.1, legacy.1, "gradients diverged from legacy at width {width}");
        match &reference {
            None => reference = Some(workspace),
            Some(r) => {
                assert_eq!(&workspace, r, "results diverged between pool widths (vs 1)");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn classical_reconstruction_bitwise_identical_across_thread_counts(
        field in arb_field(),
        fraction in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let cloud = ImportanceSampler::default().sample(&field, fraction, seed);
        let shepard = ShepardReconstructor::default();
        let reconstruct_at = |width: usize| {
            let pool = fv_runtime::Pool::new(width);
            pool.install(|| shepard.reconstruct(&cloud, field.grid()).unwrap())
        };
        let narrow = reconstruct_at(1);
        let wide = reconstruct_at(6);
        let narrow_bits: Vec<u32> = narrow.values().iter().map(|v| v.to_bits()).collect();
        let wide_bits: Vec<u32> = wide.values().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(narrow_bits, wide_bits);
    }

    #[test]
    fn samplers_honor_exact_budgets(field in arb_field(), fraction in 0.01f64..0.9, seed in any::<u64>()) {
        let n = field.len();
        let expected = ((fraction * n as f64).ceil() as usize).clamp(1, n);
        let importance = ImportanceSampler::default();
        let random = RandomSampler;
        let stratified = StratifiedSampler::default();
        let value_stratified = ValueStratifiedSampler::default();
        let regular = RegularSampler;
        let samplers: Vec<&dyn FieldSampler> =
            vec![&importance, &random, &stratified, &value_stratified, &regular];
        for sampler in samplers {
            let cloud = sampler.sample(&field, fraction, seed);
            prop_assert_eq!(cloud.len(), expected, "{}", sampler.name());
            // indices unique and in range
            let mut idx = cloud.indices().to_vec();
            idx.dedup();
            prop_assert_eq!(idx.len(), cloud.len());
            prop_assert!(idx.iter().all(|&i| i < n));
            // voids + samples partition the grid
            prop_assert_eq!(cloud.void_indices().len() + cloud.len(), n);
        }
    }

    #[test]
    fn interpolators_reproduce_constant_fields(field in arb_field(), fraction in 0.02f64..0.5, seed in any::<u64>()) {
        let constant = ScalarField::filled(*field.grid(), 3.25);
        let cloud = RandomSampler.sample(&constant, fraction, seed);
        let linear = LinearReconstructor::default();
        let natural = NaturalNeighborReconstructor;
        let shepard = ShepardReconstructor::default();
        let nearest = NearestReconstructor;
        let methods: Vec<&dyn Reconstructor> = vec![&linear, &natural, &shepard, &nearest];
        for m in methods {
            let recon = m.reconstruct(&cloud, constant.grid()).unwrap();
            for &v in recon.values() {
                prop_assert!((v - 3.25).abs() < 1e-4, "{} produced {v}", m.name());
            }
        }
    }

    #[test]
    fn idw_family_respects_value_bounds(field in arb_field(), fraction in 0.05f64..0.5, seed in any::<u64>()) {
        let cloud = ImportanceSampler::default().sample(&field, fraction, seed);
        let (lo, hi) = field.min_max().unwrap();
        let shepard = ShepardReconstructor::default();
        let nearest = NearestReconstructor;
        let natural = NaturalNeighborReconstructor;
        let methods: Vec<&dyn Reconstructor> = vec![&shepard, &nearest, &natural];
        for m in methods {
            let recon = m.reconstruct(&cloud, field.grid()).unwrap();
            for &v in recon.values() {
                prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4, "{}: {v} outside [{lo}, {hi}]", m.name());
            }
        }
    }

    #[test]
    fn delaunay_of_sampled_grid_points_is_delaunay(field in arb_field(), fraction in 0.05f64..0.4, seed in any::<u64>()) {
        let cloud = ImportanceSampler::default().sample(&field, fraction, seed);
        prop_assume!(cloud.len() >= 5);
        let tri = Delaunay3::build(cloud.positions()).unwrap();
        prop_assert_eq!(tri.skipped_points(), 0);
        prop_assert_eq!(tri.delaunay_violations(), 0);
    }

    #[test]
    fn kdtree_knn_matches_brute_force_on_clouds(field in arb_field(), fraction in 0.05f64..0.5, seed in any::<u64>(), k in 1usize..8) {
        let cloud = RandomSampler.sample(&field, fraction, seed);
        let tree = KdTree::build(cloud.positions());
        let q = field.grid().world_linear(field.len() / 2);
        let fast = tree.k_nearest(cloud.positions(), q, k);
        let mut brute: Vec<(f64, usize)> = cloud
            .positions()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d: f64 = (0..3).map(|a| (p[a] - q[a]).powi(2)).sum();
                (d, i)
            })
            .collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (f, (bd, bi)) in fast.iter().zip(brute.iter()) {
            // allow distance ties to swap indices
            prop_assert!((f.dist_sq - bd).abs() < 1e-9 || f.index == *bi);
        }
    }

    /// Clouds smaller than `k` must take one consistent padded path
    /// everywhere. The batched kNN (`k_nearest_batch_into`, stride
    /// `k.min(len)`) must agree bitwise with per-query `k_nearest`, and the
    /// `[1×23]` feature rows built on top of it must equal rows hand-built
    /// from single queries plus the repeat-last-neighbor padding rule.
    #[test]
    fn tiny_clouds_pad_knn_and_features_identically(
        field in arb_field(),
        n_samples in 1usize..6,
        seed in any::<u64>(),
    ) {
        use fillvoid::core::features::{FeatureConfig, FeatureExtractor};
        use fillvoid::core::normalize::{CoordFrame, ValueNorm};

        let grid = *field.grid();
        let total = grid.num_points();
        let picks: Vec<usize> = (0..n_samples)
            .map(|i| ((seed >> (i * 9)) as usize).wrapping_add(i * 37) % total)
            .collect();
        let cloud = PointCloud::from_indices(&field, picks);
        prop_assume!(!cloud.is_empty());

        let config = FeatureConfig::default();
        let k = config.k;
        prop_assume!(cloud.len() < k); // the under-filled neighborhood path

        let tree = KdTree::build(cloud.positions());
        let queries: Vec<usize> = (0..total).step_by(total / 7 + 1).collect();
        let qpos: Vec<[f64; 3]> = queries.iter().map(|&q| grid.world_linear(q)).collect();

        // Batched kNN agrees bitwise with single queries, at the documented
        // truncated stride.
        let mut flat = Vec::new();
        let mut knn_scratch = Vec::new();
        let stride = tree.k_nearest_batch_into(
            cloud.positions(), &qpos, k, &mut flat, &mut knn_scratch,
        );
        prop_assert_eq!(stride, k.min(cloud.len()));
        for (r, &p) in qpos.iter().enumerate() {
            let single = tree.k_nearest(cloud.positions(), p, k);
            prop_assert_eq!(single.len(), stride);
            let batch = &flat[r * stride..(r + 1) * stride];
            for (s, b) in single.iter().zip(batch) {
                prop_assert_eq!(s.index, b.index);
                prop_assert_eq!(s.dist_sq.to_bits(), b.dist_sq.to_bits());
            }
        }

        // Feature rows are [1×23] and match a hand-built reference that
        // repeats the last neighbor into the missing slots.
        let frame = CoordFrame::of_grid(&grid);
        let values = ValueNorm::fit(cloud.values());
        let m = FeatureExtractor::new(&cloud, config)
            .features_for(&grid, &frame, &values, &queries);
        prop_assert_eq!(m.cols(), config.input_width());
        prop_assert_eq!(m.cols(), 23);
        for (r, &p) in qpos.iter().enumerate() {
            let row = m.row(r);
            let single = tree.k_nearest(cloud.positions(), p, k);
            let up = frame.to_unit(p);
            for slot in 0..k {
                let n = single.get(slot).or_else(|| single.last()).unwrap();
                let un = frame.to_unit(cloud.positions()[n.index]);
                for a in 0..3 {
                    prop_assert_eq!(row[slot * 4 + a].to_bits(), un[a].to_bits());
                }
                let nv = values.normalize(cloud.values()[n.index]);
                prop_assert_eq!(row[slot * 4 + 3].to_bits(), nv.to_bits());
            }
            for a in 0..3 {
                prop_assert_eq!(row[k * 4 + a].to_bits(), up[a].to_bits());
            }
        }
    }

    #[test]
    fn grid_index_agrees_with_kdtree_on_clouds(field in arb_field(), fraction in 0.05f64..0.5, seed in any::<u64>()) {
        let cloud = ImportanceSampler::default().sample(&field, fraction, seed);
        let tree = KdTree::build(cloud.positions());
        let grid = GridIndex::build(cloud.positions(), 2.0);
        for &q_idx in cloud.void_indices().iter().step_by(17) {
            let q = field.grid().world_linear(q_idx);
            let a = tree.nearest(cloud.positions(), q).unwrap();
            let b = grid.nearest(cloud.positions(), q).unwrap();
            prop_assert!((a.dist_sq - b.dist_sq).abs() < 1e-12);
        }
    }

    #[test]
    fn snr_orders_noise_levels(field in arb_field(), noise in 0.01f32..0.2) {
        use fillvoid::core::metrics::snr_db;
        prop_assume!(field.std_dev() > 1e-3);
        let mut small = field.clone();
        let mut big = field.clone();
        for (i, (s, b)) in small
            .values_mut()
            .iter_mut()
            .zip(big.values_mut().iter_mut())
            .enumerate()
        {
            // deterministic alternating perturbation
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            *s += sign * noise;
            *b += sign * noise * 4.0;
        }
        let snr_small = snr_db(&field, &small);
        let snr_big = snr_db(&field, &big);
        prop_assert!(snr_small > snr_big, "{snr_small} vs {snr_big}");
    }

    #[test]
    fn gradient_field_linear_exactness(a in -3.0f64..3.0, b in -3.0f64..3.0, c in -3.0f64..3.0) {
        use fillvoid::field::gradient::GradientField;
        let g = Grid3::new([6, 6, 4]).unwrap();
        let f = ScalarField::from_world_fn(g, move |p| (a * p[0] + b * p[1] + c * p[2]) as f32);
        let grads = GradientField::compute(&f);
        for ijk in g.iter_ijk() {
            let v = grads.at(ijk);
            prop_assert!((v[0] as f64 - a).abs() < 1e-3);
            prop_assert!((v[1] as f64 - b).abs() < 1e-3);
            prop_assert!((v[2] as f64 - c).abs() < 1e-3);
        }
    }

    #[test]
    fn field_binary_roundtrip(field in arb_field()) {
        let mut buf = Vec::new();
        fillvoid::field::io::write_bin(&field, &mut buf).unwrap();
        let restored = fillvoid::field::io::read_bin(buf.as_slice()).unwrap();
        prop_assert_eq!(field, restored);
    }

    #[test]
    fn field_checkpoint_rejects_any_truncation(field in arb_field(), cut in any::<u64>()) {
        let mut buf = Vec::new();
        fillvoid::field::io::write_bin(&field, &mut buf).unwrap();
        let keep = (cut as usize) % buf.len(); // 0..len, always strictly shorter
        let r = fillvoid::field::faults::TruncatingReader::new(buf.as_slice(), keep);
        prop_assert!(fillvoid::field::io::read_bin(r).is_err(), "loaded from {keep}/{} bytes", buf.len());
    }

    #[test]
    fn field_checkpoint_rejects_any_bit_flip(field in arb_field(), at in any::<u64>(), bit in 0u32..8) {
        let mut buf = Vec::new();
        fillvoid::field::io::write_bin(&field, &mut buf).unwrap();
        let offset = (at as usize % buf.len()) as u64;
        let r = fillvoid::field::faults::BitFlipReader::new(buf.as_slice(), offset, 1u8 << bit);
        prop_assert!(fillvoid::field::io::read_bin(r).is_err(), "bit {bit} of byte {offset} undetected");
    }

    #[test]
    fn poisoned_fields_always_sanitize_to_finite_clouds(
        field in arb_field(),
        islands in 1usize..4,
        radius in 0usize..3,
        seed in any::<u64>(),
        fraction in 0.05f64..0.3,
    ) {
        let mut field = field;
        fillvoid::field::faults::poison_field(&mut field, islands, radius, seed);
        let cloud = ImportanceSampler::default().sample(&field, fraction, seed ^ 0xC10D);
        let kept: Vec<usize> = cloud.indices().iter().zip(cloud.values())
            .filter(|(_, v)| v.is_finite())
            .map(|(&i, _)| i)
            .collect();
        prop_assert!(!kept.is_empty(), "a clustered poison must leave finite samples");
        let clean = fillvoid::sampling::PointCloud::from_indices(&field, kept);
        prop_assert!(clean.values().iter().all(|v| v.is_finite()));
        // the classical fallback then yields an entirely finite patch field
        let patch = NearestReconstructor
            .reconstruct(&clean, field.grid())
            .unwrap();
        prop_assert!(patch.values().iter().all(|v| v.is_finite()));
    }
}
