//! Fault-tolerance acceptance scenario: a session survives a NaN-poisoned
//! timestep *and* a torn newest checkpoint in the same step.
//!
//! The faulty run must complete every step, mark `degraded: true` exactly
//! on the affected step, keep every reconstruction finite, and stay
//! within 1 dB of a fault-free run on the unaffected steps.

use fillvoid::core::checkpoint::CheckpointStore;
use fillvoid::core::insitu::{InSituConfig, InSituSession};
use fillvoid::core::pipeline::{FcnnPipeline, FineTuneSpec, PipelineConfig};
use fillvoid::field::faults::poison_field;
use fillvoid::prelude::*;

const STEPS: usize = 6;
const FAULT_STEP: usize = 3;

fn build() -> (Hurricane, FcnnPipeline, InSituConfig) {
    let sim = Hurricane::builder()
        .resolution([14, 14, 6])
        .timesteps(STEPS + 1)
        .build();
    let mut cfg = PipelineConfig::small_for_tests();
    cfg.trainer.epochs = 10;
    let pipeline = FcnnPipeline::train(&sim.timestep(0), &cfg, 3).expect("pretrain");
    let insitu = InSituConfig {
        fraction: 0.05,
        drift_threshold: None, // fine-tune every step (the paper's Fig. 11 mode)
        fine_tune: FineTuneSpec {
            epochs: 10,
            ..FineTuneSpec::case1()
        },
        probe_rows: 256,
        score: true,
        ..Default::default()
    };
    (sim, pipeline, insitu)
}

#[test]
fn poisoned_step_with_torn_checkpoint_completes_and_degrades_exactly_once() {
    let (sim, pipeline, insitu) = build();

    // Reference run: identical seeds, no faults.
    let mut clean = InSituSession::new(pipeline.clone(), insitu.clone());
    let mut clean_snr = Vec::new();
    for t in 0..STEPS {
        let (_, recon, r) = clean.step(&sim.timestep(t)).expect("clean step");
        assert!(!r.degraded, "fault-free run must never degrade");
        assert!(recon.values().iter().all(|v| v.is_finite()));
        clean_snr.push(r.snr.expect("scoring on"));
    }

    // Faulty run: checkpointed session; at FAULT_STEP the incoming field
    // is NaN/Inf-poisoned AND the newest checkpoint is truncated (a crash
    // tore it), so recovery must fall back to an older generation.
    let dir = std::env::temp_dir().join(format!("fv_fault_accept_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = CheckpointStore::open(&dir, 4).expect("open store");
    let mut faulty = InSituSession::with_checkpoints(pipeline, insitu, store);

    let mut reports = Vec::new();
    for t in 0..STEPS {
        let mut field = sim.timestep(t);
        if t == FAULT_STEP {
            let store = faulty.checkpoints().expect("store attached");
            let newest = store.latest().expect("healthy steps were checkpointed");
            assert!(newest >= 1, "need an older generation to fall back to");
            let path = store.path_for(newest);
            let bytes = std::fs::read(&path).expect("read checkpoint");
            std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("tear checkpoint");

            let poisoned = poison_field(&mut field, 3, 2, 1234);
            assert!(poisoned > 0);
        }
        let (cloud, recon, r) = faulty.step(&field).expect("faulty step must complete");
        assert!(
            cloud.values().iter().all(|v| v.is_finite()),
            "step {t}: stored cloud must be sanitized"
        );
        assert!(
            recon.values().iter().all(|v| v.is_finite()),
            "step {t}: reconstruction must be finite"
        );
        reports.push(r);
    }

    for (t, r) in reports.iter().enumerate() {
        assert_eq!(r.step, t);
        assert_eq!(
            r.degraded,
            t == FAULT_STEP,
            "degraded must be reported exactly for the affected step (step {t}: {r:?})"
        );
        assert!(r.snr.expect("scoring on").is_finite(), "step {t} SNR");
    }
    let fault = &reports[FAULT_STEP];
    assert!(fault.poisoned_voxels > 0);
    assert!(
        fault.restored_from_checkpoint,
        "the poisoned fine-tune must trigger a checkpoint restore: {fault:?}"
    );

    // Recovery quality: unaffected steps within 1 dB of the fault-free run.
    for t in 0..STEPS {
        if t == FAULT_STEP {
            continue;
        }
        let faulty_snr = reports[t].snr.unwrap();
        let delta = (faulty_snr - clean_snr[t]).abs();
        assert!(
            delta <= 1.0,
            "step {t}: faulty {faulty_snr:.3} dB vs clean {:.3} dB (Δ {delta:.3})",
            clean_snr[t]
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
