//! fv-serve acceptance: protocol robustness, wire-vs-direct bitwise
//! identity, stats round-trip, and graceful start/stop hygiene — all over
//! real loopback sockets.

use fillvoid::prelude::*;
use fillvoid::serve::proto::{self, ErrorCode, Op, Status};
use fillvoid::serve::registry::CanarySpec;
use fillvoid::serve::{
    fingerprint_f32, BatchConfig, Client, ClientError, ModelRegistry, RetryPolicy, ServeConfig,
    Server, VERSION_ACTIVE,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const DATASET: &str = "hurricane";
const VERSION: u32 = 1;

fn fixture() -> &'static (ScalarField, PointCloud, FcnnPipeline, ScalarField) {
    static CELL: OnceLock<(ScalarField, PointCloud, FcnnPipeline, ScalarField)> = OnceLock::new();
    CELL.get_or_init(|| {
        let sim = Hurricane::builder().resolution([12, 12, 6]).build();
        let field = sim.timestep(0);
        let mut cfg = PipelineConfig::small_for_tests();
        cfg.trainer.epochs = 5;
        let pipeline = FcnnPipeline::train(&field, &cfg, 3).expect("train");
        let sampler = ImportanceSampler::new(ImportanceConfig::default());
        let cloud = sampler.sample(&field, 0.05, 21);
        let direct = pipeline.reconstruct(&cloud, field.grid()).expect("direct");
        (field, cloud, pipeline, direct)
    })
}

/// A second trained pipeline (different seed) plus its direct-path
/// output on the shared fixture cloud/grid — the "v2" model for swap
/// tests. Bitwise distinct from v1's output by construction.
fn fixture_v2() -> &'static (FcnnPipeline, ScalarField) {
    static CELL: OnceLock<(FcnnPipeline, ScalarField)> = OnceLock::new();
    CELL.get_or_init(|| {
        let (field, cloud, _, direct_v1) = fixture();
        let mut cfg = PipelineConfig::small_for_tests();
        cfg.trainer.epochs = 5;
        let pipeline = FcnnPipeline::train(field, &cfg, 4).expect("train v2");
        let direct = pipeline.reconstruct(cloud, field.grid()).expect("direct v2");
        assert_ne!(
            direct.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            direct_v1.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "v1 and v2 must be distinguishable for swap routing checks"
        );
        (pipeline, direct)
    })
}

fn start_server_with(mutate: impl FnOnce(&mut ServeConfig)) -> Server {
    let (_, _, pipeline, _) = fixture();
    let registry = Arc::new(ModelRegistry::new(256 << 20));
    registry
        .insert(DATASET, VERSION, pipeline.clone())
        .expect("seed registry");
    let mut cfg = ServeConfig {
        batch: BatchConfig {
            flush_after: Duration::from_micros(200),
            ..Default::default()
        },
        ..Default::default()
    };
    mutate(&mut cfg);
    Server::start_with_registry(cfg, registry).expect("start server")
}

fn start_server_cfg(allow_remote_shutdown: bool) -> Server {
    start_server_with(|c| c.allow_remote_shutdown = allow_remote_shutdown)
}

fn start_server() -> Server {
    start_server_cfg(false)
}

fn open_and_upload(client: &mut Client) -> u64 {
    let (_, cloud, _, _) = fixture();
    let session = client
        .open_session("acme", DATASET, VERSION)
        .expect("open session");
    client.put_cloud(session, cloud).expect("put cloud");
    session
}

fn assert_bitwise(served: &ScalarField, direct: &ScalarField) {
    assert_eq!(served.values().len(), direct.values().len());
    for (i, (s, d)) in served.values().iter().zip(direct.values()).enumerate() {
        assert_eq!(
            s.to_bits(),
            d.to_bits(),
            "voxel {i} served {s} != direct {d}"
        );
    }
}

#[test]
fn served_reconstruction_is_bitwise_identical_to_direct() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);
    let served = client
        .reconstruct(session, field.grid(), 0)
        .expect("reconstruct");
    assert!(!served.degraded, "healthy path must not degrade");
    assert_bitwise(&served.field, direct);
    client.close_session(session).expect("close");
    server.shutdown();
}

#[test]
fn concurrent_clients_all_get_bitwise_identical_answers() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let session = open_and_upload(&mut client);
                for _ in 0..3 {
                    let served = client
                        .reconstruct(session, field.grid(), 0)
                        .unwrap_or_else(|e| panic!("client {i}: {e}"));
                    assert!(!served.degraded);
                    assert_bitwise(&served.field, direct);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown();
}

/// Each malformed stream must produce a typed error response (or a clean
/// connection drop) without disturbing a healthy session on another
/// connection.
#[test]
fn malformed_frames_hurt_only_their_own_connection() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let addr = server.addr();

    // The healthy bystander: opened first, verified after every attack.
    let mut healthy = Client::connect(addr).expect("connect healthy");
    let session = open_and_upload(&mut healthy);

    // (a) bad magic
    {
        let mut c = Client::connect(addr).expect("connect");
        c.send_raw(b"BOGUS-MAGIC-FRAME-0000").unwrap();
        // A BadFrame reply is best-effort; the server may just drop the
        // stream, which is also legal.
        if let Ok(frame) = c.read_raw() {
            assert_eq!(frame.status, Status::Error as u8);
            let body = proto::ErrorBody::decode(&frame.payload).expect("error body");
            assert_eq!(body.code, ErrorCode::BadFrame as u16);
        }
    }

    // (b) bad version
    {
        let mut c = Client::connect(addr).expect("connect");
        let mut frame = proto::encode_frame(Op::Ping as u8, Status::Ok as u8, b"hi");
        frame[4] = 0xFF; // version LE low byte
        frame[5] = 0xFF;
        c.send_raw(&frame).unwrap();
        if let Ok(frame) = c.read_raw() {
            assert_eq!(frame.status, Status::Error as u8);
        }
    }

    // (c) oversized declared payload length
    {
        let mut c = Client::connect(addr).expect("connect");
        let mut frame = proto::encode_frame(Op::Ping as u8, Status::Ok as u8, b"");
        let huge = (proto::MAX_PAYLOAD + 1).to_le_bytes();
        frame[8..12].copy_from_slice(&huge);
        c.send_raw(&frame[..12]).unwrap();
        if let Ok(frame) = c.read_raw() {
            assert_eq!(frame.status, Status::Error as u8);
        }
    }

    // (d) CRC-corrupted payload
    {
        let mut c = Client::connect(addr).expect("connect");
        let mut frame = proto::encode_frame(Op::Ping as u8, Status::Ok as u8, b"payload");
        frame[13] ^= 0x5A; // flip a payload bit; trailing CRC now mismatches
        c.send_raw(&frame).unwrap();
        if let Ok(frame) = c.read_raw() {
            assert_eq!(frame.status, Status::Error as u8);
        }
    }

    // (e) truncated frame + mid-request disconnect
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut s = stream.try_clone().expect("clone");
        let frame = proto::encode_frame(Op::Ping as u8, Status::Ok as u8, b"never finished");
        s.write_all(&frame[..frame.len() / 2]).unwrap();
        s.flush().unwrap();
        drop(s);
        drop(stream); // connection torn mid-frame
    }

    // (f) unknown opcode — typed error, connection stays usable
    {
        let mut c = Client::connect(addr).expect("connect");
        c.send_raw(&proto::encode_frame(0x7E, Status::Ok as u8, b""))
            .unwrap();
        let frame = c.read_raw().expect("unknown-op reply");
        assert_eq!(frame.status, Status::Error as u8);
        let body = proto::ErrorBody::decode(&frame.payload).expect("error body");
        assert_eq!(body.code, ErrorCode::UnknownOp as u16);
        // Same connection still serves well-formed requests.
        c.ping().expect("ping after unknown op");
    }

    // After every attack the bystander still reconstructs, bit for bit.
    let served = healthy
        .reconstruct(session, field.grid(), 0)
        .expect("healthy session survived");
    assert!(!served.degraded);
    assert_bitwise(&served.field, direct);
    server.shutdown();
}

#[test]
fn typed_errors_for_unknown_model_session_and_missing_cloud() {
    let (field, _, _, _) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");

    match client.open_session("acme", "no-such-dataset", 9) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::UnknownModel as u16)
        }
        other => panic!("expected UnknownModel, got {other:?}"),
    }

    match client.reconstruct(0xDEAD_BEEF, field.grid(), 0) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::UnknownSession as u16)
        }
        other => panic!("expected UnknownSession, got {other:?}"),
    }

    let session = client
        .open_session("acme", DATASET, VERSION)
        .expect("open session");
    match client.reconstruct(session, field.grid(), 0) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::BadRequest as u16, "no cloud uploaded yet")
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn stats_op_reports_tenants_and_telemetry() {
    let (field, _, _, _) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);
    client
        .reconstruct(session, field.grid(), 0)
        .expect("reconstruct");

    let stats = client.stats().expect("stats");
    assert!(stats.starts_with('{') && stats.ends_with('}'), "{stats}");
    for key in ["\"sessions\"", "\"registry\"", "\"tenants\"", "\"telemetry\"", "\"acme\""] {
        assert!(stats.contains(key), "stats missing {key}: {stats}");
    }
    // One admitted request, nothing in flight after the response.
    assert!(stats.contains("\"requests\": 1"), "{stats}");
    assert!(stats.contains("\"inflight\": 0"), "{stats}");
    server.shutdown();
}

#[test]
fn session_slots_are_reclaimed_when_connections_drop() {
    let server = start_server();
    {
        let mut a = Client::connect(server.addr()).expect("connect");
        let mut b = Client::connect(server.addr()).expect("connect");
        open_and_upload(&mut a);
        open_and_upload(&mut b);
        assert_eq!(server.session_count(), 2);
        // Both dropped without CloseSession — the connection teardown
        // must reclaim them.
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.session_count() != 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.session_count(), 0, "dropped connections leaked sessions");
}

/// 100 start/stop cycles: no thread leak, no port leak, shutdown is
/// idempotent. Thread counts are process-wide, so the bound is a slack
/// band rather than exact equality (other tests run concurrently).
#[test]
fn repeated_start_stop_leaks_nothing() {
    fn threads() -> usize {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("Threads:"))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|n| n.parse().ok())
            })
            .unwrap_or(0)
    }

    let mut last_addr = None;
    let mut baseline = 0usize;
    for cycle in 0..100 {
        let mut server = Server::start(ServeConfig::default()).expect("start");
        let mut client = Client::connect(server.addr()).expect("connect");
        client.ping().expect("ping");
        last_addr = Some(server.addr());
        server.shutdown();
        server.shutdown(); // idempotent
        if cycle == 4 {
            baseline = threads();
        }
    }
    let final_threads = threads();
    assert!(
        final_threads <= baseline + 12,
        "thread leak across cycles: baseline {baseline}, final {final_threads}"
    );
    // The last listener really released its port: we can rebind it.
    let addr = last_addr.unwrap();
    std::net::TcpListener::bind(addr).expect("port still held after shutdown");
}

#[test]
fn shutdown_op_stops_the_server() {
    let (field, _, _, _) = fixture();
    let mut server = start_server_cfg(true);
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);
    // The probe connection exists before the Shutdown op, so it is
    // guaranteed to talk to THIS server — a freed ephemeral port can be
    // rebound by a concurrently running test's server.
    let mut probe = Client::connect(server.addr()).expect("connect probe");
    client.shutdown_server().expect("shutdown op");

    // New work is refused with a typed ShuttingDown status (or the
    // connection is already torn down).
    match probe.reconstruct(session, field.grid(), 0) {
        Err(ClientError::Server { status, .. }) => {
            assert_eq!(status, Status::ShuttingDown)
        }
        Err(_) => {} // connection dropped — also fine
        Ok(_) => panic!("server accepted work after Shutdown op"),
    }
    server.shutdown();
}

/// By default (multi-tenant posture) the remote Shutdown op is refused
/// with a typed Forbidden error and the server keeps serving everyone.
#[test]
fn shutdown_op_is_forbidden_by_default() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);

    match client.shutdown_server() {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::Forbidden as u16)
        }
        other => panic!("expected Forbidden, got {other:?}"),
    }
    // Same connection, and a fresh one, still serve full-fidelity work.
    let served = client
        .reconstruct(session, field.grid(), 0)
        .expect("serving continues after refused shutdown");
    assert_bitwise(&served.field, direct);
    let mut other = Client::connect(server.addr()).expect("new connections still accepted");
    other.ping().expect("ping");
    server.shutdown();
}

/// Sessions are bound to the connection that opened them: another
/// connection holding the id can neither use nor close the session.
#[test]
fn sessions_are_isolated_per_connection() {
    let (field, cloud, _, direct) = fixture();
    let mut server = start_server();
    let mut owner = Client::connect(server.addr()).expect("connect owner");
    let session = open_and_upload(&mut owner);

    let mut intruder = Client::connect(server.addr()).expect("connect intruder");
    let expect_unknown = |r: Result<(), ClientError>, what: &str| match r {
        Err(ClientError::Server { code, .. }) => assert_eq!(
            code,
            ErrorCode::UnknownSession as u16,
            "{what} must read as unknown session"
        ),
        other => panic!("{what}: expected UnknownSession, got {other:?}"),
    };
    expect_unknown(
        intruder
            .reconstruct(session, field.grid(), 0)
            .map(|_| ()),
        "foreign reconstruct",
    );
    expect_unknown(intruder.put_cloud(session, cloud), "foreign put_cloud");
    expect_unknown(intruder.close_session(session), "foreign close");

    // The owner's session is untouched: still registered, still serving
    // the exact direct-path bits with its original cloud.
    assert_eq!(server.session_count(), 1);
    let served = owner
        .reconstruct(session, field.grid(), 0)
        .expect("owner reconstruct");
    assert_bitwise(&served.field, direct);
    server.shutdown();
}

/// A request naming a pathologically large target grid (including one
/// whose point count wraps u64) is refused with a typed BadRequest
/// before any point-count-sized allocation, and the connection survives.
#[test]
fn oversized_target_grids_are_rejected_up_front() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);

    // Far over the cap, but constructible client-side (Grid3 itself
    // allocates nothing).
    let huge = fillvoid::field::Grid3::new([100_000, 100_000, 100_000]).expect("huge grid");
    match client.reconstruct(session, &huge, 0) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::BadRequest as u16)
        }
        other => panic!("expected BadRequest for huge target, got {other:?}"),
    }

    // Dims whose product wraps u64 entirely — hand-encoded, since no
    // honest Grid3 produces them.
    let wrap = proto::ReconstructReq {
        session,
        target: proto::GridWire {
            dims: [u64::MAX, u64::MAX, u64::MAX],
            origin: [0.0; 3],
            spacing: [1.0; 3],
        },
        deadline_ms: 0,
        request_id: 0,
    };
    client
        .send_raw(&proto::encode_frame(
            Op::Reconstruct as u8,
            Status::Ok as u8,
            &wrap.encode(),
        ))
        .expect("send wrapping dims");
    let frame = client.read_raw().expect("typed reply");
    assert_eq!(frame.status, Status::Error as u8);
    let body = proto::ErrorBody::decode(&frame.payload).expect("error body");
    assert_eq!(body.code, ErrorCode::BadRequest as u16);

    // A PutCloud naming a huge source grid is bounded the same way.
    let put = proto::PutCloudReq {
        session,
        grid: proto::GridWire {
            dims: [1 << 40, 1 << 40, 1],
            origin: [0.0; 3],
            spacing: [1.0; 3],
        },
        indices: vec![0],
        values: vec![1.0],
    };
    client
        .send_raw(&proto::encode_frame(
            Op::PutCloud as u8,
            Status::Ok as u8,
            &put.encode(),
        ))
        .expect("send huge put_cloud");
    let frame = client.read_raw().expect("typed reply");
    assert_eq!(frame.status, Status::Error as u8);

    // Same connection still serves a legitimate request, bit for bit.
    let served = client
        .reconstruct(session, field.grid(), 0)
        .expect("legitimate reconstruct after rejections");
    assert_bitwise(&served.field, direct);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Model lifecycle: hot-swap, canary, drain
// ---------------------------------------------------------------------------

/// Hot-swap contract: sessions opened before the promotion keep serving
/// the exact bits of the version they were pinned to; sessions opened
/// after it get the new version; the displaced version retires once its
/// last session closes.
#[test]
fn hot_swap_pins_old_sessions_and_routes_new_ones() {
    let (field, _, _, direct_v1) = fixture();
    let (pipeline_v2, direct_v2) = fixture_v2();
    let mut server = start_server();
    let registry = server.registry().clone();

    let mut old = Client::connect(server.addr()).expect("connect old");
    let (old_session, v) = old
        .open_session_versioned("acme", DATASET, VERSION_ACTIVE)
        .expect("open before swap");
    assert_eq!(v, 1, "ACTIVE resolves to v1 before the swap");
    let (_, cloud, _, _) = fixture();
    old.put_cloud(old_session, cloud).expect("put cloud");

    registry
        .promote(DATASET, 2, pipeline_v2.clone(), false)
        .expect("promote v2");

    // The pre-swap session still serves v1, bit for bit.
    let served = old
        .reconstruct(old_session, field.grid(), 0)
        .expect("pinned session survives the swap");
    assert_bitwise(&served.field, direct_v1);

    // A post-swap ACTIVE session gets v2, bit for bit.
    let mut new = Client::connect(server.addr()).expect("connect new");
    let (new_session, v) = new
        .open_session_versioned("acme", DATASET, VERSION_ACTIVE)
        .expect("open after swap");
    assert_eq!(v, 2, "ACTIVE resolves to v2 after the swap");
    new.put_cloud(new_session, cloud).expect("put cloud");
    let served = new
        .reconstruct(new_session, field.grid(), 0)
        .expect("new session");
    assert_bitwise(&served.field, direct_v2);

    // v1 is draining while the old session lives, retired after it
    // closes.
    assert!(registry.swap_stats().draining >= 1, "v1 should be draining");
    old.close_session(old_session).expect("close old");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while registry.swap_stats().draining != 0 && std::time::Instant::now() < deadline {
        registry.poll_drains();
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = registry.swap_stats();
    assert_eq!(stats.draining, 0, "v1 never drained");
    assert!(stats.retired >= 1);
    assert!(!registry.contains(DATASET, 1), "retired v1 still resident");
    assert!(registry.contains(DATASET, 2));
    server.shutdown();
}

/// A candidate that fails its canary is rejected with a typed error and
/// zero side effects: the active version keeps serving identical bits.
/// Covers both the in-process `promote` API and the wire `SwapModel` op
/// (which also requires `FV_SERVE_ALLOW_SWAP`).
#[test]
fn canary_failing_swap_is_rejected_and_old_version_keeps_serving() {
    let (field, cloud, pipeline_v1, direct_v1) = fixture();
    let (pipeline_v2, _) = fixture_v2();

    let mut server = start_server_with(|c| c.allow_remote_swap = true);
    let registry = server.registry().clone();

    // Canary pinned to v1's exact output bits: any v2 candidate with
    // different weights must fail the fingerprint check.
    let expect_fp = fingerprint_f32(direct_v1.values());
    registry.set_canary(
        DATASET,
        CanarySpec {
            cloud: Arc::new(cloud.clone()),
            reference: field.clone(),
            snr_floor_db: None,
            fingerprint: Some(expect_fp),
        },
    );

    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);

    // Wire-level rejection: typed SwapRejected, not a dropped connection.
    match client.swap_model(DATASET, 2, pipeline_v2) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::SwapRejected as u16)
        }
        other => panic!("expected SwapRejected, got {other:?}"),
    }

    // Rollback = nothing installed: v1 still active, v2 absent, and the
    // live session still serves v1's exact bits on the same connection.
    assert_eq!(registry.active_version(DATASET), Some(1));
    assert!(!registry.contains(DATASET, 2));
    assert_eq!(registry.swap_stats().draining, 0);
    let served = client
        .reconstruct(session, field.grid(), 0)
        .expect("serving survived the rejected swap");
    assert_bitwise(&served.field, direct_v1);

    // A candidate that *passes* the canary (identical weights → identical
    // bits) promotes fine through the same wire path.
    client
        .swap_model(DATASET, 2, pipeline_v1)
        .expect("bit-identical candidate must pass the fingerprint canary");
    assert_eq!(registry.active_version(DATASET), Some(2));
    server.shutdown();
}

/// The wire `SwapModel` op is refused by default (multi-tenant posture),
/// exactly like remote `Shutdown`.
#[test]
fn swap_op_is_forbidden_by_default() {
    let (_, _, pipeline, _) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    match client.swap_model(DATASET, 2, pipeline) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::Forbidden as u16)
        }
        other => panic!("expected Forbidden, got {other:?}"),
    }
    assert_eq!(server.registry().active_version(DATASET), Some(1));
    server.shutdown();
}

/// Swaps under concurrent load: every response must be bitwise correct
/// *for the version its session was pinned to* — never a blend, never a
/// misroute — while versions advance underneath the clients.
#[test]
fn hot_swaps_under_load_never_misroute_or_drop() {
    let (field, cloud, pipeline_v1, direct_v1) = fixture();
    let (pipeline_v2, direct_v2) = fixture_v2();
    let mut server = start_server();
    let registry = server.registry().clone();
    let addr = server.addr();

    const SWAPS: u32 = 8;
    const CLIENTS: usize = 4;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let stop = stop.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut served = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let (session, version) = client
                            .open_session_versioned(
                                &format!("tenant-{i}"),
                                DATASET,
                                VERSION_ACTIVE,
                            )
                            .expect("open under swap load");
                        client.put_cloud(session, cloud).expect("put cloud");
                        let out = client
                            .reconstruct(session, field.grid(), 0)
                            .expect("reconstruct under swap load");
                        // Odd versions carry v1's weights, even carry v2's.
                        let expect = if version % 2 == 1 { direct_v1 } else { direct_v2 };
                        assert!(!out.degraded);
                        assert_bitwise(&out.field, expect);
                        client.close_session(session).expect("close");
                        served += 1;
                    }
                    served
                })
            })
            .collect();

        // Alternate the two weight sets across versions 2..=SWAPS+1.
        for v in 2..=(SWAPS + 1) {
            let p = if v % 2 == 1 { pipeline_v1 } else { pipeline_v2 };
            registry
                .promote(DATASET, v, p.clone(), false)
                .expect("promote under load");
            std::thread::sleep(Duration::from_millis(30));
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        let total: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
        assert!(total > 0, "load generator produced no requests");
    });

    let stats = registry.swap_stats();
    assert_eq!(stats.promoted, u64::from(SWAPS));
    // All sessions are closed: every displaced version must drain.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while registry.swap_stats().draining != 0 && std::time::Instant::now() < deadline {
        registry.poll_drains();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(registry.swap_stats().draining, 0, "versions stuck draining");
    server.shutdown();
}

/// Regression: `Server::shutdown` while a displaced version is still
/// draining (live pinned sessions) must join every thread, leak no
/// session slots, and leave the registry consistent (nothing draining).
#[test]
fn shutdown_during_swap_drain_is_clean() {
    let (field, _, _, direct_v1) = fixture();
    let (pipeline_v2, _) = fixture_v2();
    let mut server = start_server();
    let registry = server.registry().clone();

    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);
    let served = client
        .reconstruct(session, field.grid(), 0)
        .expect("warm request");
    assert_bitwise(&served.field, direct_v1);

    registry
        .promote(DATASET, 2, pipeline_v2.clone(), false)
        .expect("promote v2");
    assert!(registry.swap_stats().draining >= 1, "v1 should be draining");

    // Session still open and pinned to the draining v1: shut down NOW.
    server.shutdown();

    assert_eq!(server.session_count(), 0, "shutdown leaked session slots");
    let stats = registry.swap_stats();
    assert_eq!(
        stats.draining, 0,
        "shutdown left versions draining: {stats:?}"
    );
    assert!(!registry.contains(DATASET, 1), "v1 survived its drain");
}

// ---------------------------------------------------------------------------
// Connection watchdogs
// ---------------------------------------------------------------------------

/// Idle connections are reaped after the TTL (their session slots
/// reclaimed), while a connection that heartbeats with Ping stays up.
#[test]
fn idle_connections_are_reaped_but_ping_heartbeat_survives() {
    let (_, _, _, _) = fixture();
    let mut server = start_server_with(|c| c.idle_ttl = Duration::from_millis(200));

    let mut idle = Client::connect(server.addr()).expect("connect idle");
    let _session = open_and_upload(&mut idle);
    assert_eq!(server.session_count(), 1);

    let mut beating = Client::connect(server.addr()).expect("connect heartbeat");
    beating.ping().expect("first ping");

    // Heartbeat for ~5 TTLs; the idle peer sends nothing.
    for _ in 0..10 {
        std::thread::sleep(Duration::from_millis(100));
        beating.ping().expect("heartbeat ping must keep the connection");
    }

    // The idle connection is gone: its session slot was reclaimed and
    // its next request fails (reap notice or torn connection).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.session_count() != 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(server.session_count(), 0, "idle session was not reaped");
    assert!(idle.ping().is_err(), "reaped connection still answered");
    beating.ping().expect("heartbeat connection unaffected by the reap");
    server.shutdown();
}

/// A peer that starts a frame and stalls is disconnected once the
/// per-frame I/O budget expires — it cannot pin a handler thread — and a
/// healthy bystander is unaffected.
#[test]
fn stalled_mid_frame_peers_are_disconnected() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server_with(|c| {
        c.io_timeout = Duration::from_millis(200);
        c.idle_ttl = Duration::from_secs(60);
    });

    let mut healthy = Client::connect(server.addr()).expect("connect healthy");
    let session = open_and_upload(&mut healthy);

    let mut staller = TcpStream::connect(server.addr()).expect("connect staller");
    let frame = proto::encode_frame(Op::Ping as u8, Status::Ok as u8, b"never finished");
    staller.write_all(&frame[..6]).expect("send partial frame");
    staller.flush().unwrap();

    // Server must give up on the stalled frame within the budget (plus
    // slack) instead of waiting forever.
    staller
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 256];
    use std::io::Read;
    let t0 = std::time::Instant::now();
    // Drain whatever arrives until EOF; a typed stall notice is optional,
    // the disconnect is not.
    loop {
        match staller.read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) => panic!("expected disconnect, got hang/err after {:?}: {e}", t0.elapsed()),
        }
    }
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "stalled peer held its handler too long: {:?}",
        t0.elapsed()
    );

    let served = healthy
        .reconstruct(session, field.grid(), 0)
        .expect("bystander survived the stalled peer");
    assert_bitwise(&served.field, direct);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Idempotent retry + self-healing client
// ---------------------------------------------------------------------------

/// Two requests with the same nonzero request id: the second is answered
/// from the reply cache — bitwise-identical payload, no second admission,
/// no double-counted tenant stats.
#[test]
fn idempotent_request_ids_replay_without_recompute() {
    let (field, cloud, _, direct) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let (session, _) = client
        .open_session_versioned("retry-t", DATASET, VERSION)
        .expect("open");
    client.put_cloud(session, cloud).expect("put cloud");

    let req = proto::ReconstructReq {
        session,
        target: proto::GridWire::from_grid(field.grid()),
        deadline_ms: 0,
        request_id: 0x005E_ED1D,
    };
    let raw = proto::encode_frame(Op::Reconstruct as u8, Status::Ok as u8, &req.encode());

    client.send_raw(&raw).expect("first send");
    let first = client.read_raw().expect("first reply");
    assert_eq!(first.status, Status::Ok as u8);

    // Identical bytes again — as a healing client would after losing the
    // first reply mid-read.
    client.send_raw(&raw).expect("retry send");
    let second = client.read_raw().expect("replayed reply");
    assert_eq!(second.status, first.status);
    assert_eq!(second.payload, first.payload, "replay must be byte-identical");

    let body = proto::ReconstructResp::decode(&second.payload).expect("decode");
    let served = ScalarField::from_vec(*field.grid(), body.values).expect("field");
    assert_bitwise(&served, direct);

    // Only ONE admitted request for this tenant; one recorded cache hit.
    let stats = client.stats().expect("stats");
    assert!(
        stats.contains("\"tenant\": \"retry-t\", \"requests\": 1,"),
        "replay was admitted as a second request: {stats}"
    );
    assert!(stats.contains("\"retry_cache\""), "{stats}");
    assert!(stats.contains("\"hits\": 1"), "replay missed the cache: {stats}");
    server.shutdown();
}

/// The self-healing client survives a torn connection mid-workload:
/// reconnects with backoff, re-opens its session (original version
/// spec), re-uploads its cloud, and the retried reconstruction returns
/// the exact direct-path bits.
#[test]
fn healing_client_recovers_from_torn_connections() {
    let (field, cloud, _, direct) = fixture();
    let mut server = start_server();

    let policy = RetryPolicy {
        attempts: 5,
        base: Duration::from_millis(10),
        max: Duration::from_millis(200),
    };
    let mut client = Client::connect_healing(server.addr(), policy).expect("connect");
    let (session, v) = client
        .open_session_versioned("healer", DATASET, VERSION_ACTIVE)
        .expect("open");
    assert_eq!(v, 1);
    client.put_cloud(session, cloud).expect("put cloud");
    let served = client.reconstruct(session, field.grid(), 0).expect("warm");
    assert_bitwise(&served.field, direct);

    // Tear the TCP connection under the client, twice, with work after
    // each tear. Every op must succeed through the healing layer.
    for round in 0..2 {
        client.break_connection();
        let served = client
            .reconstruct(session, field.grid(), 0)
            .unwrap_or_else(|e| panic!("round {round}: healing reconstruct failed: {e}"));
        assert!(!served.degraded);
        assert_bitwise(&served.field, direct);
    }
    assert!(client.reconnects() >= 2, "healing layer never reconnected");
    assert_eq!(client.pinned_version(session), Some(1));

    client.close_session(session).expect("close");
    client.ping().expect("ping after close");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Frame-decoder fuzz
// ---------------------------------------------------------------------------

/// Deterministic xorshift for the fuzz tests — no external RNG deps.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Seeded mutation fuzz of the frame decoder, offline: thousands of
/// corrupted frames through `read_frame` must never panic — every
/// outcome is a decoded frame or a typed `FrameError`.
#[test]
fn frame_decoder_survives_seeded_mutation_fuzz() {
    let mut rng = Rng(0x5EED_F00D);
    let bodies: Vec<Vec<u8>> = vec![
        Vec::new(),
        b"ping".to_vec(),
        proto::OpenSessionReq {
            tenant: "t".into(),
            dataset: DATASET.into(),
            version: 1,
        }
        .encode()
        .unwrap(),
        proto::ReconstructReq {
            session: 7,
            target: proto::GridWire {
                dims: [4, 4, 2],
                origin: [0.0; 3],
                spacing: [1.0; 3],
            },
            deadline_ms: 5,
            request_id: 9,
        }
        .encode(),
        proto::SwapModelReq {
            dataset: DATASET.into(),
            version: 3,
            pipeline: vec![0xAB; 64],
        }
        .encode()
        .unwrap(),
    ];
    for iter in 0..2_000 {
        let body = &bodies[(rng.next() as usize) % bodies.len()];
        let op = (rng.next() % 9) as u8;
        let mut frame = proto::encode_frame(op, Status::Ok as u8, body);
        // 1..=4 random byte mutations: flips, overwrites, truncations,
        // and appends.
        for _ in 0..=(rng.next() % 4) {
            match rng.next() % 4 {
                0 => {
                    let i = (rng.next() as usize) % frame.len();
                    frame[i] ^= (rng.next() % 255 + 1) as u8;
                }
                1 => {
                    let i = (rng.next() as usize) % frame.len();
                    frame[i] = rng.next() as u8;
                }
                2 => {
                    let keep = (rng.next() as usize) % (frame.len() + 1);
                    frame.truncate(keep);
                }
                _ => frame.push(rng.next() as u8),
            }
            if frame.is_empty() {
                frame.push(rng.next() as u8);
            }
        }
        // Must not panic; Ok is legal when mutations cancel out or hit
        // only trailing appended bytes.
        let mut cursor = std::io::Cursor::new(frame);
        match proto::read_frame(&mut cursor) {
            Ok(_) | Err(_) => {}
        }
        // And decoders over arbitrary payload bytes must not panic
        // either.
        let junk: Vec<u8> = (0..(rng.next() % 96)).map(|_| rng.next() as u8).collect();
        let _ = proto::OpenSessionReq::decode(&junk);
        let _ = proto::PutCloudReq::decode(&junk);
        let _ = proto::ReconstructReq::decode(&junk);
        let _ = proto::SwapModelReq::decode(&junk);
        let _ = proto::ReconstructResp::decode(&junk);
        let _ = proto::ErrorBody::decode(&junk);
        let _ = proto::OpenSessionResp::decode(&junk);
        let _ = iter;
    }
}

/// The same mutation generator on the wire: each corrupted frame costs
/// at most its own connection (typed error or clean drop), and a healthy
/// bystander session keeps serving exact bits throughout.
#[test]
fn on_wire_fuzz_hurts_only_its_own_connection() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let addr = server.addr();
    let mut healthy = Client::connect(addr).expect("connect healthy");
    let session = open_and_upload(&mut healthy);

    let mut rng = Rng(0xF0CC_BEEF);
    for round in 0..24 {
        let mut frame = proto::encode_frame(
            Op::Ping as u8,
            Status::Ok as u8,
            b"fuzz-round-payload",
        );
        for _ in 0..=(rng.next() % 3) {
            let i = (rng.next() as usize) % frame.len();
            frame[i] ^= (rng.next() % 255 + 1) as u8;
        }
        let mut c = Client::connect(addr).expect("connect fuzzer");
        c.send_raw(&frame).expect("send fuzzed frame");
        // Any reply must be a well-formed frame; no reply (dropped
        // connection) is equally legal.
        let _ = c.read_raw();

        if round % 6 == 5 {
            let served = healthy
                .reconstruct(session, field.grid(), 0)
                .expect("bystander mid-fuzz");
            assert_bitwise(&served.field, direct);
        }
    }
    let served = healthy
        .reconstruct(session, field.grid(), 0)
        .expect("bystander after fuzz");
    assert_bitwise(&served.field, direct);
    server.shutdown();
}

/// Scatter a served brick into a dense x-fastest volume.
fn scatter(dense: &mut [f32], dims: [usize; 3], b: &fillvoid::serve::ServedBrick) {
    let mut src = 0usize;
    for z in 0..b.dims[2] {
        for y in 0..b.dims[1] {
            let row = (b.start[2] + z) * dims[1] + (b.start[1] + y);
            let dst = row * dims[0] + b.start[0];
            dense[dst..dst + b.dims[0]].copy_from_slice(&b.values[src..src + b.dims[0]]);
            src += b.dims[0];
        }
    }
}

/// Tentpole acceptance: the streamed brick path is bitwise-identical to
/// both the dense wire path and the in-process direct reconstruction, at
/// every brick size — including degenerate 1-voxel bricks and bricks
/// larger than the whole grid (one-brick layout).
#[test]
fn bricked_stream_is_bitwise_identical_across_brick_sizes() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);
    let dense_wire = client
        .reconstruct(session, field.grid(), 0)
        .expect("dense wire path")
        .field;
    assert_bitwise(&dense_wire, direct);
    for brick_dims in [[4, 4, 2], [5, 3, 2], [1, 1, 1], [32, 32, 32]] {
        let (streamed, summary) = client
            .reconstruct_bricked_dense(session, field.grid(), brick_dims, 0)
            .unwrap_or_else(|e| panic!("bricks {brick_dims:?}: {e}"));
        assert_eq!(summary.received, summary.total_bricks, "{brick_dims:?}");
        assert_eq!(summary.resumed, 0, "fresh stream must skip nothing");
        assert_bitwise(&streamed, &dense_wire);
        assert_bitwise(&streamed, direct);
    }
    let stats = client.stats().expect("stats");
    assert!(
        stats.contains("\"stream\""),
        "stats must report the stream section: {stats}"
    );
    client.close_session(session).expect("close");
    server.shutdown();
}

/// A healing client whose socket tears mid-stream must reconnect and
/// resume at the first undelivered brick — nothing below the watermark
/// is recomputed or redelivered, and the assembled volume is still
/// bitwise-identical to the direct path.
#[test]
fn bricked_stream_resumes_at_first_uncommitted_brick_after_tear() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let mut client =
        Client::connect_healing(server.addr(), RetryPolicy::default()).expect("connect");
    let session = open_and_upload(&mut client);
    let sock = client.stream().try_clone().expect("clone socket");
    let mut bricks: Vec<fillvoid::serve::ServedBrick> = Vec::new();
    let summary = client
        .reconstruct_bricked(session, field.grid(), [4, 4, 2], 0, |b| {
            bricks.push(b);
            if bricks.len() == 2 {
                // Tear the original connection after two delivered
                // bricks; the clone stays dead after the client reheals.
                let _ = sock.shutdown(std::net::Shutdown::Both);
            }
        })
        .expect("stream must heal through the tear");
    assert!(summary.reconnects >= 1, "tear must force a reconnect");
    assert!(
        summary.resumed >= 2,
        "resume must skip the delivered prefix (skipped {})",
        summary.resumed
    );
    assert_eq!(summary.received, summary.total_bricks);
    for (i, b) in bricks.iter().enumerate() {
        assert_eq!(b.index, i as u64, "every brick exactly once, in order");
    }
    let dims = field.grid().dims();
    let mut dense = vec![0.0f32; field.grid().num_points()];
    for b in &bricks {
        scatter(&mut dense, dims, b);
    }
    let assembled = ScalarField::from_vec(*field.grid(), dense).expect("assemble");
    assert_bitwise(&assembled, direct);
    server.shutdown();
}

/// Targets over the dense-response cap are turned away from `Reconstruct`
/// with a typed pointer at the streaming op — and the same volume then
/// streams to bitwise-exact completion.
#[test]
fn over_cap_targets_stream_instead_of_densifying() {
    let (field, _, _, direct) = fixture();
    // Cap the dense path below the fixture's 864 points.
    let mut server = start_server_with(|c| c.max_dense_points = 100);
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);
    match client.reconstruct(session, field.grid(), 0) {
        Err(ClientError::Server { code, message, .. }) => {
            assert_eq!(code, ErrorCode::BadRequest as u16);
            assert!(
                message.contains("ReconstructBricked"),
                "rejection must point at the streaming op: {message}"
            );
        }
        other => panic!("dense over-cap request must fail typed, got {other:?}"),
    }
    let (streamed, summary) = client
        .reconstruct_bricked_dense(session, field.grid(), [4, 4, 2], 0)
        .expect("stream the over-cap volume");
    assert_eq!(summary.received, summary.total_bricks);
    assert_bitwise(&streamed, direct);
    server.shutdown();
}

/// Malformed streaming requests die with typed errors before any compute:
/// zero brick dims, a start_brick past the layout, and a session with no
/// uploaded cloud.
#[test]
fn bricked_stream_rejects_bad_requests_with_typed_errors() {
    let (field, _, _, _) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);

    match client.reconstruct_bricked(session, field.grid(), [0, 4, 2], 0, |_| {}) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::BadRequest as u16, "zero brick dim")
        }
        other => panic!("zero brick dim must fail typed, got {other:?}"),
    }

    // start_brick past the layout (raw frame; the client API never
    // produces one).
    let req = proto::ReconstructBrickedReq {
        session,
        target: proto::GridWire {
            dims: [12, 12, 6],
            origin: [0.0; 3],
            spacing: [1.0; 3],
        },
        brick_dims: [4, 4, 2],
        deadline_ms: 0,
        request_id: 0,
        start_brick: 9_999,
    };
    client
        .send_raw(&proto::encode_frame(
            Op::ReconstructBricked as u8,
            Status::Ok as u8,
            &req.encode(),
        ))
        .expect("send raw");
    let frame = client.read_raw().expect("typed reply");
    assert_eq!(frame.status, Status::Error as u8);
    let body = proto::ErrorBody::decode(&frame.payload).expect("error body");
    assert_eq!(body.code, ErrorCode::BadRequest as u16);

    // No cloud uploaded yet on a fresh session.
    let bare = client
        .open_session("acme", DATASET, VERSION)
        .expect("open bare session");
    match client.reconstruct_bricked(bare, field.grid(), [4, 4, 2], 0, |_| {}) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::BadRequest as u16, "cloudless session")
        }
        other => panic!("cloudless stream must fail typed, got {other:?}"),
    }
    server.shutdown();
}
