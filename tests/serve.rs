//! fv-serve acceptance: protocol robustness, wire-vs-direct bitwise
//! identity, stats round-trip, and graceful start/stop hygiene — all over
//! real loopback sockets.

use fillvoid::prelude::*;
use fillvoid::serve::proto::{self, ErrorCode, Op, Status};
use fillvoid::serve::{BatchConfig, Client, ClientError, ModelRegistry, ServeConfig, Server};
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const DATASET: &str = "hurricane";
const VERSION: u32 = 1;

fn fixture() -> &'static (ScalarField, PointCloud, FcnnPipeline, ScalarField) {
    static CELL: OnceLock<(ScalarField, PointCloud, FcnnPipeline, ScalarField)> = OnceLock::new();
    CELL.get_or_init(|| {
        let sim = Hurricane::builder().resolution([12, 12, 6]).build();
        let field = sim.timestep(0);
        let mut cfg = PipelineConfig::small_for_tests();
        cfg.trainer.epochs = 5;
        let pipeline = FcnnPipeline::train(&field, &cfg, 3).expect("train");
        let sampler = ImportanceSampler::new(ImportanceConfig::default());
        let cloud = sampler.sample(&field, 0.05, 21);
        let direct = pipeline.reconstruct(&cloud, field.grid()).expect("direct");
        (field, cloud, pipeline, direct)
    })
}

fn start_server_cfg(allow_remote_shutdown: bool) -> Server {
    let (_, _, pipeline, _) = fixture();
    let registry = Arc::new(ModelRegistry::new(256 << 20));
    registry
        .insert(DATASET, VERSION, pipeline.clone())
        .expect("seed registry");
    let cfg = ServeConfig {
        allow_remote_shutdown,
        batch: BatchConfig {
            flush_after: Duration::from_micros(200),
            ..Default::default()
        },
        ..Default::default()
    };
    Server::start_with_registry(cfg, registry).expect("start server")
}

fn start_server() -> Server {
    start_server_cfg(false)
}

fn open_and_upload(client: &mut Client) -> u64 {
    let (_, cloud, _, _) = fixture();
    let session = client
        .open_session("acme", DATASET, VERSION)
        .expect("open session");
    client.put_cloud(session, cloud).expect("put cloud");
    session
}

fn assert_bitwise(served: &ScalarField, direct: &ScalarField) {
    assert_eq!(served.values().len(), direct.values().len());
    for (i, (s, d)) in served.values().iter().zip(direct.values()).enumerate() {
        assert_eq!(
            s.to_bits(),
            d.to_bits(),
            "voxel {i} served {s} != direct {d}"
        );
    }
}

#[test]
fn served_reconstruction_is_bitwise_identical_to_direct() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);
    let served = client
        .reconstruct(session, field.grid(), 0)
        .expect("reconstruct");
    assert!(!served.degraded, "healthy path must not degrade");
    assert_bitwise(&served.field, direct);
    client.close_session(session).expect("close");
    server.shutdown();
}

#[test]
fn concurrent_clients_all_get_bitwise_identical_answers() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let session = open_and_upload(&mut client);
                for _ in 0..3 {
                    let served = client
                        .reconstruct(session, field.grid(), 0)
                        .unwrap_or_else(|e| panic!("client {i}: {e}"));
                    assert!(!served.degraded);
                    assert_bitwise(&served.field, direct);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown();
}

/// Each malformed stream must produce a typed error response (or a clean
/// connection drop) without disturbing a healthy session on another
/// connection.
#[test]
fn malformed_frames_hurt_only_their_own_connection() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let addr = server.addr();

    // The healthy bystander: opened first, verified after every attack.
    let mut healthy = Client::connect(addr).expect("connect healthy");
    let session = open_and_upload(&mut healthy);

    // (a) bad magic
    {
        let mut c = Client::connect(addr).expect("connect");
        c.send_raw(b"BOGUS-MAGIC-FRAME-0000").unwrap();
        // A BadFrame reply is best-effort; the server may just drop the
        // stream, which is also legal.
        if let Ok(frame) = c.read_raw() {
            assert_eq!(frame.status, Status::Error as u8);
            let body = proto::ErrorBody::decode(&frame.payload).expect("error body");
            assert_eq!(body.code, ErrorCode::BadFrame as u16);
        }
    }

    // (b) bad version
    {
        let mut c = Client::connect(addr).expect("connect");
        let mut frame = proto::encode_frame(Op::Ping as u8, Status::Ok as u8, b"hi");
        frame[4] = 0xFF; // version LE low byte
        frame[5] = 0xFF;
        c.send_raw(&frame).unwrap();
        if let Ok(frame) = c.read_raw() {
            assert_eq!(frame.status, Status::Error as u8);
        }
    }

    // (c) oversized declared payload length
    {
        let mut c = Client::connect(addr).expect("connect");
        let mut frame = proto::encode_frame(Op::Ping as u8, Status::Ok as u8, b"");
        let huge = (proto::MAX_PAYLOAD + 1).to_le_bytes();
        frame[8..12].copy_from_slice(&huge);
        c.send_raw(&frame[..12]).unwrap();
        if let Ok(frame) = c.read_raw() {
            assert_eq!(frame.status, Status::Error as u8);
        }
    }

    // (d) CRC-corrupted payload
    {
        let mut c = Client::connect(addr).expect("connect");
        let mut frame = proto::encode_frame(Op::Ping as u8, Status::Ok as u8, b"payload");
        frame[13] ^= 0x5A; // flip a payload bit; trailing CRC now mismatches
        c.send_raw(&frame).unwrap();
        if let Ok(frame) = c.read_raw() {
            assert_eq!(frame.status, Status::Error as u8);
        }
    }

    // (e) truncated frame + mid-request disconnect
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut s = stream.try_clone().expect("clone");
        let frame = proto::encode_frame(Op::Ping as u8, Status::Ok as u8, b"never finished");
        s.write_all(&frame[..frame.len() / 2]).unwrap();
        s.flush().unwrap();
        drop(s);
        drop(stream); // connection torn mid-frame
    }

    // (f) unknown opcode — typed error, connection stays usable
    {
        let mut c = Client::connect(addr).expect("connect");
        c.send_raw(&proto::encode_frame(0x7E, Status::Ok as u8, b""))
            .unwrap();
        let frame = c.read_raw().expect("unknown-op reply");
        assert_eq!(frame.status, Status::Error as u8);
        let body = proto::ErrorBody::decode(&frame.payload).expect("error body");
        assert_eq!(body.code, ErrorCode::UnknownOp as u16);
        // Same connection still serves well-formed requests.
        c.ping().expect("ping after unknown op");
    }

    // After every attack the bystander still reconstructs, bit for bit.
    let served = healthy
        .reconstruct(session, field.grid(), 0)
        .expect("healthy session survived");
    assert!(!served.degraded);
    assert_bitwise(&served.field, direct);
    server.shutdown();
}

#[test]
fn typed_errors_for_unknown_model_session_and_missing_cloud() {
    let (field, _, _, _) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");

    match client.open_session("acme", "no-such-dataset", 9) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::UnknownModel as u16)
        }
        other => panic!("expected UnknownModel, got {other:?}"),
    }

    match client.reconstruct(0xDEAD_BEEF, field.grid(), 0) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::UnknownSession as u16)
        }
        other => panic!("expected UnknownSession, got {other:?}"),
    }

    let session = client
        .open_session("acme", DATASET, VERSION)
        .expect("open session");
    match client.reconstruct(session, field.grid(), 0) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::BadRequest as u16, "no cloud uploaded yet")
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn stats_op_reports_tenants_and_telemetry() {
    let (field, _, _, _) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);
    client
        .reconstruct(session, field.grid(), 0)
        .expect("reconstruct");

    let stats = client.stats().expect("stats");
    assert!(stats.starts_with('{') && stats.ends_with('}'), "{stats}");
    for key in ["\"sessions\"", "\"registry\"", "\"tenants\"", "\"telemetry\"", "\"acme\""] {
        assert!(stats.contains(key), "stats missing {key}: {stats}");
    }
    // One admitted request, nothing in flight after the response.
    assert!(stats.contains("\"requests\": 1"), "{stats}");
    assert!(stats.contains("\"inflight\": 0"), "{stats}");
    server.shutdown();
}

#[test]
fn session_slots_are_reclaimed_when_connections_drop() {
    let server = start_server();
    {
        let mut a = Client::connect(server.addr()).expect("connect");
        let mut b = Client::connect(server.addr()).expect("connect");
        open_and_upload(&mut a);
        open_and_upload(&mut b);
        assert_eq!(server.session_count(), 2);
        // Both dropped without CloseSession — the connection teardown
        // must reclaim them.
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.session_count() != 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.session_count(), 0, "dropped connections leaked sessions");
}

/// 100 start/stop cycles: no thread leak, no port leak, shutdown is
/// idempotent. Thread counts are process-wide, so the bound is a slack
/// band rather than exact equality (other tests run concurrently).
#[test]
fn repeated_start_stop_leaks_nothing() {
    fn threads() -> usize {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("Threads:"))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|n| n.parse().ok())
            })
            .unwrap_or(0)
    }

    let mut last_addr = None;
    let mut baseline = 0usize;
    for cycle in 0..100 {
        let mut server = Server::start(ServeConfig::default()).expect("start");
        let mut client = Client::connect(server.addr()).expect("connect");
        client.ping().expect("ping");
        last_addr = Some(server.addr());
        server.shutdown();
        server.shutdown(); // idempotent
        if cycle == 4 {
            baseline = threads();
        }
    }
    let final_threads = threads();
    assert!(
        final_threads <= baseline + 12,
        "thread leak across cycles: baseline {baseline}, final {final_threads}"
    );
    // The last listener really released its port: we can rebind it.
    let addr = last_addr.unwrap();
    std::net::TcpListener::bind(addr).expect("port still held after shutdown");
}

#[test]
fn shutdown_op_stops_the_server() {
    let (field, _, _, _) = fixture();
    let mut server = start_server_cfg(true);
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);
    // The probe connection exists before the Shutdown op, so it is
    // guaranteed to talk to THIS server — a freed ephemeral port can be
    // rebound by a concurrently running test's server.
    let mut probe = Client::connect(server.addr()).expect("connect probe");
    client.shutdown_server().expect("shutdown op");

    // New work is refused with a typed ShuttingDown status (or the
    // connection is already torn down).
    match probe.reconstruct(session, field.grid(), 0) {
        Err(ClientError::Server { status, .. }) => {
            assert_eq!(status, Status::ShuttingDown)
        }
        Err(_) => {} // connection dropped — also fine
        Ok(_) => panic!("server accepted work after Shutdown op"),
    }
    server.shutdown();
}

/// By default (multi-tenant posture) the remote Shutdown op is refused
/// with a typed Forbidden error and the server keeps serving everyone.
#[test]
fn shutdown_op_is_forbidden_by_default() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);

    match client.shutdown_server() {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::Forbidden as u16)
        }
        other => panic!("expected Forbidden, got {other:?}"),
    }
    // Same connection, and a fresh one, still serve full-fidelity work.
    let served = client
        .reconstruct(session, field.grid(), 0)
        .expect("serving continues after refused shutdown");
    assert_bitwise(&served.field, direct);
    let mut other = Client::connect(server.addr()).expect("new connections still accepted");
    other.ping().expect("ping");
    server.shutdown();
}

/// Sessions are bound to the connection that opened them: another
/// connection holding the id can neither use nor close the session.
#[test]
fn sessions_are_isolated_per_connection() {
    let (field, cloud, _, direct) = fixture();
    let mut server = start_server();
    let mut owner = Client::connect(server.addr()).expect("connect owner");
    let session = open_and_upload(&mut owner);

    let mut intruder = Client::connect(server.addr()).expect("connect intruder");
    let expect_unknown = |r: Result<(), ClientError>, what: &str| match r {
        Err(ClientError::Server { code, .. }) => assert_eq!(
            code,
            ErrorCode::UnknownSession as u16,
            "{what} must read as unknown session"
        ),
        other => panic!("{what}: expected UnknownSession, got {other:?}"),
    };
    expect_unknown(
        intruder
            .reconstruct(session, field.grid(), 0)
            .map(|_| ()),
        "foreign reconstruct",
    );
    expect_unknown(intruder.put_cloud(session, cloud), "foreign put_cloud");
    expect_unknown(intruder.close_session(session), "foreign close");

    // The owner's session is untouched: still registered, still serving
    // the exact direct-path bits with its original cloud.
    assert_eq!(server.session_count(), 1);
    let served = owner
        .reconstruct(session, field.grid(), 0)
        .expect("owner reconstruct");
    assert_bitwise(&served.field, direct);
    server.shutdown();
}

/// A request naming a pathologically large target grid (including one
/// whose point count wraps u64) is refused with a typed BadRequest
/// before any point-count-sized allocation, and the connection survives.
#[test]
fn oversized_target_grids_are_rejected_up_front() {
    let (field, _, _, direct) = fixture();
    let mut server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let session = open_and_upload(&mut client);

    // Far over the cap, but constructible client-side (Grid3 itself
    // allocates nothing).
    let huge = fillvoid::field::Grid3::new([100_000, 100_000, 100_000]).expect("huge grid");
    match client.reconstruct(session, &huge, 0) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::BadRequest as u16)
        }
        other => panic!("expected BadRequest for huge target, got {other:?}"),
    }

    // Dims whose product wraps u64 entirely — hand-encoded, since no
    // honest Grid3 produces them.
    let wrap = proto::ReconstructReq {
        session,
        target: proto::GridWire {
            dims: [u64::MAX, u64::MAX, u64::MAX],
            origin: [0.0; 3],
            spacing: [1.0; 3],
        },
        deadline_ms: 0,
    };
    client
        .send_raw(&proto::encode_frame(
            Op::Reconstruct as u8,
            Status::Ok as u8,
            &wrap.encode(),
        ))
        .expect("send wrapping dims");
    let frame = client.read_raw().expect("typed reply");
    assert_eq!(frame.status, Status::Error as u8);
    let body = proto::ErrorBody::decode(&frame.payload).expect("error body");
    assert_eq!(body.code, ErrorCode::BadRequest as u16);

    // A PutCloud naming a huge source grid is bounded the same way.
    let put = proto::PutCloudReq {
        session,
        grid: proto::GridWire {
            dims: [1 << 40, 1 << 40, 1],
            origin: [0.0; 3],
            spacing: [1.0; 3],
        },
        indices: vec![0],
        values: vec![1.0],
    };
    client
        .send_raw(&proto::encode_frame(
            Op::PutCloud as u8,
            Status::Ok as u8,
            &put.encode(),
        ))
        .expect("send huge put_cloud");
    let frame = client.read_raw().expect("typed reply");
    assert_eq!(frame.status, Status::Error as u8);

    // Same connection still serves a legitimate request, bit for bit.
    let served = client
        .reconstruct(session, field.grid(), 0)
        .expect("legitimate reconstruct after rejections");
    assert_bitwise(&served.field, direct);
    server.shutdown();
}
