//! Kernel-parity property suite for the packed-GEMM layer.
//!
//! The determinism contract (DESIGN.md §15) says every matrix product
//! computes, per output element, one ascending-order mul-then-add chain —
//! independent of microkernel, packing geometry, fallback path, and thread
//! count. This suite pins that contract *bitwise* against a naive
//! reference, over adversarial shapes (single row/column, empty reduction,
//! tall/skinny, dimensions that are not a multiple of any tile size) for
//! every product variant (`A*B`, `A*B^T`, `A^T*B`), for both scalar types,
//! under both the portable and the native kernel, at pool widths 1 and 4.
//! `scripts/ci.sh` additionally re-runs the whole suite under
//! `FV_GEMM_KERNEL=portable` and `FV_THREADS=4`, covering the env-driven
//! dispatch path on top of the in-process `force_kernel` hook used here.

use fillvoid::linalg::{force_kernel, ForcedKernel, GemmScratch, Matrix};
use proptest::prelude::*;
use std::sync::Mutex;

/// `force_kernel` is process-global; serialize the tests that flip it so a
/// concurrently running test never observes a half-configured comparison.
/// (Values would still match — the kernels are bitwise-identical — but the
/// *labels* in failure messages would lie.)
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Adversarial shapes `(m, n, k)` for `C[m x n] = A[m x k] * B[k x n]`.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 17, 9),    // single output row
    (33, 1, 7),    // single output column
    (5, 5, 0),     // empty reduction: exact zeros everywhere
    (0, 8, 4),     // no rows
    (8, 0, 4),     // no columns
    (200, 3, 4),   // tall/skinny, below the pack gate
    (3, 200, 5),   // short/wide, below the pack gate
    (13, 21, 17),  // packed, no dim a multiple of MR or NR
    (97, 33, 31),  // packed, ragged tiles in both directions
    (64, 64, 23),  // the paper's forward shape class
    (6, 16, 8),    // exactly one f32 tile
    (7, 17, 8),    // one tile plus a ragged fringe
    (128, 96, 96), // clears the min-work threshold: parallel chunking
];

macro_rules! parity_suite {
    ($modname:ident, $t:ty) => {
        mod $modname {
            use super::*;

            type S = $t;

            /// Deterministic pseudo-random values exercising the full
            /// mantissa (exact values don't matter; bit-identity does).
            fn fill(len: usize, seed: u32) -> Vec<S> {
                let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
                (0..len)
                    .map(|_| {
                        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                        (((state >> 8) as f64 / (1u64 << 24) as f64) * 2.0 - 1.0) as S
                    })
                    .collect()
            }

            /// Canonical-order naive product: one accumulator per element,
            /// `p` ascending, unfused mul then add.
            fn reference(m: usize, n: usize, k: usize, a: &[S], b: &[S]) -> Vec<S> {
                let mut c = vec![0.0 as S; m * n];
                for i in 0..m {
                    for j in 0..n {
                        let mut s = 0.0 as S;
                        for p in 0..k {
                            s += a[i * k + p] * b[p * n + j];
                        }
                        c[i * n + j] = s;
                    }
                }
                c
            }

            /// Store logical `rows x cols` data transposed (`cols x rows`).
            fn transpose_store(rows: usize, cols: usize, v: &[S]) -> Vec<S> {
                let mut t = vec![0.0 as S; v.len()];
                for r in 0..rows {
                    for c in 0..cols {
                        t[c * rows + r] = v[r * cols + c];
                    }
                }
                t
            }

            fn bits(v: &[S]) -> Vec<u64> {
                v.iter().map(|x| x.to_bits() as u64).collect()
            }

            /// Run one product variant for the logical `A[m x k] * B[k x n]`.
            fn run_variant(
                variant: &str,
                m: usize,
                n: usize,
                k: usize,
                a: &[S],
                b: &[S],
            ) -> Vec<S> {
                let mut out = Matrix::<S>::zeros(0, 0);
                let mut scratch = GemmScratch::default();
                match variant {
                    "matmul" => {
                        let lhs = Matrix::from_vec(m, k, a.to_vec()).unwrap();
                        let rhs = Matrix::from_vec(k, n, b.to_vec()).unwrap();
                        lhs.matmul_into_with(&rhs, &mut out, &mut scratch).unwrap();
                    }
                    "matmul_transpose_b" => {
                        let lhs = Matrix::from_vec(m, k, a.to_vec()).unwrap();
                        let rhs =
                            Matrix::from_vec(n, k, transpose_store(k, n, b)).unwrap();
                        lhs.matmul_transpose_b_into_with(&rhs, &mut out, &mut scratch)
                            .unwrap();
                    }
                    "transpose_a_matmul" => {
                        let lhs =
                            Matrix::from_vec(k, m, transpose_store(m, k, a)).unwrap();
                        let rhs = Matrix::from_vec(k, n, b.to_vec()).unwrap();
                        lhs.transpose_a_matmul_into(&rhs, &mut out, &mut scratch)
                            .unwrap();
                    }
                    other => panic!("unknown variant {other}"),
                }
                assert_eq!(out.shape(), (m, n), "{variant} output shape");
                out.into_vec()
            }

            #[test]
            fn all_variants_match_reference_bitwise_everywhere() {
                let _g = lock();
                for &(m, n, k) in SHAPES {
                    let a = fill(m * k, (m * 31 + n * 7 + k) as u32);
                    let b = fill(k * n, (m + n * 13 + k * 3) as u32 ^ 0x5eed);
                    let want = bits(&reference(m, n, k, &a, &b));
                    for variant in ["matmul", "matmul_transpose_b", "transpose_a_matmul"] {
                        for forced in [ForcedKernel::Portable, ForcedKernel::Native] {
                            force_kernel(Some(forced));
                            for width in [1usize, 4] {
                                let pool = fv_runtime::Pool::new(width);
                                let got = pool.install(|| {
                                    bits(&run_variant(variant, m, n, k, &a, &b))
                                });
                                assert_eq!(
                                    got, want,
                                    "{variant} {m}x{n}x{k} {forced:?} width {width} \
                                     diverged from canonical order"
                                );
                            }
                        }
                    }
                }
                force_kernel(None);
            }

            #[test]
            fn fused_bias_act_epilogue_matches_two_pass_reference() {
                let _g = lock();
                let act = |v: S| if v > 0.0 { v } else { (0.125 as S) * v };
                for &(m, n, k) in &[(37usize, 6usize, 8usize), (64, 48, 23), (1, 5, 3)] {
                    let a = fill(m * k, 77);
                    // Weights stored [n, k] (one row per output unit).
                    let w = fill(n * k, 78);
                    let bias = fill(n, 79);
                    // Reference: canonical product, then + bias, then act.
                    let b_logical = transpose_store(n, k, &w);
                    let mut want_pre = reference(m, n, k, &a, &b_logical);
                    let mut want_act = want_pre.clone();
                    for i in 0..m {
                        for j in 0..n {
                            let z = want_pre[i * n + j] + bias[j];
                            want_pre[i * n + j] = z;
                            want_act[i * n + j] = act(z);
                        }
                    }
                    let lhs = Matrix::from_vec(m, k, a.clone()).unwrap();
                    let rhs = Matrix::from_vec(n, k, w.clone()).unwrap();
                    for forced in [ForcedKernel::Portable, ForcedKernel::Native] {
                        force_kernel(Some(forced));
                        let mut scratch = GemmScratch::default();
                        // Training form: pre and activation split out.
                        let mut pre = Matrix::zeros(0, 0);
                        let mut out = Matrix::zeros(0, 0);
                        lhs.matmul_bias_act_into_with(
                            &rhs,
                            &bias,
                            act,
                            Some(&mut pre),
                            &mut out,
                            &mut scratch,
                        )
                        .unwrap();
                        assert_eq!(bits(pre.as_slice()), bits(&want_pre), "{forced:?} pre");
                        assert_eq!(bits(out.as_slice()), bits(&want_act), "{forced:?} act");
                        // Inference form: activation only, written directly.
                        let mut direct = Matrix::zeros(0, 0);
                        lhs.matmul_bias_act_into_with(
                            &rhs,
                            &bias,
                            act,
                            None,
                            &mut direct,
                            &mut scratch,
                        )
                        .unwrap();
                        assert_eq!(
                            bits(direct.as_slice()),
                            bits(&want_act),
                            "{forced:?} fused inference"
                        );
                    }
                }
                force_kernel(None);
            }
        }
    };
}

parity_suite!(f32_parity, f32);
parity_suite!(f64_parity, f64);

#[test]
fn matvec_into_reuses_buffer_and_matches_matvec() {
    let m = Matrix::from_fn(9, 7, |r, c| ((r * 5 + c * 3) % 11) as f32 * 0.37 - 1.0);
    let x: Vec<f32> = (0..7).map(|i| i as f32 * 0.21 - 0.6).collect();
    let mut out = Vec::with_capacity(64);
    m.matvec_into(&x, &mut out).unwrap();
    assert_eq!(out, m.matvec(&x).unwrap());
    let cap = out.capacity();
    let first: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
    // Reuse must neither reallocate nor change values.
    m.matvec_into(&x, &mut out).unwrap();
    assert_eq!(out.capacity(), cap);
    let second: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
    assert_eq!(first, second);
    assert!(m.matvec_into(&[1.0], &mut out).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random shapes: the portable and native kernels agree bitwise on all
    /// three product variants (this is the cross-kernel half of the
    /// contract; the fixed SHAPES table pins both against the reference).
    #[test]
    fn random_shapes_agree_across_kernels(
        m in 0usize..34,
        n in 0usize..34,
        k in 0usize..34,
        seed in any::<u32>(),
    ) {
        let _g = lock();
        let a_logical: Vec<f32> = {
            let mut s = seed.wrapping_add(1);
            (0..m * k).map(|_| { s = s.wrapping_mul(1664525).wrapping_add(1013904223); ((s >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0 }).collect()
        };
        let b_stored: Vec<f32> = {
            let mut s = seed.wrapping_add(2);
            (0..n * k).map(|_| { s = s.wrapping_mul(1664525).wrapping_add(1013904223); ((s >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0 }).collect()
        };
        let lhs = Matrix::from_vec(m, k, a_logical).unwrap();
        let rhs_nk = Matrix::from_vec(n, k, b_stored).unwrap(); // for A * B^T
        let rhs_kn = rhs_nk.transpose(); // k x n, for A * B and (A^T)^T * B
        let run_all = |forced: ForcedKernel| -> Vec<u32> {
            force_kernel(Some(forced));
            let mut scratch = GemmScratch::default();
            let mut bits = Vec::new();
            let mut out = Matrix::zeros(0, 0);
            lhs.matmul_into_with(&rhs_kn, &mut out, &mut scratch).unwrap();
            bits.extend(out.as_slice().iter().map(|v| v.to_bits()));
            lhs.matmul_transpose_b_into_with(&rhs_nk, &mut out, &mut scratch).unwrap();
            bits.extend(out.as_slice().iter().map(|v| v.to_bits()));
            rhs_kn.transpose_a_matmul_into(&lhs.transpose(), &mut out, &mut scratch).unwrap();
            bits.extend(out.as_slice().iter().map(|v| v.to_bits()));
            bits
        };
        let portable = run_all(ForcedKernel::Portable);
        let native = run_all(ForcedKernel::Native);
        force_kernel(None);
        prop_assert_eq!(portable, native);
    }
}
