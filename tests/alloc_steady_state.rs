//! Counting-allocator regression tests for the workspace execution layer.
//!
//! The whole point of `TrainWorkspace` / `InferWorkspace` / the `_into`
//! kernels is that the hot loops stop touching the heap once warm. These
//! tests pin that down with a counting global allocator: a steady-state
//! training step performs **zero** allocations, a `Trainer::fit` epoch
//! stays within a small fixed bound (history bookkeeping only), and the
//! reconstruction batch loop allocates per *call*, not per batch.
//!
//! This suite runs harness-free (`harness = false` in Cargo.toml): the
//! allocation counter is process-global, and even an idle libtest harness
//! allocates concurrently with the measured windows — its main thread
//! builds mpmc waker contexts while waiting on the test-completion
//! channel, which intermittently leaked 1–2 counts into the strict
//! zero-alloc assertion. A plain `main` keeps this the only live thread.

use fillvoid::core::pipeline::{FcnnPipeline, PipelineConfig, ReconstructWorkspace};
use fillvoid::field::{Grid3, ScalarField};
use fillvoid::linalg::Matrix;
use fillvoid::nn::data::Dataset;
use fillvoid::nn::loss::Loss;
use fillvoid::nn::optim::{Adam, Optimizer};
use fillvoid::nn::train::{Trainer, TrainerConfig};
use fillvoid::nn::{GuardConfig, Mlp, TrainWorkspace};
use fillvoid::runtime::alloc::{allocation_count, CountingAllocator};
use fillvoid::sampling::{FieldSampler, RandomSampler};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// (a) A warmed-up manual training step — gather, forward, loss, backward,
/// Adam — allocates nothing at all.
fn steady_state_training_step_is_allocation_free() {
    let rows = 64usize;
    let mut mlp = Mlp::regression(23, &[32, 16], 4, 3);
    let x = Matrix::from_fn(rows, 23, |r, c| ((r * 7 + c * 5) % 23) as f32 * 0.08 - 0.9);
    let y = Matrix::from_fn(rows, 4, |r, c| ((r + c * 3) % 11) as f32 * 0.15 - 0.7);
    let data = Dataset::new(x, y).unwrap();
    let idx: Vec<usize> = (0..rows).collect();
    let mut ws = TrainWorkspace::new(&mlp, rows, 4);
    let mut opt = Adam::new(1e-3);

    let step = |mlp: &mut Mlp, ws: &mut TrainWorkspace, opt: &mut Adam| {
        ws.load_batch(&data, &idx);
        mlp.forward_workspace(ws).unwrap();
        let _ = Loss::Mse.value(ws.prediction(), ws.target());
        ws.seed_loss_gradient(Loss::Mse);
        mlp.backward_workspace(ws);
        opt.step(mlp.layers_mut(), ws.grads());
    };
    // Warm-up: sizes the workspace, Adam state, granularity registry and
    // kernel scratch buffers.
    for _ in 0..3 {
        step(&mut mlp, &mut ws, &mut opt);
    }
    let before = allocation_count();
    for _ in 0..20 {
        step(&mut mlp, &mut ws, &mut opt);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "steady-state training steps allocated {} times over 20 steps",
        after - before
    );
}

/// (b) A full `Trainer::fit` epoch allocates only O(1) bookkeeping (loss
/// history pushes), independent of batch count: comparing a 6-epoch fit
/// against a 2-epoch fit isolates the per-epoch cost from setup.
fn fit_epochs_have_bounded_allocations() {
    let n = 512usize;
    let x = Matrix::from_fn(n, 23, |r, c| ((r * 13 + c) % 31) as f32 * 0.06 - 0.9);
    let y = Matrix::from_fn(n, 4, |r, c| ((r * 3 + c * 7) % 17) as f32 * 0.1 - 0.8);
    let data = Dataset::new(x, y).unwrap();
    let cfg = |epochs: usize| TrainerConfig {
        epochs,
        batch_size: 8, // 64 batches per epoch
        learning_rate: 1e-3,
        seed: 5,
        loss: Loss::Mse,
        guard: GuardConfig::off(),
        ..TrainerConfig::default()
    };
    let run = |epochs: usize| -> u64 {
        let mut mlp = Mlp::regression(23, &[32, 16], 4, 8);
        let trainer = Trainer::new(cfg(epochs));
        let before = allocation_count();
        trainer.fit(&mut mlp, &data).unwrap();
        allocation_count() - before
    };
    // First run also warms process-global state (granularity registry).
    let _ = run(1);
    let short = run(2);
    let long = run(6);
    let per_epoch = (long.saturating_sub(short)) / 4;
    assert!(
        per_epoch <= 16,
        "a training epoch (64 batches) allocated {per_epoch} times — \
         the inner loop is leaking allocations (2 epochs: {short}, 6 epochs: {long})"
    );
}

/// (c) The reconstruction batch loop streams through one workspace: a
/// warmed `reconstruct_with` call allocates a small per-call fixed amount
/// (k-d tree build, query list, output field), NOT proportionally to its
/// ~34 prediction batches.
fn reconstruct_batches_do_not_allocate() {
    let g = Grid3::new([12, 12, 8]).unwrap();
    let field = ScalarField::from_world_fn(g, |p| {
        ((p[0] * 0.5).sin() + 0.2 * p[1] + (p[2] * 0.4).cos()) as f32
    });
    let mut config = PipelineConfig::small_for_tests();
    config.trainer.epochs = 2;
    config.prediction_batch = 32; // 12*12*8 grid - 5% samples => ~34 batches
    let pipeline = FcnnPipeline::train(&field, &config, 11).unwrap();
    let cloud = RandomSampler.sample(&field, 0.05, 4);
    let n_batches = (field.len() - cloud.len()).div_ceil(config.prediction_batch) as u64;

    let mut ws = ReconstructWorkspace::default();
    let warm = pipeline.reconstruct_with(&cloud, field.grid(), &mut ws).unwrap();
    let before = allocation_count();
    let again = pipeline.reconstruct_with(&cloud, field.grid(), &mut ws).unwrap();
    let allocs = allocation_count() - before;
    assert_eq!(warm, again, "reconstruction must be deterministic");
    assert!(
        allocs < n_batches,
        "a warmed reconstruct allocated {allocs} times across {n_batches} batches — \
         the batch loop is allocating per batch"
    );
}

fn main() {
    steady_state_training_step_is_allocation_free();
    fit_epochs_have_bounded_allocations();
    reconstruct_batches_do_not_allocate();
    println!("alloc_steady_state: ok (3 checks)");
}
