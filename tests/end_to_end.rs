//! End-to-end integration tests: simulate → sample → reconstruct → score,
//! crossing every crate in the workspace.

use fillvoid::core::experiment::{method_sweep, FcnnReconstructor};
use fillvoid::core::metrics::{psnr_db, rmse, snr_db};
use fillvoid::core::pipeline::{FcnnPipeline, PipelineConfig};
use fillvoid::prelude::*;

fn test_config() -> PipelineConfig {
    PipelineConfig {
        hidden: vec![48, 24, 12],
        trainer: fillvoid::nn::TrainerConfig {
            epochs: 25,
            batch_size: 128,
            learning_rate: 3e-3,
            seed: 0,
            loss: fillvoid::nn::loss::Loss::Mse,
            ..Default::default()
        },
        ..PipelineConfig::small_for_tests()
    }
}

#[test]
fn fcnn_beats_nearest_and_shepard_on_hurricane() {
    let sim = Hurricane::builder().resolution([20, 20, 8]).timesteps(8).build();
    let field = sim.timestep(4);
    let pipeline = FcnnPipeline::train(&field, &test_config(), 11).expect("train");
    let sampler = ImportanceSampler::new(ImportanceConfig::default());
    let cloud = sampler.sample(&field, 0.02, 5);

    let fcnn = pipeline.reconstruct(&cloud, field.grid()).expect("fcnn");
    let nearest = NearestReconstructor.reconstruct(&cloud, field.grid()).expect("nearest");
    let shepard = ShepardReconstructor::default()
        .reconstruct(&cloud, field.grid())
        .expect("shepard");

    let s_fcnn = snr_db(&field, &fcnn);
    let s_nearest = snr_db(&field, &nearest);
    let s_shepard = snr_db(&field, &shepard);
    assert!(
        s_fcnn > s_nearest,
        "fcnn {s_fcnn} dB should beat nearest {s_nearest} dB"
    );
    assert!(
        s_fcnn > s_shepard,
        "fcnn {s_fcnn} dB should beat shepard {s_shepard} dB"
    );
}

#[test]
fn every_method_improves_with_sampling_rate() {
    // Fig. 9's most basic shape: more samples, better reconstruction.
    let sim = Combustion::builder().resolution([16, 24, 6]).timesteps(6).build();
    let field = sim.timestep(3);
    let linear = LinearReconstructor::default();
    let natural = NaturalNeighborReconstructor;
    let nearest = NearestReconstructor;
    let methods: Vec<&dyn Reconstructor> = vec![&linear, &natural, &nearest];
    let rows = method_sweep(
        &field,
        &methods,
        &[0.005, 0.1],
        ImportanceConfig::default(),
        3,
    );
    for m in ["linear", "natural", "nearest"] {
        let lo = rows
            .iter()
            .find(|r| r.method == m && r.fraction == 0.005)
            .unwrap()
            .snr;
        let hi = rows
            .iter()
            .find(|r| r.method == m && r.fraction == 0.1)
            .unwrap()
            .snr;
        assert!(hi > lo, "{m}: SNR {lo} at 0.5% should rise by 10% ({hi})");
    }
}

#[test]
fn one_model_serves_all_sampling_rates() {
    // The paper's headline flexibility claim: a single pretrained network
    // reconstructs acceptably from 0.5% through 8% sampling.
    let sim = Hurricane::builder().resolution([20, 20, 8]).timesteps(8).build();
    let field = sim.timestep(4);
    let pipeline = FcnnPipeline::train(&field, &test_config(), 7).expect("train");
    let sampler = ImportanceSampler::new(ImportanceConfig::default());
    let mean_field = ScalarField::filled(*field.grid(), field.mean() as f32);
    let floor = snr_db(&field, &mean_field);
    for fraction in [0.005, 0.01, 0.03, 0.08] {
        let cloud = sampler.sample(&field, fraction, 9);
        let recon = pipeline.reconstruct(&cloud, field.grid()).expect("reconstruct");
        let snr = snr_db(&field, &recon);
        assert!(
            snr > floor + 3.0,
            "at {fraction}: {snr} dB vs constant-field floor {floor} dB"
        );
    }
}

#[test]
fn fcnn_adapter_and_direct_pipeline_agree() {
    let sim = IonizationFront::builder().resolution([16, 8, 8]).timesteps(5).build();
    let field = sim.timestep(2);
    let pipeline = FcnnPipeline::train(&field, &test_config(), 2).expect("train");
    let cloud = ImportanceSampler::default().sample(&field, 0.05, 1);
    let direct = pipeline.reconstruct(&cloud, field.grid()).expect("direct");
    let adapted = FcnnReconstructor::new(&pipeline)
        .reconstruct(&cloud, field.grid())
        .expect("adapter");
    assert_eq!(direct, adapted);
}

#[test]
fn metrics_are_consistent_across_methods() {
    let sim = Combustion::builder().resolution([16, 20, 6]).timesteps(4).build();
    let field = sim.timestep(2);
    let cloud = ImportanceSampler::default().sample(&field, 0.05, 4);
    let linear = LinearReconstructor::default()
        .reconstruct(&cloud, field.grid())
        .expect("linear");
    let nearest = NearestReconstructor.reconstruct(&cloud, field.grid()).expect("nearest");
    // linear beats nearest on every metric
    assert!(snr_db(&field, &linear) > snr_db(&field, &nearest));
    assert!(rmse(&field, &linear) < rmse(&field, &nearest));
    assert!(psnr_db(&field, &linear) > psnr_db(&field, &nearest));
}

#[test]
fn reconstruction_is_deterministic() {
    let sim = Hurricane::builder().resolution([16, 16, 6]).timesteps(4).build();
    let field = sim.timestep(2);
    let pipeline = FcnnPipeline::train(&field, &test_config(), 9).expect("train");
    let cloud = ImportanceSampler::default().sample(&field, 0.03, 2);
    let a = pipeline.reconstruct(&cloud, field.grid()).expect("a");
    let b = pipeline.reconstruct(&cloud, field.grid()).expect("b");
    assert_eq!(a, b);
    let c2 = ImportanceSampler::default().sample(&field, 0.03, 2);
    assert_eq!(cloud, c2);
}
