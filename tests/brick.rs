//! Out-of-core bricked reconstruction acceptance suite (DESIGN.md §13).
//!
//! The two load-bearing guarantees:
//!
//! * **bitwise parity** — assembling the brick store equals
//!   `FcnnPipeline::reconstruct` bit for bit, across brick geometries
//!   (including single-voxel bricks and bricks larger than the grid),
//!   same-grid and refined targets, and any thread width (the CI matrix
//!   reruns this file under `FV_THREADS=1` and `4`);
//! * **crash-only resume** — after a chaos-injected crash mid-volume, a
//!   rerun recomputes only the unfinished bricks and converges to the
//!   same bits.

use fillvoid::core::brick::{reconstruct_bricked, BrickReconConfig};
use fillvoid::core::pipeline::{FcnnPipeline, PipelineConfig};
use fillvoid::core::CoreError;
use fillvoid::field::brick::BrickStore;
use fillvoid::prelude::*;
use fillvoid::runtime::chaos::{self, FaultPlan};
use fillvoid::runtime::{CancelToken, ExecCtx, StopReason};
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// Chaos plans are process-global; crash tests serialize on this.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn trained() -> &'static (ScalarField, PointCloud, FcnnPipeline) {
    static CELL: OnceLock<(ScalarField, PointCloud, FcnnPipeline)> = OnceLock::new();
    CELL.get_or_init(|| {
        let g = Grid3::with_geometry([10, 10, 6], [-1.0, 0.5, 2.0], [0.7, 1.1, 0.9]).unwrap();
        let field = ScalarField::from_world_fn(g, |p| {
            ((p[0] * 0.4).sin() + 0.3 * p[1] + (p[2] * 0.6).cos()) as f32
        });
        let mut cfg = PipelineConfig::small_for_tests();
        cfg.trainer.epochs = 8;
        let pipeline = FcnnPipeline::train(&field, &cfg, 3).expect("pretrain");
        let sampler = ImportanceSampler::new(ImportanceConfig::default());
        let cloud = sampler.sample(&field, 0.06, 11);
        (field, cloud, pipeline)
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fv_brick_test_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn assert_bitwise_eq(a: &ScalarField, b: &ScalarField, what: &str) {
    assert_eq!(a.grid(), b.grid(), "{what}: grids differ");
    for (i, (x, y)) in a.values().iter().zip(b.values()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: voxel {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn bricked_is_bitwise_identical_to_whole_grid_across_brick_sizes() {
    let (field, cloud, pipeline) = trained();
    let whole = pipeline.reconstruct(cloud, field.grid()).expect("whole-grid");
    // Covers interior bricks, anisotropic bricks, the one-brick degenerate
    // case (brick > grid), and a tight halo that forces growth retries.
    for (brick_dims, halo) in [
        ([3, 4, 2], 1),
        ([4, 4, 4], 2),
        ([5, 3, 6], 1),
        ([64, 64, 64], 2),
    ] {
        let dir = temp_dir(&format!("parity_{}_{}_{}", brick_dims[0], brick_dims[1], brick_dims[2]));
        let cfg = BrickReconConfig {
            brick_dims,
            halo,
            ..Default::default()
        };
        let (store, report) = reconstruct_bricked(
            pipeline,
            cloud,
            field.grid(),
            &dir,
            &cfg,
            &ExecCtx::unbounded(),
        )
        .expect("bricked run");
        assert!(report.is_complete(), "{brick_dims:?}: {report:?}");
        assert_eq!(report.completed, report.total_bricks);
        let budget = (cfg.prefetch + 2) * store.layout().max_brick_len() * 4;
        assert!(
            report.peak_inflight_bytes <= budget,
            "{brick_dims:?}: inflight {} exceeds budget {budget}",
            report.peak_inflight_bytes
        );
        let assembled = store.assemble().expect("assemble");
        assert_bitwise_eq(&whole, &assembled, &format!("brick_dims {brick_dims:?}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn single_voxel_bricks_match_whole_grid() {
    let (field, cloud, pipeline) = trained();
    // 1-voxel bricks on a smaller grid (600 bricks would fsync-storm CI):
    // reconstruct onto a coarse refinement-source slice of the same cloud.
    let g = Grid3::with_geometry([5, 4, 3], field.grid().origin(), field.grid().spacing())
        .unwrap();
    let whole = pipeline.reconstruct(cloud, &g).expect("whole-grid");
    let dir = temp_dir("voxel_bricks");
    let cfg = BrickReconConfig {
        brick_dims: [1, 1, 1],
        halo: 1,
        ..Default::default()
    };
    let (store, report) =
        reconstruct_bricked(pipeline, cloud, &g, &dir, &cfg, &ExecCtx::unbounded())
            .expect("bricked run");
    assert_eq!(report.total_bricks, g.num_points());
    assert!(report.is_complete());
    let assembled = store.assemble().expect("assemble");
    assert_bitwise_eq(&whole, &assembled, "1-voxel bricks");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn refined_target_grid_matches_whole_grid() {
    let (field, cloud, pipeline) = trained();
    let fine = field.grid().refined(2).unwrap();
    let whole = pipeline.reconstruct(cloud, &fine).expect("whole-grid");
    let dir = temp_dir("refined");
    let cfg = BrickReconConfig {
        brick_dims: [7, 6, 5],
        halo: 1,
        ..Default::default()
    };
    let (store, report) =
        reconstruct_bricked(pipeline, cloud, &fine, &dir, &cfg, &ExecCtx::unbounded())
            .expect("bricked run");
    assert!(report.is_complete());
    let assembled = store.assemble().expect("assemble");
    assert_bitwise_eq(&whole, &assembled, "refined target");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tiny_cloud_with_fewer_samples_than_k_matches() {
    let (field, _, pipeline) = trained();
    let cloud = PointCloud::from_indices(field, vec![0, 117, 599]);
    let whole = pipeline.reconstruct(&cloud, field.grid()).expect("whole-grid");
    let dir = temp_dir("tinycloud");
    let cfg = BrickReconConfig {
        brick_dims: [4, 4, 4],
        halo: 1,
        ..Default::default()
    };
    let (store, report) =
        reconstruct_bricked(pipeline, &cloud, field.grid(), &dir, &cfg, &ExecCtx::unbounded())
            .expect("bricked run");
    assert!(report.is_complete());
    let assembled = store.assemble().expect("assemble");
    assert_bitwise_eq(&whole, &assembled, "tiny cloud");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_cloud_is_rejected() {
    let (field, _, pipeline) = trained();
    let empty = PointCloud::from_indices(field, vec![]);
    let dir = temp_dir("emptycloud");
    let r = reconstruct_bricked(
        pipeline,
        &empty,
        field.grid(),
        &dir,
        &BrickReconConfig::default(),
        &ExecCtx::unbounded(),
    );
    assert!(matches!(r, Err(CoreError::EmptyCloud)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancelled_run_keeps_committed_bricks_and_resumes_to_identical_bits() {
    let (field, cloud, pipeline) = trained();
    let whole = pipeline.reconstruct(cloud, field.grid()).expect("whole-grid");
    let dir = temp_dir("cancel_resume");
    let cfg = BrickReconConfig {
        brick_dims: [4, 4, 3],
        ..Default::default()
    };
    // A pre-cancelled context: the run opens the store, reconstructs
    // nothing, and reports the interruption gracefully.
    let token = CancelToken::new();
    token.cancel();
    let ctx = ExecCtx::unbounded().with_token(token);
    let (store, report) =
        reconstruct_bricked(pipeline, cloud, field.grid(), &dir, &cfg, &ctx).expect("cancelled");
    assert_eq!(report.interrupted, Some(StopReason::Cancelled));
    assert_eq!(report.completed + report.resumed, store.num_done());
    assert!(!report.is_complete());
    drop(store);
    // Resume with an unbounded context: finishes the rest, bit-for-bit.
    let (store, report) =
        reconstruct_bricked(pipeline, cloud, field.grid(), &dir, &cfg, &ExecCtx::unbounded())
            .expect("resume");
    assert!(report.is_complete(), "{report:?}");
    let assembled = store.assemble().expect("assemble");
    assert_bitwise_eq(&whole, &assembled, "cancel + resume");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalidated_bricks_are_the_only_ones_recomputed_on_resume() {
    let (field, cloud, pipeline) = trained();
    let whole = pipeline.reconstruct(cloud, field.grid()).expect("whole-grid");
    let dir = temp_dir("partial_resume");
    let cfg = BrickReconConfig {
        brick_dims: [4, 4, 3],
        ..Default::default()
    };
    let (mut store, first) =
        reconstruct_bricked(pipeline, cloud, field.grid(), &dir, &cfg, &ExecCtx::unbounded())
            .expect("first run");
    assert!(first.is_complete());
    let total = first.total_bricks;
    assert!(total >= 4, "test needs several bricks, got {total}");
    // Simulate a crash that lost two in-flight bricks.
    store.invalidate(1).unwrap();
    store.invalidate(total - 1).unwrap();
    drop(store);
    let (store, second) =
        reconstruct_bricked(pipeline, cloud, field.grid(), &dir, &cfg, &ExecCtx::unbounded())
            .expect("resume");
    assert_eq!(second.resumed, total - 2, "only intact bricks skip");
    assert_eq!(second.completed, 2, "only lost bricks recompute");
    let assembled = store.assemble().expect("assemble");
    assert_bitwise_eq(&whole, &assembled, "partial resume");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_crash_mid_volume_resumes_without_losing_committed_bricks() {
    let _serial = CHAOS_LOCK.lock().unwrap();
    chaos::silence_chaos_panics();
    let (field, cloud, pipeline) = trained();
    let whole = pipeline.reconstruct(cloud, field.grid()).expect("whole-grid");
    let cfg = BrickReconConfig {
        brick_dims: [4, 4, 3],
        ..Default::default()
    };
    // Seeded panic plan: deterministic per seed. Scan seeds until one
    // crashes strictly mid-volume (some bricks durable, some not) — with
    // rate 0.3 over ~15 bricks nearly every seed qualifies.
    let mut demonstrated = false;
    for seed in 0..10u64 {
        let dir = temp_dir(&format!("chaos_crash_{seed}"));
        let crashed = {
            let _guard = chaos::install(FaultPlan::new(seed).panic_at("brick.recon", 0.3));
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                reconstruct_bricked(
                    pipeline,
                    cloud,
                    field.grid(),
                    &dir,
                    &cfg,
                    &ExecCtx::unbounded(),
                )
            }))
            .is_err()
        };
        if !crashed {
            std::fs::remove_dir_all(&dir).ok();
            continue;
        }
        let done_after_crash = BrickStore::open(&dir, *field.grid(), cfg.brick_dims)
            .expect("reopen")
            .num_done();
        let (store, report) = reconstruct_bricked(
            pipeline,
            cloud,
            field.grid(),
            &dir,
            &cfg,
            &ExecCtx::unbounded(),
        )
        .expect("resume after crash");
        assert!(report.is_complete(), "seed {seed}: {report:?}");
        assert_eq!(
            report.resumed, done_after_crash,
            "seed {seed}: every brick committed before the crash must be reused"
        );
        assert_eq!(report.completed, report.total_bricks - done_after_crash);
        let assembled = store.assemble().expect("assemble");
        assert_bitwise_eq(&whole, &assembled, &format!("chaos crash seed {seed}"));
        std::fs::remove_dir_all(&dir).ok();
        if done_after_crash > 0 {
            demonstrated = true;
            break;
        }
    }
    assert!(
        demonstrated,
        "no seed in 0..10 crashed with at least one brick committed"
    );
}
