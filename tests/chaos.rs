//! Chaos acceptance suite: seeded fault sweeps against the supervised
//! in-situ session.
//!
//! For every fault kind (panic, delay, corruption, I/O error) and 32
//! seeds, a short session runs with a [`FaultPlan`] armed across the
//! whole injection-site registry (DESIGN.md §11). The invariants:
//!
//! * every step returns `Ok` — no injected fault may escape
//!   `InSituSession::step` as a panic or an error;
//! * every reconstruction is finite, and whenever the classical fallback
//!   produced any voxel, the report says so (`fallback_kind`);
//! * the sweep actually injected faults (`injected_total > 0`), so a
//!   green run can't be a no-op plan;
//! * nothing hangs: each sweep runs under a watchdog thread.
//!
//! Chaos plans are process-global, so the sweeps serialize on a local
//! lock. The suite is also the `chaos-smoke` CI stage, run under
//! `FV_THREADS=1` and `4`.

use fillvoid::core::checkpoint::CheckpointStore;
use fillvoid::core::insitu::{InSituConfig, InSituSession, SupervisionConfig};
use fillvoid::core::pipeline::{FcnnPipeline, FineTuneSpec, PipelineConfig};
use fillvoid::prelude::*;
use fillvoid::runtime::chaos::{self, FaultPlan};
use fillvoid::runtime::retry::Backoff;
use fillvoid::sims::Hurricane;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

const SEEDS: u64 = 32;
const STEPS: usize = 2;

/// Chaos state is process-global: one sweep at a time.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn pretrained() -> &'static (Hurricane, FcnnPipeline) {
    static CELL: OnceLock<(Hurricane, FcnnPipeline)> = OnceLock::new();
    CELL.get_or_init(|| {
        let sim = Hurricane::builder()
            .resolution([12, 12, 6])
            .timesteps(STEPS + 1)
            .build();
        let mut cfg = PipelineConfig::small_for_tests();
        cfg.trainer.epochs = 6;
        let pipeline = FcnnPipeline::train(&sim.timestep(0), &cfg, 3).expect("pretrain");
        (sim, pipeline)
    })
}

fn session_config() -> InSituConfig {
    InSituConfig {
        fraction: 0.05,
        drift_threshold: None, // fine-tune every step: exercises train.step
        fine_tune: FineTuneSpec {
            epochs: 2,
            ..FineTuneSpec::case1()
        },
        probe_rows: 128,
        score: false,
        supervision: SupervisionConfig {
            step_deadline: None,
            breaker_threshold: 2,
            breaker_probe_interval: 1,
            io_retry: Backoff {
                attempts: 2,
                base: Duration::from_millis(1),
                factor: 2,
                max: Duration::from_millis(2),
            },
        },
        ..Default::default()
    }
}

#[derive(Clone, Copy, Debug)]
enum Kind {
    Panic,
    Delay,
    Corruption,
    IoError,
}

fn plan_for(kind: Kind, seed: u64) -> FaultPlan {
    let p = FaultPlan::new(seed);
    match kind {
        Kind::Panic => p
            .panic_at("insitu.step", 0.4)
            .panic_at("train.step", 0.03)
            .panic_at("recon.batch", 0.05)
            .panic_at("pool.worker", 0.001),
        Kind::Delay => p
            .delay_at("insitu.step", 0.5, Duration::from_millis(2))
            .delay_at("train.step", 0.05, Duration::from_millis(1))
            .delay_at("recon.batch", 0.05, Duration::from_millis(1)),
        Kind::Corruption => p.corrupt_at("recon.output", 0.6),
        Kind::IoError => p
            .io_error_at("ckpt.save", 0.5)
            .io_error_at("ckpt.load", 0.5),
    }
}

/// Run one seeded session under `kind`'s plan; returns faults injected.
fn run_one(kind: Kind, seed: u64) -> u64 {
    let (sim, pipeline) = pretrained();
    let config = session_config();
    let _guard = chaos::install(plan_for(kind, seed));
    let ckpt_dir = matches!(kind, Kind::IoError).then(|| {
        let dir = std::env::temp_dir().join(format!(
            "fv_chaos_{:?}_{seed}_{}",
            kind,
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    });
    let mut session = match &ckpt_dir {
        Some(dir) => {
            let store = CheckpointStore::open(dir, 2).expect("open store");
            InSituSession::with_checkpoints(pipeline.clone(), config, store)
        }
        None => InSituSession::new(pipeline.clone(), config),
    };
    for t in 0..STEPS {
        let (_, recon, report) = session
            .step(&sim.timestep(t))
            .unwrap_or_else(|e| panic!("{kind:?} seed {seed} step {t} errored: {e}"));
        assert!(
            recon.values().iter().all(|v| v.is_finite()),
            "{kind:?} seed {seed} step {t}: non-finite reconstruction"
        );
        assert_eq!(
            report.fallback_kind.is_some(),
            report.fallback_voxels > 0,
            "{kind:?} seed {seed} step {t}: fallback use must be reported"
        );
        if report.panic_caught || report.model_error.is_some() {
            assert!(
                report.degraded,
                "{kind:?} seed {seed} step {t}: a supervised failure must degrade"
            );
        }
    }
    let injected = chaos::injected_total();
    drop(_guard);
    if let Some(dir) = ckpt_dir {
        std::fs::remove_dir_all(&dir).ok();
    }
    injected
}

fn sweep(kind: Kind) {
    let _serial = CHAOS_LOCK.lock().unwrap();
    chaos::silence_chaos_panics();
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let mut injected = 0u64;
        for seed in 0..SEEDS {
            injected += run_one(kind, seed);
        }
        tx.send(injected).ok();
    });
    match rx.recv_timeout(Duration::from_secs(300)) {
        Ok(injected) => {
            worker.join().expect("sweep worker");
            assert!(
                injected > 0,
                "{kind:?}: the sweep never injected a fault — dead plan?"
            );
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            // The worker panicked; join propagates the original assertion.
            worker.join().expect("sweep worker panicked");
            unreachable!();
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("{kind:?} sweep hung past the 300 s watchdog");
        }
    }
}

#[test]
fn panic_sweep_every_run_answers() {
    sweep(Kind::Panic);
}

#[test]
fn delay_sweep_every_run_answers() {
    sweep(Kind::Delay);
}

#[test]
fn corruption_sweep_every_run_answers() {
    sweep(Kind::Corruption);
}

#[test]
fn io_error_sweep_every_run_answers() {
    sweep(Kind::IoError);
}

#[test]
fn step_deadline_is_honored_with_a_finite_answer() {
    let _serial = CHAOS_LOCK.lock().unwrap();
    let (sim, pipeline) = pretrained();
    let mut config = session_config();
    config.supervision.step_deadline = Some(Duration::from_millis(1));
    let mut session = InSituSession::new(pipeline.clone(), config);
    let t0 = std::time::Instant::now();
    let (_, recon, report) = session.step(&sim.timestep(0)).expect("budgeted step");
    // The budget is cooperative (polled at batch boundaries), so assert a
    // generous-but-hang-catching bound rather than the millisecond itself.
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "budgeted step took {:?}",
        t0.elapsed()
    );
    assert!(report.deadline_missed);
    assert!(recon.values().iter().all(|v| v.is_finite()));
    assert_eq!(report.fallback_kind.is_some(), report.fallback_voxels > 0);
}

#[test]
fn field_io_sites_surface_injected_errors_cleanly() {
    let _serial = CHAOS_LOCK.lock().unwrap();
    let (sim, _) = pretrained();
    let field = sim.timestep(0);
    let path = std::env::temp_dir().join(format!("fv_chaos_fieldio_{}.fvf", std::process::id()));
    {
        let _guard = chaos::install(FaultPlan::new(5).io_error_at("field.save", 1.0));
        assert!(
            fillvoid::field::io::save(&field, &path).is_err(),
            "injected save error must surface as Err, not panic"
        );
    }
    fillvoid::field::io::save(&field, &path).expect("clean save");
    {
        let _guard = chaos::install(FaultPlan::new(5).io_error_at("field.load", 1.0));
        assert!(fillvoid::field::io::load(&path).is_err());
    }
    let restored = fillvoid::field::io::load(&path).expect("clean load");
    assert_eq!(restored.values(), field.values());
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Bricked-pipeline sweeps: the same 32-seed × fault-kind matrix against the
// out-of-core streaming path's sites (`brick.recon`, `brick.commit`,
// `brick.load`, `brick.output`). Invariant: whatever a seeded fault does —
// panic mid-pipeline, I/O error on commit, corrupted payloads — a clean
// rerun (plus the non-finite repair scan for in-memory corruption) always
// converges to the exact whole-grid reconstruction, losing nothing that
// the ledger had flagged durable.

use fillvoid::core::brick::{reconstruct_bricked, BrickReconConfig};
use fillvoid::field::brick::BrickStore;
use fillvoid::runtime::ExecCtx;

fn brick_fixture() -> &'static (ScalarField, PointCloud, ScalarField) {
    static CELL: OnceLock<(ScalarField, PointCloud, ScalarField)> = OnceLock::new();
    CELL.get_or_init(|| {
        let (sim, pipeline) = pretrained();
        let field = sim.timestep(0);
        let sampler = ImportanceSampler::new(ImportanceConfig::default());
        let cloud = sampler.sample(&field, 0.06, 17);
        let whole = pipeline.reconstruct(&cloud, field.grid()).expect("reference");
        (field, cloud, whole)
    })
}

fn brick_plan(kind: Kind, seed: u64) -> FaultPlan {
    let p = FaultPlan::new(seed);
    match kind {
        Kind::Panic => p
            .panic_at("brick.recon", 0.2)
            .panic_at("brick.commit", 0.1)
            .panic_at("brick.load", 0.1),
        Kind::Delay => p
            .delay_at("brick.recon", 0.3, Duration::from_millis(1))
            .delay_at("brick.commit", 0.3, Duration::from_millis(1))
            .delay_at("brick.load", 0.3, Duration::from_millis(1)),
        Kind::Corruption => p
            .corrupt_at("brick.output", 0.5)
            .corrupt_at("brick.load", 0.3),
        Kind::IoError => p
            .io_error_at("brick.commit", 0.3)
            .io_error_at("brick.load", 0.3),
    }
}

/// One seeded bricked run under `kind`'s plan; returns faults injected.
///
/// Two chaos-armed attempts (the second resumes the first, exercising
/// `brick.load` against whatever the first left durable), then the repair
/// protocol: sweep non-finite bricks back to pending and rerun clean. The
/// final volume must match the whole-grid reference bit for bit.
fn run_one_brick(kind: Kind, seed: u64) -> u64 {
    let (field, cloud, whole) = brick_fixture();
    let (_, pipeline) = pretrained();
    let cfg = BrickReconConfig {
        brick_dims: [5, 5, 3],
        ..Default::default()
    };
    let dir = std::env::temp_dir().join(format!(
        "fv_chaos_brick_{kind:?}_{seed}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let injected = {
        let _guard = chaos::install(brick_plan(kind, seed));
        for _attempt in 0..2 {
            // Panics, injected Errs and clean completions are all legal
            // outcomes here; the invariant is what the rerun recovers.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                reconstruct_bricked(pipeline, cloud, field.grid(), &dir, &cfg, &ExecCtx::unbounded())
            }));
        }
        chaos::injected_total()
    };
    // Repair: in-memory corruption (brick.output) commits poisoned-but-
    // CRC-consistent payloads; the non-finite scan requeues exactly those.
    let mut store = BrickStore::open(&dir, *field.grid(), cfg.brick_dims).expect("reopen");
    store.invalidate_non_finite().expect("repair scan");
    drop(store);
    let (store, report) = reconstruct_bricked(
        pipeline,
        cloud,
        field.grid(),
        &dir,
        &cfg,
        &ExecCtx::unbounded(),
    )
    .unwrap_or_else(|e| panic!("{kind:?} seed {seed}: clean resume errored: {e}"));
    assert!(report.is_complete(), "{kind:?} seed {seed}: {report:?}");
    let assembled = store.assemble().expect("assemble");
    for (i, (x, y)) in whole.values().iter().zip(assembled.values()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{kind:?} seed {seed}: voxel {i} diverged after recovery"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
    injected
}

fn brick_sweep(kind: Kind) {
    let _serial = CHAOS_LOCK.lock().unwrap();
    chaos::silence_chaos_panics();
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let mut injected = 0u64;
        for seed in 0..SEEDS {
            injected += run_one_brick(kind, seed);
        }
        tx.send(injected).ok();
    });
    match rx.recv_timeout(Duration::from_secs(300)) {
        Ok(injected) => {
            worker.join().expect("brick sweep worker");
            assert!(
                injected > 0,
                "{kind:?}: the brick sweep never injected a fault — dead plan?"
            );
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            worker.join().expect("brick sweep worker panicked");
            unreachable!();
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("{kind:?} brick sweep hung past the 300 s watchdog");
        }
    }
}

#[test]
fn brick_panic_sweep_recovers_bitwise() {
    brick_sweep(Kind::Panic);
}

#[test]
fn brick_delay_sweep_recovers_bitwise() {
    brick_sweep(Kind::Delay);
}

#[test]
fn brick_corruption_sweep_recovers_bitwise() {
    brick_sweep(Kind::Corruption);
}

#[test]
fn brick_io_error_sweep_recovers_bitwise() {
    brick_sweep(Kind::IoError);
}

// ---------------------------------------------------------------------------
// fv-serve sweeps: the same 32-seed × fault-kind matrix against the
// reconstruction server's sites (`serve.accept`, `serve.decode`,
// `serve.batch`, `serve.infer`, the lifecycle sites `serve.swap`,
// `serve.canary`, `serve.conn.read`, `serve.conn.write`, and the
// brick-stream sites `serve.brick.submit`, `serve.brick.compute`,
// `serve.brick.write`). Invariants: a
// fault costs at most its own connection, a typed/degraded response, or a
// rejected (never half-applied) promotion — the listener keeps accepting,
// the registry keeps serving, no in-flight slot, session, or draining
// version leaks — and once the plan is disarmed a clean request converges
// back to the exact direct-path reconstruction (the breaker re-closes via
// its probe).

use fillvoid::serve::registry::CanarySpec;
use fillvoid::serve::{
    fingerprint_f32, BatchConfig, Client, ClientError, ModelRegistry, ServeConfig, Server,
    VERSION_ACTIVE,
};
use std::sync::Arc;

fn serve_plan(kind: Kind, seed: u64) -> FaultPlan {
    let p = FaultPlan::new(seed);
    match kind {
        Kind::Panic => p
            .panic_at("serve.accept", 0.15)
            .panic_at("serve.decode", 0.1)
            .panic_at("serve.batch", 0.15)
            .panic_at("serve.infer", 0.15)
            .panic_at("serve.swap", 0.2)
            .panic_at("serve.canary", 0.2)
            .panic_at("serve.conn.read", 0.05)
            .panic_at("serve.conn.write", 0.05)
            .panic_at("serve.brick.submit", 0.1)
            .panic_at("serve.brick.compute", 0.1)
            .panic_at("serve.brick.write", 0.05),
        Kind::Delay => p
            .delay_at("serve.accept", 0.3, Duration::from_millis(1))
            .delay_at("serve.decode", 0.3, Duration::from_millis(1))
            .delay_at("serve.batch", 0.3, Duration::from_millis(1))
            .delay_at("serve.infer", 0.3, Duration::from_millis(1))
            .delay_at("serve.swap", 0.3, Duration::from_millis(1))
            .delay_at("serve.conn.read", 0.3, Duration::from_millis(1))
            .delay_at("serve.conn.write", 0.3, Duration::from_millis(1))
            .delay_at("serve.brick.compute", 0.3, Duration::from_millis(1)),
        Kind::Corruption => p
            .corrupt_at("serve.infer", 0.5)
            .corrupt_at("serve.canary", 0.5)
            .corrupt_at("serve.brick.compute", 0.3),
        Kind::IoError => p
            .io_error_at("serve.accept", 0.3)
            .io_error_at("serve.decode", 0.3)
            .io_error_at("serve.conn.read", 0.2)
            .io_error_at("serve.conn.write", 0.2)
            .io_error_at("serve.swap", 0.3)
            .io_error_at("serve.canary", 0.3)
            .io_error_at("serve.brick.submit", 0.2)
            .io_error_at("serve.brick.write", 0.2),
    }
}

/// One seeded serve run under `kind`'s plan; returns faults injected.
fn run_one_serve(kind: Kind, seed: u64) -> u64 {
    let (field, cloud, whole) = brick_fixture();
    let (_, pipeline) = pretrained();
    let registry = Arc::new(ModelRegistry::new(64 << 20).with_breaker(2, 2));
    registry
        .insert("hurricane", 1, pipeline.clone())
        .expect("seed registry");
    // Canary pinned to the direct-path bits: the mid-chaos promotion
    // below pushes an identical pipeline, so an *honest* canary always
    // passes and every rejection is chaos-induced (injected fault or
    // corrupted canary output) — exactly the rollback path under test.
    registry.set_canary(
        "hurricane",
        CanarySpec {
            cloud: Arc::new(cloud.clone()),
            reference: whole.clone(),
            snr_floor_db: None,
            fingerprint: Some(fingerprint_f32(whole.values())),
        },
    );
    let cfg = ServeConfig {
        batch: BatchConfig {
            flush_after: Duration::from_micros(200),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut server = Server::start_with_registry(cfg, registry.clone()).expect("start server");
    let addr = server.addr();

    let injected = {
        let _guard = chaos::install(serve_plan(kind, seed));
        for _client in 0..3 {
            // Any outcome short of a hang is legal mid-chaos: a typed
            // error, a degraded answer, or a dropped connection. What is
            // NOT legal is an escaped panic — the `?`-chain below only
            // carries typed client errors.
            let _ = (|| -> Result<(), ClientError> {
                let mut c = Client::connect(addr)?;
                let s = c.open_session("acme", "hurricane", 1)?;
                c.put_cloud(s, cloud)?;
                for _ in 0..2 {
                    let _ = c.reconstruct(s, field.grid(), 0);
                }
                // Brick-stream lane under the same faults: any typed
                // error or torn stream is legal mid-chaos.
                let _ = c.reconstruct_bricked_dense(s, field.grid(), [4, 4, 2], 0);
                Ok(())
            })();
        }
        // Mid-chaos hot-swap: bit-identical weights as v2, so whichever
        // of {promoted, rejected, chaos-panicked} happens, the clean
        // convergence check below is version-agnostic. Half-applied
        // installs are the bug class this hunts.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.promote("hurricane", 2, pipeline.clone(), true)
        }));
        chaos::injected_total()
    };

    // Chaos disarmed: the server must still be fully serviceable on a
    // fresh connection, and the answer must converge back to the exact
    // direct-path bits (the breaker probe re-admits the model).
    let mut c = Client::connect(addr)
        .unwrap_or_else(|e| panic!("{kind:?} seed {seed}: clean connect failed: {e}"));
    let s = c
        .open_session("acme", "hurricane", VERSION_ACTIVE)
        .unwrap_or_else(|e| panic!("{kind:?} seed {seed}: clean open failed: {e}"));
    c.put_cloud(s, cloud)
        .unwrap_or_else(|e| panic!("{kind:?} seed {seed}: clean upload failed: {e}"));
    let mut served = None;
    for _ in 0..50 {
        let got = c
            .reconstruct(s, field.grid(), 0)
            .unwrap_or_else(|e| panic!("{kind:?} seed {seed}: clean reconstruct failed: {e}"));
        let degraded = got.degraded;
        served = Some(got);
        if !degraded {
            break;
        }
    }
    let served = served.unwrap();
    assert!(
        !served.degraded,
        "{kind:?} seed {seed}: breaker never recovered after chaos"
    );
    for (i, (x, y)) in whole.values().iter().zip(served.field.values()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{kind:?} seed {seed}: voxel {i} diverged post-chaos"
        );
    }

    // The streaming lane must converge to the same exact bits once the
    // plan is disarmed — chaos-failed streams cost nothing persistent.
    let (bricked, summary) = c
        .reconstruct_bricked_dense(s, field.grid(), [4, 4, 2], 0)
        .unwrap_or_else(|e| panic!("{kind:?} seed {seed}: clean bricked stream failed: {e}"));
    assert_eq!(summary.received, summary.total_bricks);
    for (i, (x, y)) in whole.values().iter().zip(bricked.values()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{kind:?} seed {seed}: brick voxel {i} diverged post-chaos"
        );
    }

    // No leaked in-flight slots, whatever the faults did.
    let stats = c.stats().expect("stats");
    for (idx, _) in stats.match_indices("\"inflight\": ") {
        let rest = &stats[idx + "\"inflight\": ".len()..];
        assert!(
            rest.starts_with("0,") || rest.starts_with("0}"),
            "{kind:?} seed {seed}: leaked in-flight slot in {stats}"
        );
    }
    server.shutdown();
    // Whatever the promotion's fate, shutdown must leave no version
    // stuck draining and no half-installed candidate.
    let sw = registry.swap_stats();
    assert_eq!(
        sw.draining, 0,
        "{kind:?} seed {seed}: version leaked in draining state: {sw:?}"
    );
    injected
}

fn serve_sweep(kind: Kind) {
    let _serial = CHAOS_LOCK.lock().unwrap();
    chaos::silence_chaos_panics();
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let mut injected = 0u64;
        for seed in 0..SEEDS {
            injected += run_one_serve(kind, seed);
        }
        tx.send(injected).ok();
    });
    match rx.recv_timeout(Duration::from_secs(300)) {
        Ok(injected) => {
            worker.join().expect("serve sweep worker");
            assert!(
                injected > 0,
                "{kind:?}: the serve sweep never injected a fault — dead plan?"
            );
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            worker.join().expect("serve sweep worker panicked");
            unreachable!();
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("{kind:?} serve sweep hung past the 300 s watchdog");
        }
    }
}

#[test]
fn serve_panic_sweep_recovers_bitwise() {
    serve_sweep(Kind::Panic);
}

#[test]
fn serve_delay_sweep_recovers_bitwise() {
    serve_sweep(Kind::Delay);
}

#[test]
fn serve_corruption_sweep_recovers_bitwise() {
    serve_sweep(Kind::Corruption);
}

#[test]
fn serve_io_error_sweep_recovers_bitwise() {
    serve_sweep(Kind::IoError);
}
