//! Persistence integration tests: the artifacts an in-situ workflow
//! actually ships between nodes and timesteps (fields, clouds, models,
//! pipelines) round-trip through their on-disk formats.

use fillvoid::core::pipeline::{FcnnPipeline, FineTuneSpec, PipelineConfig};
use fillvoid::field::io as field_io;
use fillvoid::nn::serialize as nn_io;
use fillvoid::prelude::*;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fillvoid_persistence").join(name);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn small_pipeline(field: &ScalarField, seed: u64) -> FcnnPipeline {
    let cfg = PipelineConfig {
        hidden: vec![24, 12],
        trainer: fillvoid::nn::TrainerConfig {
            epochs: 8,
            ..PipelineConfig::small_for_tests().trainer
        },
        ..PipelineConfig::small_for_tests()
    };
    FcnnPipeline::train(field, &cfg, seed).expect("train")
}

#[test]
fn field_vtk_chain_preserves_reconstruction_input() {
    // field -> .vtk -> field -> sample -> reconstruct works end to end.
    let sim = Combustion::builder().resolution([12, 16, 6]).timesteps(4).build();
    let field = sim.timestep(2);
    let mut buf = Vec::new();
    field_io::write_vtk_ascii(&field, "mixfrac", &mut buf).expect("write vtk");
    let restored = field_io::read_vtk_ascii(buf.as_slice()).expect("read vtk");
    let cloud = ImportanceSampler::default().sample(&restored, 0.05, 1);
    let recon = LinearReconstructor::default()
        .reconstruct(&cloud, restored.grid())
        .expect("reconstruct");
    assert_eq!(recon.len(), field.len());
}

#[test]
fn binary_field_roundtrip_through_file() {
    let sim = Hurricane::builder().resolution([10, 10, 6]).timesteps(3).build();
    let field = sim.timestep(1);
    let path = tmp_dir("field").join("t1.fvf");
    field_io::save(&field, &path).expect("save");
    let restored = field_io::load(&path).expect("load");
    assert_eq!(field, restored);
    std::fs::remove_file(path).ok();
}

#[test]
fn pipeline_file_roundtrip_preserves_reconstructions() {
    let sim = Hurricane::builder().resolution([12, 12, 6]).timesteps(3).build();
    let field = sim.timestep(1);
    let pipeline = small_pipeline(&field, 5);
    let path = tmp_dir("pipeline").join("model.fvpl");
    pipeline.save(&path).expect("save");
    let restored = FcnnPipeline::load(&path).expect("load");
    let cloud = ImportanceSampler::default().sample(&field, 0.05, 3);
    assert_eq!(
        pipeline.reconstruct(&cloud, field.grid()).unwrap(),
        restored.reconstruct(&cloud, field.grid()).unwrap()
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn case2_partial_checkpoints_reassemble_across_timesteps() {
    // The paper's Case-2 storage scheme: one full base model + per-timestep
    // tail checkpoints. Restoring base+tail must reproduce the fine-tuned
    // model's predictions exactly.
    let sim = Hurricane::builder().resolution([12, 12, 6]).timesteps(6).build();
    let field0 = sim.timestep(0);
    let field5 = sim.timestep(5);

    let mut base = small_pipeline(&field0, 9);
    let mut base_model_bytes = Vec::new();
    nn_io::write_model(base.mlp(), &mut base_model_bytes).expect("save base");

    // Fine-tune Case 2 on the later timestep and save just the tail.
    base.fine_tune(
        &field5,
        &FineTuneSpec {
            epochs: 4,
            ..FineTuneSpec::case2()
        },
    )
    .expect("fine-tune");
    let mut tuned_model = base.mlp().clone();
    tuned_model.freeze_all_but_last(2);
    let mut tail_bytes = Vec::new();
    nn_io::save_partial(&tuned_model, &mut tail_bytes).expect("save tail");
    assert!(
        tail_bytes.len() < base_model_bytes.len(),
        "tail checkpoint should be smaller than the full model"
    );

    // Reassemble: load the pretrained base, then apply the tail.
    let mut reassembled = nn_io::read_model(base_model_bytes.as_slice()).expect("load base");
    reassembled.freeze_all_but_last(2);
    nn_io::load_partial_into(&mut reassembled, tail_bytes.as_slice()).expect("load tail");
    assert_eq!(&reassembled, &tuned_model);
}

#[test]
fn cloud_vtk_export_has_all_samples() {
    let sim = IonizationFront::builder().resolution([12, 8, 8]).timesteps(3).build();
    let field = sim.timestep(1);
    let cloud = ImportanceSampler::default().sample(&field, 0.1, 7);
    let mut buf = Vec::new();
    cloud.write_vtk_ascii("density", &mut buf).expect("write");
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains(&format!("POINTS {} float", cloud.len())));
    // every sampled value appears in the file
    let first = format!("{}", cloud.values()[0]);
    assert!(text.contains(&first));
}

// ---------------------------------------------------------------------------
// Fault-injection coverage: every shipped artifact must turn corruption into
// a typed error, and every save must be atomic.
// ---------------------------------------------------------------------------

#[test]
fn field_checkpoint_truncated_at_every_byte_boundary_errors() {
    let sim = Hurricane::builder().resolution([6, 5, 4]).timesteps(2).build();
    let field = sim.timestep(1);
    let mut buf = Vec::new();
    field_io::write_bin(&field, &mut buf).expect("write");
    for keep in 0..buf.len() {
        let r = fillvoid::field::faults::TruncatingReader::new(buf.as_slice(), keep);
        assert!(
            field_io::read_bin(r).is_err(),
            "truncation to {keep}/{} bytes went undetected",
            buf.len()
        );
    }
    // and the intact stream still loads
    assert_eq!(field_io::read_bin(buf.as_slice()).expect("intact"), field);
}

#[test]
fn field_checkpoint_single_bit_corruption_is_detected_everywhere() {
    let sim = Hurricane::builder().resolution([6, 5, 4]).timesteps(2).build();
    let field = sim.timestep(0);
    let mut buf = Vec::new();
    field_io::write_bin(&field, &mut buf).expect("write");
    for offset in 0..buf.len() as u64 {
        let r = fillvoid::field::faults::BitFlipReader::new(buf.as_slice(), offset, 0x20);
        assert!(
            field_io::read_bin(r).is_err(),
            "bit flip at byte {offset} went undetected"
        );
    }
}

#[test]
fn model_checkpoint_bit_flips_and_truncation_are_detected() {
    let sim = Hurricane::builder().resolution([10, 10, 6]).timesteps(2).build();
    let pipeline = small_pipeline(&sim.timestep(0), 11);
    let mut buf = Vec::new();
    nn_io::write_model(pipeline.mlp(), &mut buf).expect("write");
    // every 16th byte keeps runtime reasonable; unit tests cover all offsets
    for offset in (0..buf.len() as u64).step_by(16) {
        let r = fillvoid::field::faults::BitFlipReader::new(buf.as_slice(), offset, 0x01);
        assert!(
            nn_io::read_model(r).is_err(),
            "model bit flip at byte {offset} went undetected"
        );
    }
    for keep in (0..buf.len()).step_by(7) {
        let r = fillvoid::field::faults::TruncatingReader::new(buf.as_slice(), keep);
        assert!(nn_io::read_model(r).is_err(), "model truncated to {keep} loaded");
    }
}

#[test]
fn interrupted_write_leaves_no_file_under_the_real_name() {
    use fillvoid::field::faults::FailingWriter;
    let sim = Hurricane::builder().resolution([8, 8, 4]).timesteps(2).build();
    let field = sim.timestep(0);
    // a write that dies mid-stream produces a prefix that must not load
    let mut w = FailingWriter::new(Vec::new(), 64);
    assert!(field_io::write_bin(&field, &mut w).is_err());
    let torn = w.into_inner();
    assert!(field_io::read_bin(torn.as_slice()).is_err(), "torn prefix loaded");

    // atomic save: the destination never exists half-written, and failed
    // attempts leave no temp files behind
    let dir = tmp_dir("atomic");
    let path = dir.join("field.fvf");
    field_io::save(&field, &path).expect("save");
    assert_eq!(field_io::load(&path).expect("load"), field);
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(field_io::TMP_SUFFIX))
        .collect();
    assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_store_survives_leftover_temp_files_and_torn_generations() {
    use fillvoid::core::checkpoint::CheckpointStore;
    let sim = Hurricane::builder().resolution([10, 10, 6]).timesteps(2).build();
    let pipeline = small_pipeline(&sim.timestep(0), 13);
    let dir = tmp_dir("store");
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut store = CheckpointStore::open(&dir, 3).expect("open");
        store.save(&pipeline).expect("gen 0");
        store.save(&pipeline).expect("gen 1");
        store.save(&pipeline).expect("gen 2");
    }
    // a crash mid-save leaves a stray temp; a later crash tears the newest
    std::fs::write(dir.join("ckpt-00000003.fvck.9999.tmp"), b"garbage").unwrap();
    let store = CheckpointStore::open(&dir, 3).expect("reopen");
    let newest = store.latest().expect("has generations");
    let path = store.path_for(newest);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 4]).unwrap();

    let (gen, restored) = store
        .load_latest()
        .expect("walk generations")
        .expect("an older generation survives");
    assert_eq!(gen, newest - 1);
    assert_eq!(restored.mlp(), pipeline.mlp());
    std::fs::remove_dir_all(&dir).ok();
}
