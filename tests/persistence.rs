//! Persistence integration tests: the artifacts an in-situ workflow
//! actually ships between nodes and timesteps (fields, clouds, models,
//! pipelines) round-trip through their on-disk formats.

use fillvoid::core::pipeline::{FcnnPipeline, FineTuneSpec, PipelineConfig};
use fillvoid::field::io as field_io;
use fillvoid::nn::serialize as nn_io;
use fillvoid::prelude::*;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fillvoid_persistence").join(name);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn small_pipeline(field: &ScalarField, seed: u64) -> FcnnPipeline {
    let cfg = PipelineConfig {
        hidden: vec![24, 12],
        trainer: fillvoid::nn::TrainerConfig {
            epochs: 8,
            ..PipelineConfig::small_for_tests().trainer
        },
        ..PipelineConfig::small_for_tests()
    };
    FcnnPipeline::train(field, &cfg, seed).expect("train")
}

#[test]
fn field_vtk_chain_preserves_reconstruction_input() {
    // field -> .vtk -> field -> sample -> reconstruct works end to end.
    let sim = Combustion::builder().resolution([12, 16, 6]).timesteps(4).build();
    let field = sim.timestep(2);
    let mut buf = Vec::new();
    field_io::write_vtk_ascii(&field, "mixfrac", &mut buf).expect("write vtk");
    let restored = field_io::read_vtk_ascii(buf.as_slice()).expect("read vtk");
    let cloud = ImportanceSampler::default().sample(&restored, 0.05, 1);
    let recon = LinearReconstructor::default()
        .reconstruct(&cloud, restored.grid())
        .expect("reconstruct");
    assert_eq!(recon.len(), field.len());
}

#[test]
fn binary_field_roundtrip_through_file() {
    let sim = Hurricane::builder().resolution([10, 10, 6]).timesteps(3).build();
    let field = sim.timestep(1);
    let path = tmp_dir("field").join("t1.fvf");
    field_io::save(&field, &path).expect("save");
    let restored = field_io::load(&path).expect("load");
    assert_eq!(field, restored);
    std::fs::remove_file(path).ok();
}

#[test]
fn pipeline_file_roundtrip_preserves_reconstructions() {
    let sim = Hurricane::builder().resolution([12, 12, 6]).timesteps(3).build();
    let field = sim.timestep(1);
    let pipeline = small_pipeline(&field, 5);
    let path = tmp_dir("pipeline").join("model.fvpl");
    pipeline.save(&path).expect("save");
    let restored = FcnnPipeline::load(&path).expect("load");
    let cloud = ImportanceSampler::default().sample(&field, 0.05, 3);
    assert_eq!(
        pipeline.reconstruct(&cloud, field.grid()).unwrap(),
        restored.reconstruct(&cloud, field.grid()).unwrap()
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn case2_partial_checkpoints_reassemble_across_timesteps() {
    // The paper's Case-2 storage scheme: one full base model + per-timestep
    // tail checkpoints. Restoring base+tail must reproduce the fine-tuned
    // model's predictions exactly.
    let sim = Hurricane::builder().resolution([12, 12, 6]).timesteps(6).build();
    let field0 = sim.timestep(0);
    let field5 = sim.timestep(5);

    let mut base = small_pipeline(&field0, 9);
    let mut base_model_bytes = Vec::new();
    nn_io::write_model(base.mlp(), &mut base_model_bytes).expect("save base");

    // Fine-tune Case 2 on the later timestep and save just the tail.
    base.fine_tune(
        &field5,
        &FineTuneSpec {
            epochs: 4,
            ..FineTuneSpec::case2()
        },
    )
    .expect("fine-tune");
    let mut tuned_model = base.mlp().clone();
    tuned_model.freeze_all_but_last(2);
    let mut tail_bytes = Vec::new();
    nn_io::save_partial(&tuned_model, &mut tail_bytes).expect("save tail");
    assert!(
        tail_bytes.len() < base_model_bytes.len(),
        "tail checkpoint should be smaller than the full model"
    );

    // Reassemble: load the pretrained base, then apply the tail.
    let mut reassembled = nn_io::read_model(base_model_bytes.as_slice()).expect("load base");
    reassembled.freeze_all_but_last(2);
    nn_io::load_partial_into(&mut reassembled, tail_bytes.as_slice()).expect("load tail");
    assert_eq!(&reassembled, &tuned_model);
}

#[test]
fn cloud_vtk_export_has_all_samples() {
    let sim = IonizationFront::builder().resolution([12, 8, 8]).timesteps(3).build();
    let field = sim.timestep(1);
    let cloud = ImportanceSampler::default().sample(&field, 0.1, 7);
    let mut buf = Vec::new();
    cloud.write_vtk_ascii("density", &mut buf).expect("write");
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains(&format!("POINTS {} float", cloud.len())));
    // every sampled value appears in the file
    let first = format!("{}", cloud.values()[0]);
    assert!(text.contains(&first));
}
