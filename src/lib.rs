//! # fillvoid
//!
//! A Rust reproduction of *"Filling the Void: Data-Driven Machine
//! Learning-based Reconstruction of Sampled Spatiotemporal Scientific
//! Simulation Data"* (Biswas et al., SC 2024).
//!
//! This facade crate re-exports the full workspace under one roof. The
//! typical flow mirrors Figure 1 of the paper:
//!
//! 1. produce a regular-grid scalar field (here: a synthetic simulation from
//!    [`sims`]),
//! 2. sample it with a data-driven importance sampler ([`sampling`]),
//! 3. train a fully connected network on features extracted at the *void
//!    locations* ([`core`] / [`nn`]),
//! 4. reconstruct the full grid from the sparse cloud and compare against
//!    classical point-cloud interpolators ([`interp`]).
//!
//! ```
//! use fillvoid::prelude::*;
//!
//! // (1) simulate a tiny hurricane-like pressure field
//! let sim = Hurricane::builder().resolution([12, 12, 6]).build();
//! let field = sim.timestep(0);
//!
//! // (2) keep 5% of the points, importance-weighted
//! let sampler = ImportanceSampler::new(ImportanceConfig::default());
//! let cloud = sampler.sample(&field, 0.05, 42);
//!
//! // (3) train a small FCNN on the void locations of this timestep
//! let cfg = PipelineConfig::small_for_tests();
//! let mut pipeline = FcnnPipeline::train(&field, &cfg, 7).unwrap();
//!
//! // (4) reconstruct and score
//! let recon = pipeline.reconstruct(&cloud, field.grid()).unwrap();
//! let snr = snr_db(&field, &recon);
//! assert!(snr.is_finite());
//! ```

pub use fillvoid_core as core;
pub use fv_field as field;
pub use fv_interp as interp;
pub use fv_linalg as linalg;
pub use fv_nn as nn;
pub use fv_runtime as runtime;
pub use fv_sampling as sampling;
pub use fv_serve as serve;
pub use fv_sims as sims;
pub use fv_spatial as spatial;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use fillvoid_core::{
        features::FeatureConfig,
        metrics::{psnr_db, rmse, snr_db},
        pipeline::{FcnnPipeline, PipelineConfig, TrainCorpus},
        upscale,
    };
    pub use fv_field::{Grid3, ScalarField};
    pub use fv_interp::{
        linear::LinearReconstructor, natural::NaturalNeighborReconstructor,
        nearest::NearestReconstructor, shepard::ShepardReconstructor, Reconstructor,
    };
    pub use fv_nn::mlp::Mlp;
    pub use fv_sampling::{
        importance::{ImportanceConfig, ImportanceSampler},
        FieldSampler, PointCloud,
    };
    pub use fv_sims::{combustion::Combustion, hurricane::Hurricane, ionization::IonizationFront, Simulation};
}
