//! Completion signalling between job producers and consumers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// A one-shot "this job finished" flag.
///
/// The executing thread calls [`Latch::set`] exactly once, *after* the job's
/// result has been written. Worker threads waiting on a latch keep stealing
/// other work and only [`Latch::probe`]; external (non-pool) threads block on
/// the internal condvar via [`Latch::wait`].
pub(crate) struct Latch {
    done: AtomicBool,
    lock: Mutex<()>,
    cond: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Self {
        Self {
            done: AtomicBool::new(false),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// `true` once the job has completed. `Acquire` pairs with the `Release`
    /// store in [`Latch::set`], so a `true` probe makes the job's result
    /// visible to the prober.
    #[inline]
    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Mark the job complete and wake any blocked waiter.
    ///
    /// Taking the mutex before notifying closes the race where a waiter
    /// probes `false`, and would otherwise park just after the notification:
    /// the waiter holds the lock from its probe until it parks, so `set`
    /// cannot slip a notification into that window.
    pub(crate) fn set(&self) {
        self.done.store(true, Ordering::Release);
        let _guard = self.lock.lock().unwrap();
        self.cond.notify_all();
    }

    /// Block the calling thread until the latch is set. Only for threads
    /// outside the pool — a worker must steal while it waits instead.
    pub(crate) fn wait(&self) {
        let mut guard = self.lock.lock().unwrap();
        while !self.probe() {
            guard = self.cond.wait(guard).unwrap();
        }
    }
}

/// A counting latch for [`crate::scope`]: starts at zero, counts outstanding
/// spawned jobs, and releases waiters when the count returns to zero.
///
/// The count lives under the mutex (not in an atomic) so that the final
/// decrement's `notify_all` and the waiter's wakeup are totally ordered:
/// once `wait` returns, no decrementer still touches this latch, making it
/// safe to drop the enclosing scope.
pub(crate) struct CountLatch {
    count: Mutex<usize>,
    cond: Condvar,
}

impl CountLatch {
    pub(crate) fn new() -> Self {
        Self {
            count: Mutex::new(0),
            cond: Condvar::new(),
        }
    }

    pub(crate) fn increment(&self) {
        *self.count.lock().unwrap() += 1;
    }

    pub(crate) fn decrement(&self) {
        let mut count = self.count.lock().unwrap();
        *count -= 1;
        if *count == 0 {
            self.cond.notify_all();
        }
    }

    /// `true` while spawned jobs are still outstanding.
    pub(crate) fn is_pending(&self) -> bool {
        *self.count.lock().unwrap() > 0
    }

    /// Block until the count reaches zero (for non-worker threads).
    pub(crate) fn wait(&self) {
        let mut count = self.count.lock().unwrap();
        while *count > 0 {
            count = self.cond.wait(count).unwrap();
        }
    }
}
