//! # fv-runtime
//!
//! A work-stealing OS-thread pool for the `fillvoid` workspace, built on
//! `std::thread` plus crossbeam-style per-worker deques — no external
//! dependencies, so it works in the offline build environment. The
//! `vendor/rayon` facade is reimplemented on top of this crate, which takes
//! every `par_iter`/`par_chunks` hot path in the workspace (kNN feature
//! extraction, FCNN training matmuls, full-grid reconstruction, the
//! interpolation baselines) from sequential stand-in execution to real
//! multicore execution without source changes in the nine `fv-*` crates.
//!
//! ## Primitives
//!
//! * [`join`] — the fork/join core: run two closures, potentially in
//!   parallel, with panic propagation. Recursive `join` is how everything
//!   else splits.
//! * [`scope`] — structured spawns that may borrow the caller's stack.
//! * [`par_for`] / [`par_map`] / [`par_reduce`] — chunked data-parallel
//!   drivers over index ranges.
//! * [`Pool`] — explicit pools (`Pool::new(8).install(|| ...)`) for tests
//!   and benchmarks that need a specific width; everything else uses the
//!   lazily created global pool.
//!
//! ## Supervised execution
//!
//! * Workers are supervised: a panic that escapes a worker's run loop is
//!   caught and the loop restarted on the same thread, so the pool heals
//!   instead of deadlocking on a lost worker ([`SupervisionStats`]).
//! * [`cancel`] — cooperative [`CancelToken`] / [`Deadline`] / [`ExecCtx`]
//!   primitives polled by the workspace's hot loops at batch boundaries.
//! * [`chaos`] — a seeded, deterministic fault-injection engine with named
//!   sites across the workspace (zero-cost while disabled).
//! * [`retry`] — deterministic exponential backoff for transient I/O.
//! * [`telemetry`] — zero-dependency structured observability (named
//!   spans, counters, gauges, log2 latency histograms) across the whole
//!   workspace; off unless `FV_TELEMETRY=1`, and inert (one relaxed load
//!   per site) while off.
//!
//! ## Configuration
//!
//! * `FV_THREADS=N` — worker count of the global pool (default: the
//!   machine's available parallelism). Read once, at first use.
//! * `FV_DETERMINISTIC=0|false|off` — switch from deterministic chunking
//!   (the default) to throughput chunking. In deterministic mode chunk
//!   boundaries and reduction trees depend only on the problem size, so
//!   floating-point results are bitwise identical at any `FV_THREADS` —
//!   which keeps checkpoint CRCs and reported SNR numbers reproducible.
//!
//! ## Determinism contract
//!
//! Work *placement* (which worker runs which chunk) is always
//! nondeterministic — that is the point of stealing. Work *decomposition*
//! is deterministic in deterministic mode: leaves are the fixed chunks
//! `[i*chunk, (i+1)*chunk)` and reductions combine them in index order, so
//! any value computed through these drivers is a pure function of its
//! inputs. See DESIGN.md §9 for the full architecture.

pub mod alloc;
pub mod cancel;
pub mod chaos;
pub mod deque;
pub mod granularity;
mod job;
mod latch;
mod par;
mod pool;
pub mod retry;
mod scope;
pub mod telemetry;

pub use cancel::{CancelToken, Deadline, ExecCtx, StopReason};
pub use par::{chunk_size, par_for, par_map, par_reduce, split_point, SendPtr, DETERMINISTIC_CHUNKS};
pub use pool::{current_num_threads, join, supervision_stats, Pool, SupervisionStats};
pub use scope::{scope, Scope};

use std::sync::OnceLock;

/// `true` when deterministic chunking is active (the default; disable with
/// `FV_DETERMINISTIC=0`). Read once, at first use.
pub fn deterministic() -> bool {
    static DETERMINISTIC: OnceLock<bool> = OnceLock::new();
    *DETERMINISTIC.get_or_init(|| {
        match std::env::var("FV_DETERMINISTIC") {
            Ok(raw) => !matches!(
                raw.trim().to_ascii_lowercase().as_str(),
                "0" | "false" | "off" | "no"
            ),
            Err(_) => true,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 21 * 2, || "b");
        assert_eq!(a, 42);
        assert_eq!(b, "b");
    }

    #[test]
    fn join_borrows_stack_data() {
        let xs = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let (lo, hi) = xs.split_at(4);
        let (a, b) = join(
            || lo.iter().sum::<u64>(),
            || hi.iter().sum::<u64>(),
        );
        assert_eq!(a + b, 36);
    }

    #[test]
    fn nested_join_no_deadlock() {
        // Parallel fib stresses deep nesting: every level parks a branch in
        // the deque and the LIFO pop/steal discipline must always make
        // progress, whatever the pool width.
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = Pool::new(4);
        assert_eq!(pool.install(|| fib(16)), 987);
    }

    #[test]
    fn panic_in_stolen_branch_propagates() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                join(
                    || 1 + 1,
                    || -> i32 { panic!("worker branch panicked") },
                )
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("worker branch panicked"), "got {msg:?}");
        // The pool survives a propagated panic and keeps executing work.
        assert_eq!(pool.install(|| join(|| 2, || 3)), (2, 3));
    }

    #[test]
    fn panic_in_first_branch_still_settles_second() {
        let pool = Pool::new(2);
        let ran_b = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                join(
                    || panic!("branch a"),
                    || ran_b.fetch_add(1, Ordering::SeqCst),
                )
            })
        }));
        assert!(result.is_err());
        assert_eq!(ran_b.load(Ordering::SeqCst), 1, "b must run before unwind");
    }

    #[test]
    fn install_runs_on_a_pool_worker() {
        let pool = Pool::new(3);
        assert_eq!(pool.num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        let name = pool.install(|| std::thread::current().name().map(str::to_owned));
        assert!(name.unwrap_or_default().starts_with("fv-runtime-"));
    }

    #[test]
    fn scope_spawns_complete_before_return() {
        let pool = Pool::new(4);
        let mut counts = [0u32; 32];
        pool.install(|| {
            scope(|s| {
                for c in counts.iter_mut() {
                    s.spawn(move || *c += 1);
                }
            });
        });
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn scope_propagates_spawn_panic() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                scope(|s| {
                    s.spawn(|| panic!("spawned panic"));
                });
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn par_map_preserves_index_order() {
        let out = par_map(1000, |i| i * i);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn par_for_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        let pool = Pool::new(4);
        pool.install(|| {
            par_for(hits.len(), 7, &|start, end| {
                for h in &hits[start..end] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_reduce_matches_sequential() {
        let total = par_reduce(
            10_000,
            97,
            &|start, end| (start..end).map(|i| i as u64).sum::<u64>(),
            &|a, b| a + b,
        );
        assert_eq!(total, Some((0..10_000u64).sum()));
        assert_eq!(par_reduce(0, 8, &|_, _| 1u32, &|a, b| a + b), None);
    }

    #[test]
    fn float_reduction_bitwise_identical_across_widths() {
        // An associativity-sensitive sum: identical chunk geometry must give
        // an identical bit pattern whatever the pool width.
        let reduce_in = |pool: &Pool| {
            pool.install(|| {
                par_reduce(
                    100_000,
                    1024,
                    &|start, end| (start..end).map(|i| (i as f32).sqrt() * 1e-3).sum::<f32>(),
                    &|a, b| a + b,
                )
                .unwrap()
            })
        };
        let one = reduce_in(&Pool::new(1));
        let eight = reduce_in(&Pool::new(8));
        assert_eq!(one.to_bits(), eight.to_bits());
    }

    #[test]
    fn split_points_are_chunk_aligned() {
        for (len, chunk) in [(100usize, 7usize), (1000, 64), (65, 64), (129, 64)] {
            let mid = split_point(len, chunk);
            assert_eq!(mid % chunk, 0);
            assert!(mid > 0 && mid < len, "len={len} chunk={chunk} mid={mid}");
        }
    }
}
