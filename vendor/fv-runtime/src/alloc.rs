//! A counting wrapper around the system allocator.
//!
//! Install it in a binary or test to make heap traffic observable:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: fv_runtime::alloc::CountingAllocator =
//!     fv_runtime::alloc::CountingAllocator;
//!
//! let before = fv_runtime::alloc::allocation_count();
//! hot_loop();
//! assert_eq!(fv_runtime::alloc::allocation_count() - before, 0);
//! ```
//!
//! Only allocations and growing reallocations are counted — frees are not,
//! since the steady-state regression the workspace architecture guards
//! against is *acquiring* memory per step, not returning it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The system allocator plus a process-wide allocation counter.
pub struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter has no effect
// on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap acquisitions (alloc + realloc) since process start. Monotonic; take
/// differences around the region of interest.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
