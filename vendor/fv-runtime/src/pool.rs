//! The work-stealing pool: worker threads, the global injector, `join`.

use crate::deque::{deque, Stealer, Worker};
use crate::job::{JobRef, StackJob};
use crate::latch::Latch;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on worker count — a typo in `FV_THREADS` should not try to
/// spawn a million threads.
const MAX_THREADS: usize = 512;

/// Shared state of one pool, reference-counted between the owning
/// [`Pool`] handle and its worker threads.
pub(crate) struct PoolState {
    /// Global FIFO queue for jobs arriving from outside the pool.
    injector: Mutex<VecDeque<JobRef>>,
    /// One stealer per worker deque, indexed by worker.
    stealers: Vec<Stealer<JobRef>>,
    n_threads: usize,
    /// Number of workers currently parked on `sleep_cond`.
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cond: Condvar,
    shutdown: AtomicBool,
}

/// Per-worker context, stack-allocated in `worker_main` and published to the
/// thread-local `CURRENT` pointer for the lifetime of the worker.
pub(crate) struct WorkerCtx {
    state: Arc<PoolState>,
    index: usize,
    local: Worker<JobRef>,
}

thread_local! {
    /// Pointer to the current thread's [`WorkerCtx`], null off-pool.
    static CURRENT: Cell<*const WorkerCtx> = const { Cell::new(std::ptr::null()) };
}

/// The current worker context, if this thread is a pool worker.
///
/// Safety of the deref: the pointee lives on `worker_main`'s stack and the
/// pointer is cleared before that frame exits, so a non-null pointer is
/// always valid on this thread.
pub(crate) fn current_ctx() -> Option<&'static WorkerCtx> {
    CURRENT.with(|c| {
        let ptr = c.get();
        if ptr.is_null() {
            None
        } else {
            Some(unsafe { &*ptr })
        }
    })
}

impl PoolState {
    fn inject(&self, job: JobRef) {
        self.injector.lock().unwrap().push_back(job);
        self.notify_work();
    }

    fn pop_injected(&self) -> Option<JobRef> {
        self.injector.lock().unwrap().pop_front()
    }

    /// Wake a parked worker if any are sleeping. The `sleepers` fast path
    /// keeps the common push (everyone busy) lock-free.
    pub(crate) fn notify_work(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_lock.lock().unwrap();
            self.sleep_cond.notify_all();
        }
    }
}

impl WorkerCtx {
    pub(crate) fn pool(&self) -> &Arc<PoolState> {
        &self.state
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.state.n_threads
    }

    /// Find the next job: own deque (LIFO), then the injector, then steal
    /// round-robin from the other workers (FIFO from each).
    fn find_work(&self) -> Option<JobRef> {
        if let Some(job) = self.local.pop() {
            return Some(job);
        }
        if let Some(job) = self.state.pop_injected() {
            return Some(job);
        }
        let n = self.state.stealers.len();
        for k in 1..n {
            let victim = (self.index + k) % n;
            if let Some(job) = self.state.stealers[victim].steal() {
                return Some(job);
            }
        }
        None
    }

    /// Execute jobs until `latch` is set. Called while a `join` waits for a
    /// stolen branch: the worker keeps the pool busy instead of blocking.
    fn steal_until(&self, latch: &Latch) {
        let mut idle_spins = 0u32;
        while !latch.probe() {
            if let Some(job) = self.find_work() {
                unsafe { job.execute() };
                idle_spins = 0;
                continue;
            }
            idle_spins += 1;
            if idle_spins < 32 {
                std::hint::spin_loop();
            } else if idle_spins < 1024 {
                // Oversubscribed hosts (threads > cores) need the yield so
                // the thread actually running our stolen branch progresses.
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
                idle_spins = 1024;
            }
        }
    }
}

fn worker_main(state: Arc<PoolState>, index: usize, local: Worker<JobRef>) {
    let ctx = WorkerCtx {
        state: Arc::clone(&state),
        index,
        local,
    };
    CURRENT.with(|c| c.set(&ctx as *const WorkerCtx));
    loop {
        if let Some(job) = ctx.find_work() {
            unsafe { job.execute() };
            continue;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Park. The timeout is a safety net against lost wakeups; the
        // normal path is an explicit `notify_work` from a push.
        state.sleepers.fetch_add(1, Ordering::SeqCst);
        {
            let guard = state.sleep_lock.lock().unwrap();
            // Re-check under the lock so a notify between `find_work` and
            // here is not lost.
            if !state.shutdown.load(Ordering::SeqCst) {
                let _ = state
                    .sleep_cond
                    .wait_timeout(guard, Duration::from_millis(10))
                    .unwrap();
            }
        }
        state.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
    CURRENT.with(|c| c.set(std::ptr::null()));
}

/// A work-stealing thread pool.
///
/// The process-wide default pool is created lazily on first use with
/// [`FV_THREADS`](crate#configuration) workers; explicit pools serve tests
/// and tools that need a specific width (`Pool::new(8)`) regardless of the
/// environment.
pub struct Pool {
    state: Arc<PoolState>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawn a pool with `n_threads` workers (clamped to `1..=512`).
    pub fn new(n_threads: usize) -> Self {
        let n_threads = n_threads.clamp(1, MAX_THREADS);
        let mut workers = Vec::with_capacity(n_threads);
        let mut stealers = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let (worker, stealer) = deque::<JobRef>();
            workers.push(worker);
            stealers.push(stealer);
        }
        let state = Arc::new(PoolState {
            injector: Mutex::new(VecDeque::new()),
            stealers,
            n_threads,
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, local)| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("fv-runtime-{index}"))
                    .spawn(move || worker_main(state, index, local))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { state, handles }
    }

    /// Number of worker threads in this pool.
    pub fn num_threads(&self) -> usize {
        self.state.n_threads
    }

    /// Run `f` inside this pool and return its result.
    ///
    /// Every `join`/parallel-iterator call made (transitively) from `f`
    /// executes on this pool's workers. The calling thread blocks until `f`
    /// completes; a panic in `f` is resumed on the caller. Calling `install`
    /// from one of this pool's own workers runs `f` inline.
    pub fn install<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        if let Some(ctx) = current_ctx() {
            if Arc::ptr_eq(ctx.pool(), &self.state) {
                return f();
            }
        }
        run_blocking(&self.state, f)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.state.sleep_lock.lock().unwrap();
            self.state.sleep_cond.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Inject `f` into the pool and block the calling (non-worker) thread until
/// a worker has run it.
fn run_blocking<R, F>(state: &Arc<PoolState>, f: F) -> R
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let job = StackJob::new(f);
    // Safety: `job` lives on this stack and we block on its latch below, so
    // the ref cannot dangle; it is consumed exactly once by a worker.
    let job_ref = unsafe { job.as_job_ref() };
    state.inject(job_ref);
    job.latch.wait();
    match unsafe { job.take_result() } {
        Ok(value) => value,
        Err(payload) => panic::resume_unwind(payload),
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide default pool, created on first use.
pub(crate) fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(default_threads()))
}

/// Worker count for the default pool: `FV_THREADS` if set to a positive
/// integer, else the machine's available parallelism.
fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("FV_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
        eprintln!("fv-runtime: ignoring invalid FV_THREADS={raw:?} (want a positive integer)");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Number of worker threads `join` would fan out over right now: the
/// enclosing [`Pool::install`]'s pool if the current thread is a worker,
/// otherwise the default pool (created on demand).
pub fn current_num_threads() -> usize {
    match current_ctx() {
        Some(ctx) => ctx.num_threads(),
        None => global().num_threads(),
    }
}

/// Run `a` and `b`, potentially in parallel, and return both results.
///
/// The calling thread works on `a` while `b` sits in its deque for any idle
/// worker to steal; if nobody steals it, the caller runs `b` itself right
/// after `a` (so a 1-thread pool degrades to exactly sequential execution).
/// A panic in either closure propagates to the caller — after both branches
/// have settled, so no stack frame is abandoned while the other branch may
/// still reference it.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_ctx() {
        Some(ctx) => join_in_worker(ctx, a, b),
        None => {
            let pool = global();
            if pool.num_threads() <= 1 {
                // Sequential fast path: no reason to round-trip through a
                // one-worker pool.
                return (a(), b());
            }
            run_blocking(&pool.state, move || join(a, b))
        }
    }
}

fn join_in_worker<A, B, RA, RB>(ctx: &WorkerCtx, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    // Safety: this frame stays alive until `job_b`'s latch is set — we
    // either execute it inline below or `steal_until` its completion, and a
    // panic in `a` is held until then.
    let job_b_ref = unsafe { job_b.as_job_ref() };
    ctx.local.push(job_b_ref);
    ctx.state.notify_work();

    // Run `a` on this thread. Catch a panic rather than unwinding past
    // `job_b`, which another worker may be executing from our stack.
    let result_a = panic::catch_unwind(AssertUnwindSafe(a));

    // Settle `b`. LIFO discipline means that when `a` has returned, the top
    // of our deque is either `job_b` itself (nobody stole it — run inline)
    // or empty (it was stolen — keep stealing until its latch is set).
    // Nested joins inside `a` consume everything they push before
    // returning, so nothing else of ours can sit above `job_b`.
    match ctx.local.pop() {
        Some(job) if job.same_job(&job_b_ref) => unsafe { job.execute() },
        Some(other) => {
            // Defensive: not reachable under the LIFO discipline, but if a
            // foreign job ever lands here, run it and wait for ours.
            unsafe { other.execute() };
            ctx.steal_until(&job_b.latch);
        }
        None => ctx.steal_until(&job_b.latch),
    }

    let result_b = unsafe { job_b.take_result() };
    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => panic::resume_unwind(payload),
        (_, Err(payload)) => panic::resume_unwind(payload),
    }
}

/// Inject a fire-and-forget [`JobRef`]: onto the local deque when called
/// from a worker (cheap, stealable), else into the pool's injector.
pub(crate) fn spawn_job(state: &Arc<PoolState>, job: JobRef) {
    match current_ctx() {
        Some(ctx) if Arc::ptr_eq(ctx.pool(), state) => {
            ctx.local.push(job);
            ctx.state.notify_work();
        }
        _ => state.inject(job),
    }
}

/// Steal-while-waiting on a predicate for scope completion: workers keep
/// executing jobs; external threads get `None` back and must block instead.
pub(crate) fn worker_wait_while(pending: impl Fn() -> bool) -> bool {
    let Some(ctx) = current_ctx() else {
        return false;
    };
    let mut idle_spins = 0u32;
    while pending() {
        if let Some(job) = ctx.find_work() {
            unsafe { job.execute() };
            idle_spins = 0;
            continue;
        }
        idle_spins += 1;
        if idle_spins < 1024 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(50));
            idle_spins = 1024;
        }
    }
    true
}

/// The pool the current thread should submit new work to.
pub(crate) fn submit_pool() -> Arc<PoolState> {
    match current_ctx() {
        Some(ctx) => Arc::clone(ctx.pool()),
        None => Arc::clone(&global().state),
    }
}
