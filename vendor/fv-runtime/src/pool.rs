//! The work-stealing pool: worker threads, the global injector, `join`,
//! and the supervisor that heals workers whose run loop panics.

use crate::deque::{deque, Stealer, Worker};
use crate::job::{JobRef, StackJob};
use crate::latch::Latch;
use crate::telemetry;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on worker count — a typo in `FV_THREADS` should not try to
/// spawn a million threads.
const MAX_THREADS: usize = 512;

// Scheduler telemetry (inert unless FV_TELEMETRY=1). `pool.jobs` counts
// every dequeue (local pop, injector pop, or steal — each dequeued job is
// executed exactly once); steals and injector pops are also broken out so
// a snapshot shows how much work actually migrated between workers.
static TM_JOBS: telemetry::Counter = telemetry::Counter::new("pool.jobs");
static TM_STEALS: telemetry::Counter = telemetry::Counter::new("pool.steals");
static TM_INJECTOR_POPS: telemetry::Counter = telemetry::Counter::new("pool.injector_pops");
static TM_PARKS: telemetry::Counter = telemetry::Counter::new("pool.parks");
static TM_WORKERS: telemetry::Gauge = telemetry::Gauge::new("pool.workers");

/// Supervisor counters, shared by all of a pool's workers.
#[derive(Default)]
struct SupervisionAtomics {
    panics_caught: AtomicU64,
    worker_restarts: AtomicU64,
}

/// Snapshot of a pool's supervision counters.
///
/// Panics raised *inside* a job are part of the `join`/`scope` contract
/// (captured and resumed on the waiter) and do not show up here; these
/// count panics that escaped a worker's own run loop — the failure mode
/// that used to take the worker thread down for good.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionStats {
    /// Panics that unwound out of a worker's run loop and were caught by
    /// the supervisor instead of killing the thread.
    pub panics_caught: u64,
    /// Worker run loops restarted after such a panic (the pool healed).
    pub worker_restarts: u64,
}

/// Shared state of one pool, reference-counted between the owning
/// [`Pool`] handle and its worker threads.
pub(crate) struct PoolState {
    /// Global FIFO queue for jobs arriving from outside the pool.
    injector: Mutex<VecDeque<JobRef>>,
    /// One stealer per worker deque, indexed by worker.
    stealers: Vec<Stealer<JobRef>>,
    n_threads: usize,
    /// Number of workers currently parked (or about to park) on
    /// `sleep_cond`. Incremented *before* the final pre-park work check —
    /// see `worker_loop` for the lost-wakeup protocol.
    sleepers: AtomicUsize,
    /// Wake epoch: bumped under the lock by every `notify_work` that saw
    /// sleepers. A parked worker waits for the epoch to move past the
    /// value it read before its last work check, so a notification can
    /// never slip into the gap between "queue looked empty" and "parked".
    sleep_lock: Mutex<u64>,
    sleep_cond: Condvar,
    shutdown: AtomicBool,
    supervision: SupervisionAtomics,
}

/// Per-worker context, stack-allocated in `worker_main` and published to the
/// thread-local `CURRENT` pointer for the lifetime of the worker.
pub(crate) struct WorkerCtx {
    state: Arc<PoolState>,
    index: usize,
    local: Worker<JobRef>,
}

thread_local! {
    /// Pointer to the current thread's [`WorkerCtx`], null off-pool.
    static CURRENT: Cell<*const WorkerCtx> = const { Cell::new(std::ptr::null()) };
}

/// The current worker context, if this thread is a pool worker.
///
/// Safety of the deref: the pointee lives on `worker_main`'s stack and the
/// pointer is cleared before that frame exits, so a non-null pointer is
/// always valid on this thread.
pub(crate) fn current_ctx() -> Option<&'static WorkerCtx> {
    CURRENT.with(|c| {
        let ptr = c.get();
        if ptr.is_null() {
            None
        } else {
            Some(unsafe { &*ptr })
        }
    })
}

impl PoolState {
    fn inject(&self, job: JobRef) {
        self.injector.lock().unwrap().push_back(job);
        self.notify_work();
    }

    fn pop_injected(&self) -> Option<JobRef> {
        self.injector.lock().unwrap().pop_front()
    }

    /// Wake parked workers if any are sleeping. The `sleepers` fast path
    /// keeps the common push (everyone busy) lock-free.
    ///
    /// Ordering argument for the fast path: a parking worker increments
    /// `sleepers` (SeqCst) *before* its final `find_work` check, and we
    /// push the job *before* loading `sleepers` (both the queue push and
    /// this load are SeqCst-ordered). So if we read `sleepers == 0`, the
    /// worker's increment had not happened yet, which means its final
    /// work check is still ahead of it — and that check will see our job.
    /// If we read `sleepers > 0`, we bump the wake epoch under the lock;
    /// any worker already waiting (or about to wait against an older
    /// epoch) observes the bump and wakes.
    pub(crate) fn notify_work(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let mut epoch = self.sleep_lock.lock().unwrap();
            *epoch = epoch.wrapping_add(1);
            self.sleep_cond.notify_all();
        }
    }

    /// Bump the wake epoch unconditionally (shutdown path).
    fn notify_all_unconditional(&self) {
        let mut epoch = self.sleep_lock.lock().unwrap();
        *epoch = epoch.wrapping_add(1);
        self.sleep_cond.notify_all();
    }
}

impl WorkerCtx {
    pub(crate) fn pool(&self) -> &Arc<PoolState> {
        &self.state
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.state.n_threads
    }

    /// Find the next job: own deque (LIFO), then the injector, then steal
    /// round-robin from the other workers (FIFO from each).
    fn find_work(&self) -> Option<JobRef> {
        if let Some(job) = self.local.pop() {
            TM_JOBS.incr();
            return Some(job);
        }
        if let Some(job) = self.state.pop_injected() {
            TM_JOBS.incr();
            TM_INJECTOR_POPS.incr();
            return Some(job);
        }
        let n = self.state.stealers.len();
        for k in 1..n {
            let victim = (self.index + k) % n;
            if let Some(job) = self.state.stealers[victim].steal() {
                TM_JOBS.incr();
                TM_STEALS.incr();
                return Some(job);
            }
        }
        None
    }

    /// Execute jobs until `latch` is set. Called while a `join` waits for a
    /// stolen branch: the worker keeps the pool busy instead of blocking.
    fn steal_until(&self, latch: &Latch) {
        let mut idle_spins = 0u32;
        while !latch.probe() {
            if let Some(job) = self.find_work() {
                unsafe { job.execute() };
                idle_spins = 0;
                continue;
            }
            idle_spins += 1;
            if idle_spins < 32 {
                std::hint::spin_loop();
            } else if idle_spins < 1024 {
                // Oversubscribed hosts (threads > cores) need the yield so
                // the thread actually running our stolen branch progresses.
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
                idle_spins = 1024;
            }
        }
    }
}

/// Worker entry point: a supervisor wrapped around the run loop.
///
/// A panic that unwinds out of the run loop (not out of a job — jobs catch
/// their own panics into their latch) would otherwise silently kill the
/// thread and shrink the pool until a later `join` deadlocks waiting for a
/// steal that can never happen. The supervisor catches it, counts it, and
/// restarts the loop on the same thread. A job dequeued but not yet started
/// is parked in `pending` so the restart executes it first — its latch is
/// never stranded.
fn worker_main(state: Arc<PoolState>, index: usize, local: Worker<JobRef>) {
    let ctx = WorkerCtx {
        state: Arc::clone(&state),
        index,
        local,
    };
    CURRENT.with(|c| c.set(&ctx as *const WorkerCtx));
    let pending: Cell<Option<JobRef>> = Cell::new(None);
    loop {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(job) = pending.take() {
                unsafe { job.execute() };
            }
            worker_loop(&ctx, &pending)
        }));
        match outcome {
            Ok(()) => break, // clean shutdown
            Err(_) => {
                state.supervision.panics_caught.fetch_add(1, Ordering::Relaxed);
                state
                    .supervision
                    .worker_restarts
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    CURRENT.with(|c| c.set(std::ptr::null()));
}

/// The worker run loop: execute, steal, or park until shutdown.
///
/// Each job is staged through `pending` before execution so that a panic
/// raised *between* dequeue and execution (e.g. an injected fault at the
/// `pool.worker` chaos site) leaves the job recoverable by the supervisor.
fn worker_loop(ctx: &WorkerCtx, pending: &Cell<Option<JobRef>>) {
    let state = &ctx.state;
    let execute_supervised = |job: JobRef| {
        pending.set(Some(job));
        crate::chaos::point("pool.worker");
        let job = pending.take().expect("job staged above");
        unsafe { job.execute() };
    };
    loop {
        if let Some(job) = ctx.find_work() {
            execute_supervised(job);
            continue;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Park protocol. Order matters:
        //   1. advertise intent to sleep (`sleepers += 1`, SeqCst);
        //   2. read the wake epoch;
        //   3. re-check for work and shutdown;
        //   4. wait while the epoch is unchanged.
        // A push that lands after step 3 sees `sleepers > 0` (step 1
        // happened first in SeqCst order) and bumps the epoch, so step 4
        // returns immediately instead of losing the wakeup. A push that
        // lands before step 3 is found by the re-check. No timeout needed.
        state.sleepers.fetch_add(1, Ordering::SeqCst);
        let epoch = *state.sleep_lock.lock().unwrap();
        if let Some(job) = ctx.find_work() {
            state.sleepers.fetch_sub(1, Ordering::SeqCst);
            execute_supervised(job);
            continue;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            state.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        {
            TM_PARKS.incr();
            let mut guard = state.sleep_lock.lock().unwrap();
            while *guard == epoch && !state.shutdown.load(Ordering::SeqCst) {
                guard = state.sleep_cond.wait(guard).unwrap();
            }
        }
        state.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A work-stealing thread pool.
///
/// The process-wide default pool is created lazily on first use with
/// [`FV_THREADS`](crate#configuration) workers; explicit pools serve tests
/// and tools that need a specific width (`Pool::new(8)`) regardless of the
/// environment.
pub struct Pool {
    state: Arc<PoolState>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawn a pool with `n_threads` workers (clamped to `1..=512`).
    pub fn new(n_threads: usize) -> Self {
        let n_threads = n_threads.clamp(1, MAX_THREADS);
        let mut workers = Vec::with_capacity(n_threads);
        let mut stealers = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let (worker, stealer) = deque::<JobRef>();
            workers.push(worker);
            stealers.push(stealer);
        }
        let state = Arc::new(PoolState {
            injector: Mutex::new(VecDeque::new()),
            stealers,
            n_threads,
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(0),
            sleep_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            supervision: SupervisionAtomics::default(),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, local)| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("fv-runtime-{index}"))
                    .spawn(move || worker_main(state, index, local))
                    .expect("spawn pool worker")
            })
            .collect();
        TM_WORKERS.set(n_threads as u64);
        Self { state, handles }
    }

    /// Number of worker threads in this pool.
    pub fn num_threads(&self) -> usize {
        self.state.n_threads
    }

    /// Snapshot of this pool's supervision counters.
    pub fn supervision(&self) -> SupervisionStats {
        SupervisionStats {
            panics_caught: self.state.supervision.panics_caught.load(Ordering::Relaxed),
            worker_restarts: self
                .state
                .supervision
                .worker_restarts
                .load(Ordering::Relaxed),
        }
    }

    /// Run `f` inside this pool and return its result.
    ///
    /// Every `join`/parallel-iterator call made (transitively) from `f`
    /// executes on this pool's workers. The calling thread blocks until `f`
    /// completes; a panic in `f` is resumed on the caller. Calling `install`
    /// from one of this pool's own workers runs `f` inline.
    pub fn install<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        if let Some(ctx) = current_ctx() {
            if Arc::ptr_eq(ctx.pool(), &self.state) {
                return f();
            }
        }
        run_blocking(&self.state, f)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.notify_all_unconditional();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Inject `f` into the pool and block the calling (non-worker) thread until
/// a worker has run it.
fn run_blocking<R, F>(state: &Arc<PoolState>, f: F) -> R
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let job = StackJob::new(f);
    // Safety: `job` lives on this stack and we block on its latch below, so
    // the ref cannot dangle; it is consumed exactly once by a worker.
    let job_ref = unsafe { job.as_job_ref() };
    state.inject(job_ref);
    job.latch.wait();
    match unsafe { job.take_result() } {
        Ok(value) => value,
        Err(payload) => panic::resume_unwind(payload),
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide default pool, created on first use.
pub(crate) fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(default_threads()))
}

/// Worker count for the default pool: `FV_THREADS` if set to a positive
/// integer, else the machine's available parallelism.
fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("FV_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
        eprintln!("fv-runtime: ignoring invalid FV_THREADS={raw:?} (want a positive integer)");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Number of worker threads `join` would fan out over right now: the
/// enclosing [`Pool::install`]'s pool if the current thread is a worker,
/// otherwise the default pool (created on demand).
pub fn current_num_threads() -> usize {
    match current_ctx() {
        Some(ctx) => ctx.num_threads(),
        None => global().num_threads(),
    }
}

/// Supervision counters of the pool the current thread would submit to:
/// the enclosing [`Pool::install`]'s pool on a worker, else the default
/// pool (created on demand).
pub fn supervision_stats() -> SupervisionStats {
    let state = submit_pool();
    SupervisionStats {
        panics_caught: state.supervision.panics_caught.load(Ordering::Relaxed),
        worker_restarts: state.supervision.worker_restarts.load(Ordering::Relaxed),
    }
}

/// Run `a` and `b`, potentially in parallel, and return both results.
///
/// The calling thread works on `a` while `b` sits in its deque for any idle
/// worker to steal; if nobody steals it, the caller runs `b` itself right
/// after `a` (so a 1-thread pool degrades to exactly sequential execution).
/// A panic in either closure propagates to the caller — after both branches
/// have settled, so no stack frame is abandoned while the other branch may
/// still reference it.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_ctx() {
        Some(ctx) => join_in_worker(ctx, a, b),
        None => {
            let pool = global();
            if pool.num_threads() <= 1 {
                // Sequential fast path: no reason to round-trip through a
                // one-worker pool.
                return (a(), b());
            }
            run_blocking(&pool.state, move || join(a, b))
        }
    }
}

fn join_in_worker<A, B, RA, RB>(ctx: &WorkerCtx, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    // Safety: this frame stays alive until `job_b`'s latch is set — we
    // either execute it inline below or `steal_until` its completion, and a
    // panic in `a` is held until then.
    let job_b_ref = unsafe { job_b.as_job_ref() };
    ctx.local.push(job_b_ref);
    ctx.state.notify_work();

    // Run `a` on this thread. Catch a panic rather than unwinding past
    // `job_b`, which another worker may be executing from our stack.
    let result_a = panic::catch_unwind(AssertUnwindSafe(a));

    // Settle `b`. LIFO discipline means that when `a` has returned, the top
    // of our deque is either `job_b` itself (nobody stole it — run inline)
    // or empty (it was stolen — keep stealing until its latch is set).
    // Nested joins inside `a` consume everything they push before
    // returning, so nothing else of ours can sit above `job_b`.
    match ctx.local.pop() {
        Some(job) if job.same_job(&job_b_ref) => unsafe { job.execute() },
        Some(other) => {
            // Defensive: not reachable under the LIFO discipline, but if a
            // foreign job ever lands here, run it and wait for ours.
            unsafe { other.execute() };
            ctx.steal_until(&job_b.latch);
        }
        None => ctx.steal_until(&job_b.latch),
    }

    let result_b = unsafe { job_b.take_result() };
    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => panic::resume_unwind(payload),
        (_, Err(payload)) => panic::resume_unwind(payload),
    }
}

/// Inject a fire-and-forget [`JobRef`]: onto the local deque when called
/// from a worker (cheap, stealable), else into the pool's injector.
pub(crate) fn spawn_job(state: &Arc<PoolState>, job: JobRef) {
    match current_ctx() {
        Some(ctx) if Arc::ptr_eq(ctx.pool(), state) => {
            ctx.local.push(job);
            ctx.state.notify_work();
        }
        _ => state.inject(job),
    }
}

/// Steal-while-waiting on a predicate for scope completion: workers keep
/// executing jobs; external threads get `None` back and must block instead.
pub(crate) fn worker_wait_while(pending: impl Fn() -> bool) -> bool {
    let Some(ctx) = current_ctx() else {
        return false;
    };
    let mut idle_spins = 0u32;
    while pending() {
        if let Some(job) = ctx.find_work() {
            unsafe { job.execute() };
            idle_spins = 0;
            continue;
        }
        idle_spins += 1;
        if idle_spins < 1024 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(50));
            idle_spins = 1024;
        }
    }
    true
}

/// The pool the current thread should submit new work to.
pub(crate) fn submit_pool() -> Arc<PoolState> {
    match current_ctx() {
        Some(ctx) => Arc::clone(ctx.pool()),
        None => Arc::clone(&global().state),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{self, FaultPlan};
    use std::time::Instant;

    /// Regression for the lost-wakeup window the old 10 ms `wait_timeout`
    /// papered over: park the whole pool, then install work and require it
    /// to complete promptly. With no timeout net left in the parking path,
    /// a lost wakeup would hang here forever (the harness's test timeout is
    /// the enforcement); the elapsed bound catches gross sluggishness.
    #[test]
    fn parked_workers_wake_on_install() {
        let pool = Pool::new(4);
        for round in 0..50 {
            // Give the workers a moment to drain and park.
            if round % 10 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            let start = Instant::now();
            let got = pool.install(|| round * 2);
            assert_eq!(got, round * 2);
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "wakeup took {:?} on round {round}",
                start.elapsed()
            );
        }
    }

    /// Hammer the park/notify protocol from many external threads at once:
    /// any ordering hole between "queue looked empty" and "parked" shows up
    /// as a hang or a lost result.
    #[test]
    fn concurrent_installs_never_lose_a_wakeup() {
        let pool = Pool::new(2);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..200u64 {
                        let got = pool.install(|| t * 1000 + i);
                        assert_eq!(got, t * 1000 + i);
                    }
                });
            }
        });
    }

    #[test]
    fn supervisor_heals_worker_panics_and_stays_deterministic() {
        chaos::silence_chaos_panics();
        let _l = chaos::INSTALL_LOCK.lock().unwrap();

        let reduce_in = |pool: &Pool| {
            pool.install(|| {
                crate::par_reduce(
                    10_000,
                    128,
                    &|start, end| (start..end).map(|i| (i as f32).sqrt() * 1e-3).sum::<f32>(),
                    &|a, b| a + b,
                )
                .unwrap()
            })
        };

        let pool = Pool::new(4);
        let healthy = reduce_in(&pool);
        {
            let _guard = chaos::install(FaultPlan::new(3).panic_at("pool.worker", 0.2));
            // Every dequeue may panic before executing its job; the
            // supervisor must restart the worker, run the staged job, and
            // keep the reduction's latches settling.
            for _ in 0..4 {
                assert_eq!(reduce_in(&pool).to_bits(), healthy.to_bits());
            }
        }
        let stats = pool.supervision();
        assert!(
            stats.panics_caught > 0,
            "a 20% per-dequeue panic rate over ~4 runs must fire at least once"
        );
        assert_eq!(stats.panics_caught, stats.worker_restarts);

        // After healing, the pool still matches a single-thread pool bit
        // for bit — the determinism contract survived the worker deaths.
        assert_eq!(reduce_in(&pool).to_bits(), reduce_in(&Pool::new(1)).to_bits());
    }
}
