//! Min-work dispatch policy: decide, per kernel call, whether fanning out
//! to the pool is worth the scheduling overhead.
//!
//! PR 2 made every hot path parallel — and made small problems *slower*,
//! because deterministic chunking always cuts a loop into
//! [`crate::DETERMINISTIC_CHUNKS`] pieces no matter how little work each
//! piece carries. A 256×64 bias add became 64 pool dispatches of ~256
//! additions each. The fix is a single global threshold: a kernel first
//! estimates its work in scalar operations (multiply-accumulates for
//! matmuls, elements for elementwise passes) and runs sequentially below
//! [`min_par_work`]. Crucially this only ever changes *where* the fixed
//! chunk geometry executes, never the geometry itself, so the bitwise
//! determinism contract (DESIGN.md §9) is untouched: a kernel computes the
//! same partials in the same order whether they run inline or on workers.
//!
//! Every decision is recorded on a per-op [`OpCounter`] so benchmarks can
//! report which ops fell back to sequential dispatch
//! ([`dispatch_stats`]). The threshold is tunable with `FV_PAR_MIN_WORK`
//! (scalar ops; read once, at first use).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default minimum work (in scalar operations) before a kernel fans out to
/// the pool. Around one mebi-op the pool's dispatch cost (~tens of
/// microseconds across 64 chunks) drops well under the arithmetic saved.
pub const DEFAULT_MIN_PAR_WORK: usize = 1 << 20;

/// Per-operation dispatch counters. Declare one `static` per kernel:
///
/// ```
/// use fv_runtime::granularity::{go_parallel, OpCounter};
/// static OP_MATMUL: OpCounter = OpCounter::new("linalg.matmul");
/// let work = 8 * 8 * 8; // rows * k * cols
/// if go_parallel(&OP_MATMUL, work) {
///     // parallel drive of the fixed chunk geometry
/// } else {
///     // same geometry, executed inline
/// }
/// ```
#[derive(Debug)]
pub struct OpCounter {
    name: &'static str,
    seq: AtomicU64,
    par: AtomicU64,
    registered: AtomicBool,
}

impl OpCounter {
    /// A new counter, usable in `static` position.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            seq: AtomicU64::new(0),
            par: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The operation name this counter reports under.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

static REGISTRY: Mutex<Vec<&'static OpCounter>> = Mutex::new(Vec::new());

/// The active min-work threshold (scalar ops). `FV_PAR_MIN_WORK` overrides
/// [`DEFAULT_MIN_PAR_WORK`]; read once, at first use.
pub fn min_par_work() -> usize {
    static THRESHOLD: OnceLock<usize> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("FV_PAR_MIN_WORK")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_MIN_PAR_WORK)
    })
}

/// Decide whether an operation with `work` scalar ops should fan out to
/// the pool, recording the decision on `counter`.
pub fn go_parallel(counter: &'static OpCounter, work: usize) -> bool {
    if !counter.registered.swap(true, Ordering::Relaxed) {
        REGISTRY
            .lock()
            .expect("dispatch registry poisoned")
            .push(counter);
    }
    if work >= min_par_work() {
        counter.par.fetch_add(1, Ordering::Relaxed);
        true
    } else {
        counter.seq.fetch_add(1, Ordering::Relaxed);
        false
    }
}

/// Row-chunk size for kernels whose indivisible work unit is a fixed
/// multi-row *panel* rather than a single row — the packed GEMM's MR-row
/// micro-panels being the motivating case. The panel count is chunked with
/// the same deterministic geometry as [`crate::chunk_size`] (a pure
/// function of the panel count in deterministic mode), then converted back
/// to rows, so every chunk boundary lands on a panel boundary and no
/// micro-tile is ever split across workers. The final chunk may be ragged
/// (fewer than `panel` rows) exactly as the final panel is.
///
/// Returns `rows.max(1)` when `rows` fits in one panel, so callers can
/// always use the result as a `chunks_mut` size.
pub fn panel_rows(rows: usize, panel: usize) -> usize {
    let panel = panel.max(1);
    let panels = rows.div_ceil(panel).max(1);
    crate::chunk_size(panels, 1, usize::MAX) * panel
}

/// A snapshot of one op's dispatch decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchStats {
    /// Kernel name (e.g. `linalg.matmul`).
    pub name: &'static str,
    /// Calls executed inline because they fell under the threshold.
    pub seq: u64,
    /// Calls fanned out to the pool.
    pub par: u64,
}

/// Snapshot every registered op's counters, sorted by name.
pub fn dispatch_stats() -> Vec<DispatchStats> {
    let registry = REGISTRY.lock().expect("dispatch registry poisoned");
    let mut stats: Vec<DispatchStats> = registry
        .iter()
        .map(|c| DispatchStats {
            name: c.name,
            seq: c.seq.load(Ordering::Relaxed),
            par: c.par.load(Ordering::Relaxed),
        })
        .collect();
    stats.sort_by_key(|s| s.name);
    stats
}

/// Zero every registered op's counters (benchmarks call this between
/// configurations).
pub fn reset_dispatch_stats() {
    let registry = REGISTRY.lock().expect("dispatch registry poisoned");
    for c in registry.iter() {
        c.seq.store(0, Ordering::Relaxed);
        c.par.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static OP_TEST: OpCounter = OpCounter::new("test.granularity_op");

    #[test]
    fn panel_rows_is_panel_aligned_and_deterministic() {
        for rows in [0usize, 1, 5, 6, 7, 64, 100, 389, 4096] {
            for panel in [1usize, 6, 8, 16] {
                let chunk = panel_rows(rows, panel);
                assert!(chunk >= 1);
                assert_eq!(chunk % panel, 0, "chunk {chunk} not aligned to panel {panel}");
                // Same inputs, same geometry: a pure function of the shape.
                assert_eq!(chunk, panel_rows(rows, panel));
            }
        }
        // Degenerate panel sizes are clamped, never divide-by-zero.
        assert_eq!(panel_rows(10, 0), panel_rows(10, 1));
    }

    #[test]
    fn threshold_splits_decisions_and_counts_them() {
        let t = min_par_work();
        assert!(t >= 1);
        assert!(!go_parallel(&OP_TEST, 0));
        assert!(go_parallel(&OP_TEST, t));
        assert!(go_parallel(&OP_TEST, t.saturating_add(1)));
        let stats = dispatch_stats();
        let mine = stats
            .iter()
            .find(|s| s.name == "test.granularity_op")
            .expect("counter registered on first use");
        assert!(mine.seq >= 1);
        assert!(mine.par >= 2);
    }
}
