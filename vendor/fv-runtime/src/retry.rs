//! Retry with exponential backoff for transient I/O failures.
//!
//! Checkpoint and field I/O in an in-situ session talk to shared scratch
//! filesystems that fail *transiently* — a metadata server hiccup, a full
//! quota that a reaper clears seconds later. One failed save must not trip
//! the session's circuit breaker when simply trying again would succeed.
//! The policy here is deliberately deterministic (no randomized jitter):
//! the workspace's reproducibility contract extends to its failure
//! handling, and a single in-situ session has no thundering-herd problem.

use std::time::Duration;

/// An exponential backoff policy: `attempts` tries, sleeping
/// `base * factor^i` (capped at `max`) between try `i` and try `i + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Total attempts (including the first); clamped to at least 1.
    pub attempts: usize,
    /// Sleep before the first retry.
    pub base: Duration,
    /// Multiplier applied per retry.
    pub factor: u32,
    /// Ceiling on any single sleep.
    pub max: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Self {
            attempts: 3,
            base: Duration::from_millis(5),
            factor: 2,
            max: Duration::from_millis(200),
        }
    }
}

impl Backoff {
    /// A policy that never retries (one attempt, no sleeps).
    pub fn none() -> Self {
        Self {
            attempts: 1,
            ..Self::default()
        }
    }

    /// The sleep after failed attempt `attempt` (0-based).
    pub fn delay_for(&self, attempt: usize) -> Duration {
        let factor = self.factor.max(1).saturating_pow(attempt.min(16) as u32);
        (self.base * factor).min(self.max)
    }
}

/// A successful [`retry`] outcome: the value plus how many retries it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryOutcome<T> {
    /// The operation's result.
    pub value: T,
    /// Failed attempts before the success (0 = first try succeeded).
    pub retries: usize,
}

/// Run `op` until it succeeds or the policy's attempts are exhausted.
///
/// `op` receives the 0-based attempt number. On exhaustion the *last*
/// error is returned; intermediate errors are dropped (they were, by
/// definition, survivable).
pub fn retry<T, E>(
    policy: &Backoff,
    mut op: impl FnMut(usize) -> Result<T, E>,
) -> Result<RetryOutcome<T>, E> {
    let attempts = policy.attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        match op(attempt) {
            Ok(value) => {
                return Ok(RetryOutcome {
                    value,
                    retries: attempt,
                })
            }
            Err(e) => {
                last_err = Some(e);
                if attempt + 1 < attempts {
                    let delay = policy.delay_for(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_needs_no_retries() {
        let out = retry(&Backoff::default(), |_| Ok::<_, ()>(42)).unwrap();
        assert_eq!(out.value, 42);
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn recovers_after_transient_failures() {
        let policy = Backoff {
            attempts: 4,
            base: Duration::ZERO,
            ..Backoff::default()
        };
        let out = retry(&policy, |attempt| {
            if attempt < 2 {
                Err("transient")
            } else {
                Ok(attempt)
            }
        })
        .unwrap();
        assert_eq!(out.value, 2);
        assert_eq!(out.retries, 2);
    }

    #[test]
    fn exhaustion_returns_last_error() {
        let policy = Backoff {
            attempts: 3,
            base: Duration::ZERO,
            ..Backoff::default()
        };
        let mut calls = 0;
        let err = retry(&policy, |attempt| -> Result<(), usize> {
            calls += 1;
            Err(attempt)
        })
        .unwrap_err();
        assert_eq!(calls, 3);
        assert_eq!(err, 2, "last attempt's error surfaces");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = Backoff {
            attempts: 5,
            base: Duration::from_millis(10),
            factor: 2,
            max: Duration::from_millis(25),
        };
        assert_eq!(policy.delay_for(0), Duration::from_millis(10));
        assert_eq!(policy.delay_for(1), Duration::from_millis(20));
        assert_eq!(policy.delay_for(2), Duration::from_millis(25), "capped");
        assert_eq!(Backoff::none().attempts, 1);
    }
}
