//! Cooperative cancellation tokens and wall-clock deadlines.
//!
//! In-situ reconstruction shares a node with the running simulation, so no
//! step may hold the CPU past its budget: a hot loop that cannot be asked
//! to stop is a hang waiting to happen. The primitives here are *advisory*
//! — compute code polls them at natural checkpoint boundaries (a training
//! minibatch, a prediction batch, a kNN chunk) and winds down cleanly with
//! a partial result. Nothing is ever interrupted mid-kernel, which keeps
//! the determinism contract intact: the work that *does* run is bitwise
//! identical to an unbounded run's prefix.
//!
//! * [`CancelToken`] — a clonable flag an external owner can trip;
//! * [`Deadline`] — a fixed instant after which work should stop;
//! * [`ExecCtx`] — the pair of them, threaded through `fv-nn` training,
//!   `fv-core` reconstruction and `fv-spatial` batched kNN.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A clonable cancellation flag shared between an owner and workers.
///
/// Cloning is cheap (one `Arc` bump); every clone observes the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A wall-clock budget: work should stop once the instant has passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self {
            at: Instant::now() + budget,
        }
    }

    /// A deadline at an explicit instant.
    pub fn at(at: Instant) -> Self {
        Self { at }
    }

    /// Whether the deadline has passed.
    #[inline]
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Why a cooperative loop stopped before finishing its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The owner tripped the [`CancelToken`].
    Cancelled,
    /// The [`Deadline`] passed.
    DeadlineExceeded,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// The cancellation context threaded through cooperative hot loops.
///
/// The default context is unbounded (no token, no deadline) and every
/// check is a no-op branch, so `fit(..)`-style wrappers can always call
/// the `_ctx` variant internally.
#[derive(Debug, Clone, Default)]
pub struct ExecCtx {
    token: Option<CancelToken>,
    deadline: Option<Deadline>,
}

impl ExecCtx {
    /// A context with neither token nor deadline: never stops.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Attach a cancellation token.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Attach a deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The attached token, if any.
    pub fn token(&self) -> Option<&CancelToken> {
        self.token.as_ref()
    }

    /// The attached deadline, if any.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// Why the caller should stop now, if it should. Cancellation wins
    /// over an expired deadline when both hold (it is the deliberate
    /// signal; the deadline is the safety net).
    #[inline]
    pub fn stop_reason(&self) -> Option<StopReason> {
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(deadline) = &self.deadline {
            if deadline.expired() {
                return Some(StopReason::DeadlineExceeded);
            }
        }
        None
    }

    /// Shorthand for `self.stop_reason().is_some()`.
    #[inline]
    pub fn should_stop(&self) -> bool {
        self.stop_reason().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_trips_every_clone() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn deadline_expires() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3000));
        let past = Deadline::after(Duration::ZERO);
        assert!(past.expired());
        assert_eq!(past.remaining(), Duration::ZERO);
    }

    #[test]
    fn ctx_reports_reasons_with_cancel_priority() {
        assert_eq!(ExecCtx::unbounded().stop_reason(), None);
        let t = CancelToken::new();
        let ctx = ExecCtx::unbounded()
            .with_token(t.clone())
            .with_deadline(Deadline::after(Duration::ZERO));
        assert_eq!(ctx.stop_reason(), Some(StopReason::DeadlineExceeded));
        t.cancel();
        assert_eq!(ctx.stop_reason(), Some(StopReason::Cancelled));
        assert!(ctx.should_stop());
    }
}
