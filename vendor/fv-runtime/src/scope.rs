//! Structured fork/join over non-`'static` borrows: [`scope`] and
//! [`Scope::spawn`].

use crate::job::HeapJob;
use crate::latch::CountLatch;
use crate::pool::{spawn_job, submit_pool, worker_wait_while, PoolState};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// A scope in which tasks borrowing the caller's stack may be spawned.
///
/// All spawned tasks complete before [`scope`] returns, which is what makes
/// the borrows sound. The first panic from any task (or from the scope
/// closure itself) is resumed on the caller once everything has settled.
pub struct Scope<'scope> {
    pool: Arc<PoolState>,
    pending: CountLatch,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Invariant lifetime marker: ties spawned closures to this scope.
    marker: PhantomData<&'scope mut &'scope ()>,
}

/// Create a scope, run `f` inside it, then wait for every spawned task.
///
/// ```
/// let mut counts = vec![0u32; 4];
/// fv_runtime::scope(|s| {
///     for c in counts.iter_mut() {
///         s.spawn(move || *c += 1);
///     }
/// });
/// assert_eq!(counts, vec![1, 1, 1, 1]);
/// ```
pub fn scope<'scope, R>(f: impl FnOnce(&Scope<'scope>) -> R) -> R {
    let s = Scope {
        pool: submit_pool(),
        pending: CountLatch::new(),
        panic: Mutex::new(None),
        marker: PhantomData,
    };
    // Catch a panic from the scope body: spawned tasks still reference this
    // frame and must finish before we unwind.
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    // Wait for stragglers — stealing if we are a worker, blocking otherwise.
    if !worker_wait_while(|| s.pending.is_pending()) {
        s.pending.wait();
    }
    if let Some(payload) = s.panic.lock().unwrap().take() {
        panic::resume_unwind(payload);
    }
    match result {
        Ok(value) => value,
        Err(payload) => panic::resume_unwind(payload),
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn `f` onto the pool. It may borrow anything that outlives the
    /// scope; it runs at the latest while [`scope`] waits before returning.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'scope) {
        self.pending.increment();
        let scope_ptr = ScopePtr((self as *const Scope<'scope>).cast::<Scope<'static>>());
        // Erase the scope lifetime: sound because `scope` blocks until
        // `pending` drains, keeping both the closure's borrows and the
        // `Scope` itself alive for as long as the job can run.
        let func: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        let func: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(func) };
        let job = HeapJob::new(move || {
            // Method call (not field access) so edition-2021 disjoint capture
            // moves the whole Send wrapper, not the raw pointer field.
            let scope = unsafe { &*scope_ptr.get() };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(func)) {
                let mut slot = scope.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            // Last touch of `scope`: after this decrement the waiter may
            // return and drop it.
            scope.pending.decrement();
        });
        spawn_job(&self.pool, job.into_job_ref());
    }
}

/// Send-able wrapper for the scope pointer smuggled into heap jobs.
struct ScopePtr(*const Scope<'static>);

impl ScopePtr {
    fn get(&self) -> *const Scope<'static> {
        self.0
    }
}
// Safety: the pointee is kept alive by `scope`'s wait, and all shared state
// behind it is Sync (CountLatch, Mutex).
unsafe impl Send for ScopePtr {}
