//! Zero-dependency structured observability: named sites, atomic
//! counters/gauges, and span timings with log2 latency histograms.
//!
//! The layer is the runtime's answer to "where did the time go?" without
//! dragging in `tracing` or `metrics` crates: every instrument is a
//! `static` declared at its use site, self-registering into a process-wide
//! registry on first touch (the same idiom as [`crate::granularity`]'s
//! `OpCounter`). Recording is three relaxed atomic ops on the hot path and
//! **nothing at all when disabled** — every entry point first checks the
//! `FV_TELEMETRY` flag (one relaxed load, branch-predicted off), so the
//! zero-allocation guarantees of the workspace layer hold verbatim with
//! telemetry compiled in.
//!
//! Determinism: instruments only read the monotonic clock and bump
//! atomics. They never influence chunk geometry, accumulation order, or
//! any other computed value, so results are bitwise-identical with
//! telemetry on or off. This is load-bearing for the bench's cross-width
//! bitwise checks and is asserted by `scripts/ci.sh`.
//!
//! # Vocabulary
//!
//! * [`Site`] — a named code region timed by [`Site::span`] (an RAII
//!   guard) or fed pre-measured durations via [`Site::record_duration`].
//!   Each site keeps count / total / min / max nanoseconds plus a 32-way
//!   log2 histogram. Sites may name a `parent`, giving the snapshot a
//!   static hierarchy (e.g. `train.step` → `train.step.forward`).
//! * [`Counter`] — a monotonically increasing event count.
//! * [`Gauge`] — a last-value-plus-high-watermark measurement.
//!
//! # Export
//!
//! [`snapshot`] returns every registered instrument sorted by name;
//! [`Snapshot::to_json`] renders it machine-readable (merged into
//! `BENCH_runtime.json` by the runtime bench) and [`summary`] renders a
//! human-readable table for end-of-run printing under `FV_TELEMETRY=1`.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of log2 nanosecond buckets per site histogram. Bucket `i` holds
/// durations in `[2^(i-1), 2^i)` ns (bucket 0 is `< 1` ns); the last
/// bucket absorbs everything longer (~2.1 s and up).
pub const HIST_BUCKETS: usize = 32;

// Enablement is a tri-state so tests can override the environment:
// 0 = undecided (read FV_TELEMETRY on first use), 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry recording is enabled for this process.
///
/// Decided once from the `FV_TELEMETRY` environment variable (`1` or
/// `true`); afterwards a single relaxed load. Every recording entry point
/// checks this first, so a disabled process performs no atomic writes, no
/// clock reads, and no registration on any hot path.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        s => s == 2,
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = matches!(
        std::env::var("FV_TELEMETRY").as_deref(),
        Ok("1") | Ok("true")
    );
    // A racing override wins; we only move out of the undecided state.
    let _ = STATE.compare_exchange(0, if on { 2 } else { 1 }, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == 2
}

/// Force telemetry on or off, overriding `FV_TELEMETRY`. Intended for
/// tests and benches; takes effect immediately for subsequent recordings.
#[doc(hidden)]
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

struct Registry {
    sites: Mutex<Vec<&'static Site>>,
    counters: Mutex<Vec<&'static Counter>>,
    gauges: Mutex<Vec<&'static Gauge>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        sites: Mutex::new(Vec::new()),
        counters: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
    })
}

/// A named, timed code region.
///
/// Declare as a `static` next to the code it measures:
///
/// ```
/// use fv_runtime::telemetry::Site;
/// static RECON_BATCH: Site = Site::new("recon.batch", Some("recon"));
/// fn hot() {
///     let _span = RECON_BATCH.span();
///     // ... work ...
/// }
/// ```
pub struct Site {
    name: &'static str,
    parent: Option<&'static str>,
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
    registered: AtomicBool,
}

impl Site {
    /// A new site named `name`, optionally nested under `parent` (the
    /// parent's `name`). Purely declarative — nothing is registered until
    /// the first recording.
    pub const fn new(name: &'static str, parent: Option<&'static str>) -> Self {
        Self {
            name,
            parent,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// Open a timed span; the elapsed monotonic time is recorded when the
    /// returned guard drops. When telemetry is disabled the guard is inert
    /// and the clock is never read.
    #[inline]
    pub fn span(&'static self) -> SpanGuard {
        SpanGuard {
            site: self,
            start: if enabled() { Some(Instant::now()) } else { None },
        }
    }

    /// Record an externally measured duration (for code that already
    /// times itself, e.g. the trainer's per-phase stopwatches).
    #[inline]
    pub fn record_duration(&'static self, d: Duration) {
        if enabled() {
            self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    #[cold]
    fn register(&'static self) {
        registry().sites.lock().unwrap().push(self);
    }

    fn record_ns(&'static self, ns: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            self.register();
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        let bucket = (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&'static self) -> SiteStats {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min_ns.load(Ordering::Relaxed);
        SiteStats {
            name: self.name,
            parent: self.parent,
            count,
            total_ns: self.total_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 { 0 } else { min },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    fn reset(&'static self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// RAII guard returned by [`Site::span`]; records on drop.
pub struct SpanGuard {
    site: &'static Site,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.site.record_ns(ns);
        }
    }
}

/// A monotonically increasing event counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter named `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n` events. No-op (one relaxed load) when telemetry is off.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if enabled() {
            if !self.registered.swap(true, Ordering::Relaxed) {
                registry().counters.lock().unwrap().push(self);
            }
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count one event.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }
}

/// A last-value measurement that also tracks its high watermark.
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A new gauge named `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Record the current value. No-op when telemetry is off.
    #[inline]
    pub fn set(&'static self, v: u64) {
        if enabled() {
            if !self.registered.swap(true, Ordering::Relaxed) {
                registry().gauges.lock().unwrap().push(self);
            }
            self.value.store(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }
}

/// Point-in-time statistics for one [`Site`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// Site name (dotted hierarchy by convention, e.g. `train.step`).
    pub name: &'static str,
    /// Name of the enclosing site, if the site declared one.
    pub parent: Option<&'static str>,
    /// Number of recorded spans.
    pub count: u64,
    /// Sum of recorded span durations in nanoseconds.
    pub total_ns: u64,
    /// Shortest recorded span (0 when nothing was recorded).
    pub min_ns: u64,
    /// Longest recorded span.
    pub max_ns: u64,
    /// log2 latency histogram; bucket `i` counts spans in
    /// `[2^(i-1), 2^i)` ns.
    pub buckets: [u64; HIST_BUCKETS],
}

/// Point-in-time value of one [`Counter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStats {
    /// Counter name.
    pub name: &'static str,
    /// Accumulated event count.
    pub value: u64,
}

/// Point-in-time value of one [`Gauge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeStats {
    /// Gauge name.
    pub name: &'static str,
    /// Most recently recorded value.
    pub value: u64,
    /// Largest value recorded since the last reset.
    pub max: u64,
}

/// A consistent-enough snapshot of every registered instrument (individual
/// loads are relaxed; recording may race the snapshot, which is fine for
/// reporting).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All registered sites, sorted by name.
    pub sites: Vec<SiteStats>,
    /// All registered counters, sorted by name.
    pub counters: Vec<CounterStats>,
    /// All registered gauges, sorted by name.
    pub gauges: Vec<GaugeStats>,
}

impl Snapshot {
    /// Render the snapshot as a self-contained JSON object (no external
    /// serializer; the runtime is dependency-free by design). Histogram
    /// buckets are emitted sparsely as `[bucket_index, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"sites\": [");
        for (i, site) in self.sites.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let hist: Vec<String> = site
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(b, &c)| format!("[{b}, {c}]"))
                .collect();
            s.push_str(&format!(
                "{{\"name\": \"{}\", \"parent\": {}, \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"hist_log2_ns\": [{}]}}",
                site.name,
                match site.parent {
                    Some(p) => format!("\"{p}\""),
                    None => "null".to_string(),
                },
                site.count,
                site.total_ns,
                site.min_ns,
                site.max_ns,
                hist.join(", "),
            ));
        }
        s.push_str("], \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{{\"name\": \"{}\", \"value\": {}}}", c.name, c.value));
        }
        s.push_str("], \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"name\": \"{}\", \"value\": {}, \"max\": {}}}",
                g.name, g.value, g.max
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Collect every registered instrument, sorted by name.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let mut sites: Vec<SiteStats> = reg
        .sites
        .lock()
        .unwrap()
        .iter()
        .map(|s| s.stats())
        .collect();
    sites.sort_by_key(|s| s.name);
    let mut counters: Vec<CounterStats> = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|c| CounterStats {
            name: c.name,
            value: c.value.load(Ordering::Relaxed),
        })
        .collect();
    counters.sort_by_key(|c| c.name);
    let mut gauges: Vec<GaugeStats> = reg
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|g| GaugeStats {
            name: g.name,
            value: g.value.load(Ordering::Relaxed),
            max: g.max.load(Ordering::Relaxed),
        })
        .collect();
    gauges.sort_by_key(|g| g.name);
    Snapshot {
        sites,
        counters,
        gauges,
    }
}

/// Zero every registered instrument (registration itself is permanent).
/// Benches call this between runs so each width reports its own numbers.
pub fn reset() {
    let reg = registry();
    for s in reg.sites.lock().unwrap().iter() {
        s.reset();
    }
    for c in reg.counters.lock().unwrap().iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.lock().unwrap().iter() {
        g.value.store(0, Ordering::Relaxed);
        g.max.store(0, Ordering::Relaxed);
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Render a human-readable end-of-run summary: sites as an indented tree
/// (children under their declared parent), then counters and gauges.
/// Returns an empty string when nothing was recorded.
pub fn summary() -> String {
    let snap = snapshot();
    if snap.sites.is_empty() && snap.counters.is_empty() && snap.gauges.is_empty() {
        return String::new();
    }
    let mut out = String::from("# telemetry\n");
    // Roots first (no parent, or parent never registered), then children.
    let registered: Vec<&'static str> = snap.sites.iter().map(|s| s.name).collect();
    let is_root =
        |s: &SiteStats| s.parent.is_none() || !registered.contains(&s.parent.unwrap());
    fn emit(out: &mut String, snap: &Snapshot, site: &SiteStats, depth: usize) {
        let mean = site.total_ns.checked_div(site.count).unwrap_or(0);
        out.push_str(&format!(
            "#   {:indent$}{:<28} count {:>8}  total {:>10}  mean {:>9}  min {:>9}  max {:>9}\n",
            "",
            site.name,
            site.count,
            fmt_ns(site.total_ns),
            fmt_ns(mean),
            fmt_ns(site.min_ns),
            fmt_ns(site.max_ns),
            indent = depth * 2,
        ));
        for child in snap.sites.iter().filter(|c| c.parent == Some(site.name)) {
            emit(out, snap, child, depth + 1);
        }
    }
    for site in snap.sites.iter().filter(|s| is_root(s)) {
        emit(&mut out, &snap, site, 0);
    }
    for c in &snap.counters {
        out.push_str(&format!("#   {:<30} {:>10}\n", c.name, c.value));
    }
    for g in &snap.gauges {
        out.push_str(&format!(
            "#   {:<30} {:>10}  (max {})\n",
            g.name, g.value, g.max
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests mutate the process-wide enable flag; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    static T_SITE: Site = Site::new("test.site", None);
    static T_CHILD: Site = Site::new("test.site.child", Some("test.site"));
    static T_COUNTER: Counter = Counter::new("test.counter");
    static T_GAUGE: Gauge = Gauge::new("test.gauge");

    #[test]
    fn disabled_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        T_SITE.record_duration(Duration::from_micros(5));
        T_COUNTER.incr();
        T_GAUGE.set(7);
        {
            let _span = T_SITE.span();
        }
        let snap = snapshot();
        assert!(snap.sites.iter().all(|s| s.name != "test.site" || s.count == 0));
        assert!(snap
            .counters
            .iter()
            .all(|c| c.name != "test.counter" || c.value == 0));
    }

    #[test]
    fn enabled_records_and_resets() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        T_SITE.record_duration(Duration::from_nanos(100));
        T_SITE.record_duration(Duration::from_nanos(300));
        T_CHILD.record_duration(Duration::from_nanos(50));
        T_COUNTER.add(3);
        T_GAUGE.set(4);
        T_GAUGE.set(2);
        let snap = snapshot();
        let site = snap.sites.iter().find(|s| s.name == "test.site").unwrap();
        assert_eq!(site.count, 2);
        assert_eq!(site.total_ns, 400);
        assert_eq!(site.min_ns, 100);
        assert_eq!(site.max_ns, 300);
        assert_eq!(site.buckets.iter().sum::<u64>(), 2);
        let child = snap
            .sites
            .iter()
            .find(|s| s.name == "test.site.child")
            .unwrap();
        assert_eq!(child.parent, Some("test.site"));
        let c = snap
            .counters
            .iter()
            .find(|c| c.name == "test.counter")
            .unwrap();
        assert_eq!(c.value, 3);
        let g = snap.gauges.iter().find(|g| g.name == "test.gauge").unwrap();
        assert_eq!(g.value, 2);
        assert_eq!(g.max, 4);

        let rendered = summary();
        assert!(rendered.contains("test.site"));
        assert!(rendered.contains("test.counter"));
        let json = snap.to_json();
        assert!(json.contains("\"name\": \"test.site\""));
        assert!(json.contains("\"parent\": \"test.site\""));

        reset();
        let snap = snapshot();
        let site = snap.sites.iter().find(|s| s.name == "test.site").unwrap();
        assert_eq!(site.count, 0);
        assert_eq!(site.total_ns, 0);
        assert_eq!(site.min_ns, 0);
        set_enabled(false);
    }

    #[test]
    fn span_guard_measures_elapsed_time() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        {
            let _span = T_SITE.span();
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = snapshot();
        let site = snap.sites.iter().find(|s| s.name == "test.site").unwrap();
        assert_eq!(site.count, 1);
        assert!(site.total_ns >= 1_000_000, "slept 2ms, saw {}ns", site.total_ns);
        set_enabled(false);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        // 1ns -> bucket 1 (64 - 63 leading zeros); 1024ns -> bucket 11.
        T_SITE.record_duration(Duration::from_nanos(1));
        T_SITE.record_duration(Duration::from_nanos(1024));
        let snap = snapshot();
        let site = snap.sites.iter().find(|s| s.name == "test.site").unwrap();
        assert_eq!(site.buckets[1], 1);
        assert_eq!(site.buckets[11], 1);
        set_enabled(false);
    }
}
