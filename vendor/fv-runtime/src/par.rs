//! Chunked data-parallel cores: `par_for`, `par_map`, `par_reduce`.
//!
//! Everything here works over an index range `[0, len)` cut into
//! fixed-size chunks. The chunk geometry is what carries the determinism
//! contract: in deterministic mode (the default) the chunk size is a
//! function of `len` alone — never of the worker count — and reductions
//! combine chunk results in index order along the (equally fixed) binary
//! split tree. Floating-point reductions are therefore bitwise identical at
//! any thread count. See DESIGN.md §9.

use crate::pool::join;

/// Number of chunks a parallel region is cut into in deterministic mode.
/// Fixed (not derived from the worker count) so that chunk boundaries — and
/// with them reduction order — do not move when `FV_THREADS` changes.
/// 64 gives ample stealing slack for any realistic core count while keeping
/// per-chunk scheduling overhead far below the work a chunk carries.
pub const DETERMINISTIC_CHUNKS: usize = 64;

/// Pick a chunk size for a parallel region of `len` items, honoring
/// `min_len`/`max_len` hints (`min_len` wins if they conflict).
///
/// Deterministic mode targets [`DETERMINISTIC_CHUNKS`] chunks regardless of
/// the pool width; performance mode targets 4 chunks per worker so idle
/// threads always find something to steal.
pub fn chunk_size(len: usize, min_len: usize, max_len: usize) -> usize {
    let target = if crate::deterministic() {
        len.div_ceil(DETERMINISTIC_CHUNKS)
    } else {
        len.div_ceil((crate::current_num_threads() * 4).max(1))
    };
    let min = min_len.max(1);
    target.clamp(min, max_len.max(min))
}

/// The split index for a region of `len > chunk` items: half the chunks
/// (rounded down), converted back to items. Splitting on chunk boundaries
/// keeps the leaves of the recursion exactly the chunks
/// `[i*chunk, (i+1)*chunk)`, whatever shape the recursion takes.
pub fn split_point(len: usize, chunk: usize) -> usize {
    debug_assert!(len > chunk && chunk > 0);
    (len.div_ceil(chunk) / 2) * chunk
}

/// Run `body(start, end)` over `[0, len)` cut into `chunk`-sized pieces,
/// in parallel. `body` must tolerate any execution order; pieces are
/// disjoint so writes indexed by position race with nothing.
pub fn par_for(len: usize, chunk: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    par_for_rec(0, len, chunk.max(1), body);
}

fn par_for_rec(start: usize, len: usize, chunk: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    if len == 0 {
        return;
    }
    if len <= chunk {
        body(start, start + len);
        return;
    }
    let mid = split_point(len, chunk);
    join(
        || par_for_rec(start, mid, chunk, body),
        || par_for_rec(start + mid, len - mid, chunk, body),
    );
}

/// Map `f` over `0..len` in parallel, collecting results in index order.
pub fn par_map<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let chunk = chunk_size(len, 1, usize::MAX);
    let mut out: Vec<T> = Vec::with_capacity(len);
    let base = SendPtr(out.as_mut_ptr());
    par_for(len, chunk, &|start, end| {
        for i in start..end {
            // Safety: each index is written exactly once, by the single
            // chunk that covers it; the Vec's capacity is `len`.
            unsafe { base.get().add(i).write(f(i)) };
        }
    });
    // Safety: every slot in [0, len) was initialized above. On panic we
    // never get here — the Vec drops with len 0 and the written elements
    // leak, which is safe.
    unsafe { out.set_len(len) };
    out
}

/// Reduce `[0, len)` in parallel: `leaf(start, end)` folds one chunk,
/// `combine` merges adjacent results in index order. Returns `None` for an
/// empty range. Deterministic mode makes this bitwise reproducible across
/// thread counts (fixed chunks, fixed combine tree).
pub fn par_reduce<T>(
    len: usize,
    chunk: usize,
    leaf: &(dyn Fn(usize, usize) -> T + Sync),
    combine: &(dyn Fn(T, T) -> T + Sync),
) -> Option<T>
where
    T: Send,
{
    if len == 0 {
        return None;
    }
    Some(par_reduce_rec(0, len, chunk.max(1), leaf, combine))
}

fn par_reduce_rec<T: Send>(
    start: usize,
    len: usize,
    chunk: usize,
    leaf: &(dyn Fn(usize, usize) -> T + Sync),
    combine: &(dyn Fn(T, T) -> T + Sync),
) -> T {
    if len <= chunk {
        return leaf(start, start + len);
    }
    let mid = split_point(len, chunk);
    let (left, right) = join(
        || par_reduce_rec(start, mid, chunk, leaf, combine),
        || par_reduce_rec(start + mid, len - mid, chunk, leaf, combine),
    );
    combine(left, right)
}

/// A raw pointer that may cross threads. Used to scatter-write distinct
/// indices of one allocation from parallel chunks.
pub struct SendPtr<T>(pub *mut T);

// Manual impls: a derive would wrongly require `T: Copy`.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer. Use this (not `.0`) inside closures: a method
    /// call makes edition-2021 disjoint capture take the whole `Send+Sync`
    /// wrapper rather than the raw pointer field.
    pub fn get(&self) -> *mut T {
        self.0
    }
}
// Safety: the parallel drivers guarantee disjoint index sets per task.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}
