//! Deterministic chaos engine: seeded fault injection at named sites.
//!
//! PR 1 could only inject faults at the `Read`/`Write` boundary; proving
//! that the *whole* supervised execution layer degrades cleanly needs
//! failures injectable inside every layer — a panic mid-minibatch, a stall
//! inside a prediction batch, a corrupted output buffer, an I/O error in a
//! checkpoint save. This module provides that as a process-wide, seeded
//! [`FaultPlan`]:
//!
//! * **Named injection sites.** Compute code marks its failure surface
//!   with [`point`] (`chaos::point("train.step")`), [`io_error`] and
//!   [`corrupt_f32`] calls. The full site registry lives in DESIGN.md §11.
//! * **Zero-cost when disabled.** Every hook starts with one relaxed
//!   atomic load of a process-wide flag; with no plan installed that is
//!   the entire cost, so the sites stay compiled into release builds.
//! * **Reproducible by seed.** Whether the *n*-th hit of a site fires is a
//!   pure function of `(seed, site, kind, n)` — re-running a failing seed
//!   replays exactly the same fault schedule. Hit numbers are claimed with
//!   an atomic counter, so under a parallel pool the *assignment* of hits
//!   to threads may vary while the multiset of injected faults per site
//!   does not.
//!
//! Install a plan with [`install`]; the returned [`ChaosGuard`] removes it
//! on drop, so a panicking test cannot leak chaos into its neighbors.
//! Injected panics carry a [`ChaosPanic`] payload, which supervisors and
//! tests can downcast to tell deliberate faults from real bugs (and
//! [`silence_chaos_panics`] keeps them out of test output).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// The kinds of fault a [`FaultPlan`] can schedule at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic with a [`ChaosPanic`] payload (a crashed worker / torn step).
    Panic,
    /// Sleep for the configured duration (a stalled filesystem or a noisy
    /// neighbor stealing the core).
    Delay,
    /// Surface an injected [`std::io::Error`] (dying disk, full volume).
    IoError,
    /// Stamp NaNs into a caller-supplied `f32` buffer (silent memory or
    /// media corruption).
    Corrupt,
}

impl FaultKind {
    fn tag(self) -> u64 {
        match self {
            FaultKind::Panic => 0x50414E49,
            FaultKind::Delay => 0x44454C41,
            FaultKind::IoError => 0x494F4552,
            FaultKind::Corrupt => 0x434F5252,
        }
    }
}

/// Payload of every chaos-injected panic.
#[derive(Debug)]
pub struct ChaosPanic {
    /// The injection site that fired.
    pub site: String,
}

/// One scheduled fault at one site.
#[derive(Debug, Clone, Copy)]
struct FaultRule {
    kind: FaultKind,
    /// Probability (per hit) in `[0, 1]` that this rule fires.
    rate: f64,
    /// Sleep length for [`FaultKind::Delay`] rules.
    delay: Duration,
    /// The rule is dead for hit indices `>= until_hit` (`u64::MAX` for
    /// unwindowed rules). Models transient faults that clear up.
    until_hit: u64,
}

#[derive(Debug, Default)]
struct SiteState {
    rules: Vec<FaultRule>,
    hits: AtomicU64,
    injected: AtomicU64,
}

/// Per-site observation counters, snapshotted by [`stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// Site name.
    pub site: String,
    /// Times the site was reached while the plan was installed.
    pub hits: u64,
    /// Faults actually injected at the site.
    pub injected: u64,
}

/// A seeded schedule of faults across named injection sites.
///
/// ```
/// use fv_runtime::chaos::{FaultPlan, FaultKind};
/// use std::time::Duration;
///
/// let plan = FaultPlan::new(42)
///     .panic_at("train.step", 0.05)
///     .delay_at("recon.batch", 0.10, Duration::from_millis(2))
///     .io_error_at("ckpt.save", 0.25)
///     .corrupt_at("recon.output", 0.10);
/// let _guard = fv_runtime::chaos::install(plan);
/// // ... run the system; sites fire deterministically by seed ...
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    sites: HashMap<String, SiteState>,
}

impl FaultPlan {
    /// An empty plan for `seed` (no sites armed yet).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            sites: HashMap::new(),
        }
    }

    /// The seed this plan derives every decision from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn arm(mut self, site: &str, rule: FaultRule) -> Self {
        self.sites
            .entry(site.to_string())
            .or_default()
            .rules
            .push(rule);
        self
    }

    /// Arm `site` to panic with probability `rate` per hit.
    pub fn panic_at(self, site: &str, rate: f64) -> Self {
        self.arm(
            site,
            FaultRule {
                kind: FaultKind::Panic,
                rate,
                delay: Duration::ZERO,
                until_hit: u64::MAX,
            },
        )
    }

    /// Arm `site` to sleep `delay` with probability `rate` per hit.
    pub fn delay_at(self, site: &str, rate: f64, delay: Duration) -> Self {
        self.arm(
            site,
            FaultRule {
                kind: FaultKind::Delay,
                rate,
                delay,
                until_hit: u64::MAX,
            },
        )
    }

    /// Arm `site` to yield an injected I/O error with probability `rate`.
    pub fn io_error_at(self, site: &str, rate: f64) -> Self {
        self.arm(
            site,
            FaultRule {
                kind: FaultKind::IoError,
                rate,
                delay: Duration::ZERO,
                until_hit: u64::MAX,
            },
        )
    }

    /// Arm `site` to corrupt the caller's buffer with probability `rate`.
    pub fn corrupt_at(self, site: &str, rate: f64) -> Self {
        self.arm(
            site,
            FaultRule {
                kind: FaultKind::Corrupt,
                rate,
                delay: Duration::ZERO,
                until_hit: u64::MAX,
            },
        )
    }

    /// Arm `site` to fail its first `n` hits with an injected I/O error
    /// and then recover — the transient-fault shape that retry policies
    /// and circuit-breaker probes exist to ride out.
    pub fn io_error_first(self, site: &str, n: u64) -> Self {
        self.arm(
            site,
            FaultRule {
                kind: FaultKind::IoError,
                rate: 1.0,
                delay: Duration::ZERO,
                until_hit: n,
            },
        )
    }

    /// Arm `site` to panic on its first `n` hits and then recover.
    pub fn panic_first(self, site: &str, n: u64) -> Self {
        self.arm(
            site,
            FaultRule {
                kind: FaultKind::Panic,
                rate: 1.0,
                delay: Duration::ZERO,
                until_hit: n,
            },
        )
    }

    /// A deterministic random stream derived from this plan's seed and a
    /// label — the hook for seed-driven injectors *outside* the installed
    /// plan (e.g. `fv_field::faults` readers picking corruption offsets).
    pub fn stream(&self, label: &str) -> ChaosRng {
        ChaosRng::new(mix2(self.seed, fnv1a(label)))
    }

    /// Whether the `n`-th hit (0-based) of `site` fires `kind`, per this
    /// plan's seed. Pure; the runtime hooks and tests share it.
    fn scheduled(&self, state: &SiteState, site: &str, n: u64) -> Option<(FaultKind, Duration)> {
        for rule in &state.rules {
            if n >= rule.until_hit {
                continue;
            }
            let x = mix2(mix2(self.seed, fnv1a(site)) ^ rule.kind.tag(), n);
            // Map the top 53 bits to [0, 1).
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            if u < rule.rate {
                return Some((rule.kind, rule.delay));
            }
        }
        None
    }
}

/// SplitMix64 — the workspace's standard tiny deterministic generator.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
    pub fn next_range(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn mix2(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fast-path flag: `true` only while a plan is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Chaos state is process-global; tests anywhere in this crate that
/// install a plan must hold this lock so they cannot bleed faults into
/// each other when the harness runs them concurrently.
#[cfg(test)]
pub(crate) static INSTALL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn plan_slot() -> &'static RwLock<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Install `plan` process-wide; the previous plan (if any) is replaced.
/// Chaos stays active until the returned guard drops.
#[must_use = "the plan is uninstalled when the guard drops"]
pub fn install(plan: FaultPlan) -> ChaosGuard {
    let mut slot = plan_slot().write().unwrap();
    *slot = Some(Arc::new(plan));
    ENABLED.store(true, Ordering::SeqCst);
    ChaosGuard { _private: () }
}

/// Uninstalls the active [`FaultPlan`] when dropped.
#[derive(Debug)]
pub struct ChaosGuard {
    _private: (),
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        let mut slot = plan_slot().write().unwrap();
        *slot = None;
    }
}

/// `true` while a plan is installed.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Look up the fault scheduled for this hit of `site`, bumping the site's
/// hit counter. `None` when chaos is off, the site is unarmed, or the seed
/// says this hit stays healthy.
fn decide(site: &str) -> Option<(FaultKind, Duration)> {
    let slot = plan_slot().read().unwrap();
    let plan = slot.as_ref()?;
    let state = plan.sites.get(site)?;
    let n = state.hits.fetch_add(1, Ordering::Relaxed);
    let hit = plan.scheduled(state, site, n);
    if hit.is_some() {
        state.injected.fetch_add(1, Ordering::Relaxed);
    }
    hit
}

/// A control-flow injection site: may panic (with a [`ChaosPanic`]
/// payload) or sleep, per the installed plan. No-op (one relaxed atomic
/// load) when chaos is disabled. `IoError`/`Corrupt` rules never fire
/// here — those need the caller's cooperation via [`io_error`] /
/// [`corrupt_f32`].
#[inline]
pub fn point(site: &str) {
    if !enabled() {
        return;
    }
    point_slow(site);
}

#[cold]
fn point_slow(site: &str) {
    match decide(site) {
        Some((FaultKind::Panic, _)) => std::panic::panic_any(ChaosPanic {
            site: site.to_string(),
        }),
        Some((FaultKind::Delay, delay)) => std::thread::sleep(delay),
        _ => {}
    }
}

/// An I/O injection site: returns the injected error the caller should
/// surface, if one is scheduled. Panic/Delay rules armed on the same site
/// also act here (an I/O path can stall or crash too).
#[inline]
pub fn io_error(site: &str) -> Option<std::io::Error> {
    if !enabled() {
        return None;
    }
    match decide(site) {
        Some((FaultKind::IoError, _)) => Some(std::io::Error::other(format!(
            "chaos: injected i/o error at {site}"
        ))),
        Some((FaultKind::Panic, _)) => std::panic::panic_any(ChaosPanic {
            site: site.to_string(),
        }),
        Some((FaultKind::Delay, delay)) => {
            std::thread::sleep(delay);
            None
        }
        _ => None,
    }
}

/// A buffer-corruption injection site: when a `Corrupt` fault is
/// scheduled, stamps NaN into up to `1 + len/64` deterministically chosen
/// positions of `values`. Returns the number of values corrupted.
#[inline]
pub fn corrupt_f32(site: &str, values: &mut [f32]) -> usize {
    if !enabled() || values.is_empty() {
        return 0;
    }
    match decide(site) {
        Some((FaultKind::Corrupt, _)) => {
            let slot = plan_slot().read().unwrap();
            let plan = match slot.as_ref() {
                Some(p) => p,
                None => return 0,
            };
            let mut rng = plan.stream(site);
            let n = 1 + values.len() / 64;
            for _ in 0..n {
                let idx = rng.next_range(values.len() as u64) as usize;
                values[idx] = f32::NAN;
            }
            n
        }
        Some((FaultKind::Panic, _)) => std::panic::panic_any(ChaosPanic {
            site: site.to_string(),
        }),
        Some((FaultKind::Delay, delay)) => {
            std::thread::sleep(delay);
            0
        }
        _ => 0,
    }
}

/// Snapshot per-site hit/injection counters of the installed plan
/// (empty when chaos is off), sorted by site name.
pub fn stats() -> Vec<SiteStats> {
    let slot = plan_slot().read().unwrap();
    let Some(plan) = slot.as_ref() else {
        return Vec::new();
    };
    let mut out: Vec<SiteStats> = plan
        .sites
        .iter()
        .map(|(site, state)| SiteStats {
            site: site.clone(),
            hits: state.hits.load(Ordering::Relaxed),
            injected: state.injected.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by(|a, b| a.site.cmp(&b.site));
    out
}

/// Total faults injected by the installed plan across all sites.
pub fn injected_total() -> u64 {
    stats().iter().map(|s| s.injected).sum()
}

/// Silence the default panic message for [`ChaosPanic`] payloads (real
/// panics still print). Chaos suites inject hundreds of deliberate panics;
/// without this every one would spray a backtrace banner into the output.
/// Idempotent; the hook chains to the previously installed one.
pub fn silence_chaos_panics() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_are_noops() {
        let _l = INSTALL_LOCK.lock().unwrap();
        assert!(!enabled());
        point("nowhere");
        assert!(io_error("nowhere").is_none());
        let mut buf = [1.0f32; 8];
        assert_eq!(corrupt_f32("nowhere", &mut buf), 0);
        assert!(buf.iter().all(|v| *v == 1.0));
        assert!(stats().is_empty());
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_site_and_hit() {
        let plan_a = FaultPlan::new(9).panic_at("x", 0.3).io_error_at("x", 0.1);
        let plan_b = FaultPlan::new(9).panic_at("x", 0.3).io_error_at("x", 0.1);
        let state_a = &plan_a.sites["x"];
        let state_b = &plan_b.sites["x"];
        let seq_a: Vec<_> = (0..256).map(|n| plan_a.scheduled(state_a, "x", n).map(|h| h.0)).collect();
        let seq_b: Vec<_> = (0..256).map(|n| plan_b.scheduled(state_b, "x", n).map(|h| h.0)).collect();
        assert_eq!(seq_a, seq_b);
        let fired = seq_a.iter().filter(|h| h.is_some()).count();
        assert!(fired > 30 && fired < 200, "≈40% of 256 expected, got {fired}");
        // A different seed produces a different schedule.
        let plan_c = FaultPlan::new(10).panic_at("x", 0.3).io_error_at("x", 0.1);
        let state_c = &plan_c.sites["x"];
        let seq_c: Vec<_> = (0..256).map(|n| plan_c.scheduled(state_c, "x", n).map(|h| h.0)).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn installed_plan_fires_and_counts() {
        let _l = INSTALL_LOCK.lock().unwrap();
        let guard = install(FaultPlan::new(4).io_error_at("io.test", 1.0));
        assert!(enabled());
        assert!(io_error("io.test").is_some());
        assert!(io_error("unarmed.site").is_none());
        let s = stats();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].site, "io.test");
        assert_eq!(s[0].hits, 1);
        assert_eq!(s[0].injected, 1);
        assert_eq!(injected_total(), 1);
        drop(guard);
        assert!(!enabled());
        assert!(io_error("io.test").is_none());
    }

    #[test]
    fn injected_panic_carries_chaos_payload() {
        let _l = INSTALL_LOCK.lock().unwrap();
        silence_chaos_panics();
        let _guard = install(FaultPlan::new(1).panic_at("p.test", 1.0));
        let err = std::panic::catch_unwind(|| point("p.test")).unwrap_err();
        let payload = err.downcast_ref::<ChaosPanic>().expect("chaos payload");
        assert_eq!(payload.site, "p.test");
    }

    #[test]
    fn corruption_stamps_nans_deterministically() {
        let _l = INSTALL_LOCK.lock().unwrap();
        let run = |seed: u64| -> Vec<u32> {
            let _guard = install(FaultPlan::new(seed).corrupt_at("c.test", 1.0));
            let mut buf = vec![1.0f32; 128];
            let n = corrupt_f32("c.test", &mut buf);
            assert!(n >= 1);
            assert!(buf.iter().any(|v| v.is_nan()));
            buf.iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same corruption");
    }

    #[test]
    fn windowed_rules_fire_then_recover() {
        let _l = INSTALL_LOCK.lock().unwrap();
        let _guard = install(FaultPlan::new(5).io_error_first("win.test", 2));
        assert!(io_error("win.test").is_some(), "hit 0 must fail");
        assert!(io_error("win.test").is_some(), "hit 1 must fail");
        assert!(io_error("win.test").is_none(), "hit 2 must recover");
        assert!(io_error("win.test").is_none(), "hit 3 stays healthy");
        assert_eq!(injected_total(), 2);
    }

    #[test]
    fn streams_differ_by_label_and_reproduce_by_seed() {
        let plan = FaultPlan::new(11);
        let a: Vec<u64> = (0..8).map(|_| 0).scan(plan.stream("a"), |r, _| Some(r.next_u64())).collect();
        let a2: Vec<u64> = (0..8).map(|_| 0).scan(plan.stream("a"), |r, _| Some(r.next_u64())).collect();
        let b: Vec<u64> = (0..8).map(|_| 0).scan(plan.stream("b"), |r, _| Some(r.next_u64())).collect();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        let mut r = plan.stream("a");
        let x = r.next_f64();
        assert!((0.0..1.0).contains(&x));
        assert_eq!(r.next_range(0), 0);
    }
}
