//! Per-worker work-stealing deques, crossbeam-style.
//!
//! Each worker owns a [`Worker`] handle to its deque and holds [`Stealer`]
//! handles to every other worker's. The owner pushes and pops at the *back*
//! (LIFO — the hot end, newest and cache-warmest tasks first), thieves take
//! from the *front* (FIFO — the oldest, typically largest, subproblems).
//! That asymmetric discipline is the Chase–Lev layout; stealing the oldest
//! task moves the biggest remaining chunk of work to the idle thread, which
//! is what makes recursive `join` splitting load-balance itself.
//!
//! The buffer here is a `Mutex<VecDeque>` rather than a lock-free array:
//! tasks in this workspace are coarse (one task covers a whole chunk of
//! grid slabs or matrix rows), so deque operations are rare relative to the
//! work they guard and an uncontended mutex lock is noise. The handle API
//! matches crossbeam-deque's `Worker`/`Stealer` split so a lock-free
//! implementation can drop in behind it without touching the pool.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The owning end of a deque: LIFO push/pop at the back.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

/// A thief's end of another worker's deque: FIFO steal from the front.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Create a new deque, returning the owner and one stealer handle.
pub fn deque<T: Send>() -> (Worker<T>, Stealer<T>) {
    let inner = Arc::new(Mutex::new(VecDeque::new()));
    (
        Worker {
            inner: Arc::clone(&inner),
        },
        Stealer { inner },
    )
}

impl<T: Send> Worker<T> {
    /// Push a task onto the hot (back) end.
    pub fn push(&self, task: T) {
        self.inner.lock().unwrap().push_back(task);
    }

    /// Pop the most recently pushed task, if any.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_back()
    }

    /// `true` if the deque currently holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }
}

impl<T: Send> Stealer<T> {
    /// Steal the oldest task from the front, if any.
    pub fn steal(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_front()
    }

    /// `true` if there is nothing to steal right now.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let (w, s) = deque::<u32>();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Some(1)); // oldest from the front
        assert_eq!(w.pop(), Some(3)); // newest from the back
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty() && s.is_empty());
    }

    #[test]
    fn steal_from_other_thread() {
        let (w, s) = deque::<usize>();
        for i in 0..100 {
            w.push(i);
        }
        let handle = std::thread::spawn(move || {
            let mut got = 0;
            while s.steal().is_some() {
                got += 1;
            }
            got
        });
        let mut local = 0;
        while w.pop().is_some() {
            local += 1;
        }
        let stolen = handle.join().unwrap();
        assert_eq!(local + stolen, 100);
    }
}
