//! Type-erased jobs: the unit of work that moves through the deques.

use crate::latch::Latch;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

/// A type-erased pointer to a job awaiting execution.
///
/// The pointee is either a [`StackJob`] (lives on the stack of a caller that
/// blocks until the job's latch is set, so the pointer stays valid) or a
/// [`HeapJob`] (boxed, freed by its executor). `execute` must be called
/// exactly once per `JobRef`.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
}

// Safety: a JobRef is only ever executed once, and the pointee is kept alive
// by the blocked owner (StackJob) or owned by the executor (HeapJob).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Run the job. Safety: call exactly once; the pointee must be alive.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.pointer)
    }

    /// Whether two refs point at the same job (pointer identity only; two
    /// live jobs always have distinct addresses).
    #[inline]
    pub(crate) fn same_job(&self, other: &JobRef) -> bool {
        std::ptr::eq(self.pointer, other.pointer)
    }
}

/// A job whose closure and result live on the stack of the thread that
/// created it. Sound because that thread blocks (or steals) until the job's
/// latch is set, keeping the frame alive for the executor.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    pub(crate) latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
        }
    }

    /// Erase to a [`JobRef`].
    ///
    /// Safety: the caller must keep `self` alive until the latch is set and
    /// must consume the ref exactly once.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            pointer: self as *const Self as *const (),
            execute_fn: execute_stack::<F, R>,
        }
    }

    /// Take the stored result. Safety: only after the latch is set.
    pub(crate) unsafe fn take_result(&self) -> std::thread::Result<R> {
        (*self.result.get())
            .take()
            .expect("job result present once latch is set")
    }
}

unsafe fn execute_stack<F, R>(pointer: *const ())
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    let job = &*(pointer as *const StackJob<F, R>);
    let func = (*job.func.get()).take().expect("job executed exactly once");
    // Panics are captured here and resumed on the thread that waits on the
    // latch — a worker never unwinds out of its run loop.
    let result = panic::catch_unwind(AssertUnwindSafe(func));
    *job.result.get() = Some(result);
    job.latch.set();
}

/// A heap-allocated fire-and-forget job (used by [`crate::scope`] spawns).
/// The closure is responsible for its own panic handling and completion
/// signalling; the box is freed by the executor.
pub(crate) struct HeapJob<F: FnOnce() + Send> {
    func: F,
}

impl<F: FnOnce() + Send> HeapJob<F> {
    pub(crate) fn new(func: F) -> Box<Self> {
        Box::new(Self { func })
    }

    /// Erase to a [`JobRef`], transferring ownership of the box to it.
    pub(crate) fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef {
            pointer: Box::into_raw(self) as *const (),
            execute_fn: execute_heap::<F>,
        }
    }
}

unsafe fn execute_heap<F: FnOnce() + Send>(pointer: *const ()) {
    let job = Box::from_raw(pointer as *const HeapJob<F> as *mut HeapJob<F>);
    (job.func)();
}
