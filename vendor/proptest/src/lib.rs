//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real proptest cannot
//! be fetched. This crate reproduces the subset the `fillvoid` test-suite
//! uses: the [`proptest!`] macro, range/tuple strategies, `prop_map`,
//! [`prelude::any`], `prop_assert!`/`prop_assert_eq!`/`prop_assume!` and
//! [`prelude::ProptestConfig`].
//!
//! Semantics: each test generates `cases` deterministic pseudo-random
//! inputs (seeded from the test name, so runs are reproducible) and runs
//! the body on each. `prop_assume!` skips the case; `prop_assert*!`
//! failures report the case index. There is **no shrinking** — the failing
//! case is reported as generated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error raised inside a proptest case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert*!` failed with this message.
    Fail(String),
    /// `prop_assume!` rejected the generated input.
    Reject,
}

/// Result type the generated case-body closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of generated values.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Full-type-range strategies for [`prelude::any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical [`prelude::any`] strategy.
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for u64 {
    fn arbitrary_value(rng: &mut StdRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary_value(rng: &mut StdRng) -> u32 {
        rng.gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary_value(rng: &mut StdRng) -> usize {
        rng.gen::<u64>() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u8 {
    fn arbitrary_value(rng: &mut StdRng) -> u8 {
        (rng.gen::<u64>() & 0xFF) as u8
    }
}

/// Runner configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test RNG: seeded from the test name and case index.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5DEECE66D))
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// The canonical strategy for a type (`any::<u64>()` etc.).
    pub fn any<T: crate::Arbitrary>() -> crate::AnyStrategy<T> {
        crate::AnyStrategy(std::marker::PhantomData)
    }
}

/// Define property tests. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0usize..10, y in any::<u64>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rejected = 0u32;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);
                    )*
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => rejected += 1,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {case}/{} failed: {msg}", config.cases)
                        }
                    }
                }
                assert!(
                    rejected < config.cases,
                    "all {} cases rejected by prop_assume!",
                    config.cases
                );
            }
        )*
    };
}

/// Assert inside a proptest body; failure reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skip the current case if `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_map(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 9, "sum {pair}");
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn any_u64_varies(x in any::<u64>(), y in any::<u64>()) {
            // x and y come from the same RNG stream, so they differ w.h.p.
            prop_assert_ne!(x, y);
        }
    }

    #[test]
    fn deterministic_rng_per_test_name() {
        use crate::Strategy;
        let mut a = crate::case_rng("some_test", 4);
        let mut b = crate::case_rng("some_test", 4);
        let s = 0.0f64..1.0;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
