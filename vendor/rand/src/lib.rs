//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! The build environment has no network access, so the real `rand` cannot
//! be fetched. This crate reproduces the API surface the `fillvoid`
//! workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! * the [`Rng`] extension trait with `gen`, `gen_range`, `gen_bool`;
//! * [`seq::SliceRandom::shuffle`] and [`seq::index::sample`];
//! * the [`distributions::Distribution`] trait.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically strong for simulation/test workloads. Streams do
//! NOT bit-match the real `rand`'s ChaCha12-based `StdRng`; all in-repo
//! determinism tests compare runs against each other, never against
//! hard-coded streams, so this is safe.

/// Low-level entropy source: a single `u64` at a time.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value from the "standard" distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply range reduction (bias < 2^-64).
                let r = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + r
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128) - (start as u128) + 1;
                let r = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + r
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

impl_float_range!(f64, f32);

impl SampleRange<i64> for std::ops::Range<i64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = (self.end as i128 - self.start as i128) as u128;
        let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
        (self.start as i128 + r) as i64
    }
}

impl SampleRange<i32> for std::ops::Range<i32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = (self.end as i64 - self.start as i64) as u128;
        let r = ((rng.next_u64() as u128 * span) >> 64) as i64;
        (self.start as i64 + r) as i32
    }
}

/// High-level random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value from the type's standard distribution (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait (shuffle, choose).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement, mirroring `rand::seq::index`.
    pub mod index {
        use super::super::{Rng, RngCore};

        /// The result of [`sample`]: distinct indices in `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consume into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices uniformly from `0..length`.
        ///
        /// Panics if `amount > length`, like the real `rand`.
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} of {length} without replacement"
            );
            if amount * 3 >= length {
                // Dense: partial Fisher–Yates over the full index range.
                let mut pool: Vec<usize> = (0..length).collect();
                for i in 0..amount {
                    let j = rng.gen_range(i..length);
                    pool.swap(i, j);
                }
                pool.truncate(amount);
                IndexVec(pool)
            } else {
                // Sparse: rejection sampling with a seen-set.
                let mut seen = std::collections::HashSet::with_capacity(amount * 2);
                let mut out = Vec::with_capacity(amount);
                while out.len() < amount {
                    let candidate = rng.gen_range(0..length);
                    if seen.insert(candidate) {
                        out.push(candidate);
                    }
                }
                IndexVec(out)
            }
        }
    }
}

/// Distribution sampling, mirroring `rand::distributions`.
pub mod distributions {
    use super::Rng;

    /// A type that yields values of `T` given an RNG.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = rng.gen_range(5usize..17);
            assert!((5..17).contains(&u));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left order intact");
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(13);
        for &(n, k) in &[(100usize, 5usize), (10, 10), (1000, 400)] {
            let picks = index::sample(&mut rng, n, k).into_vec();
            assert_eq!(picks.len(), k);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates for n={n} k={k}");
            assert!(picks.iter().all(|&i| i < n));
        }
    }

    #[test]
    #[should_panic]
    fn index_sample_rejects_oversample() {
        let mut rng = StdRng::seed_from_u64(1);
        index::sample(&mut rng, 3, 4);
    }
}
