//! Offline stand-in for the `rayon` crate, executing on the in-tree
//! [`fv_runtime`] work-stealing pool.
//!
//! The build environment has no network access, so the real rayon cannot be
//! fetched. This crate reproduces the API surface the `fillvoid` workspace
//! uses — `par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut`,
//! `into_par_iter`, `with_min_len`/`with_max_len`, `map`, `zip`,
//! `enumerate`, `for_each`, `collect`, rayon-style `fold`/`reduce`, `join`
//! and `current_num_threads` — with **real parallel execution**: work is
//! cut into chunks and driven through recursive [`fv_runtime::join`], so
//! idle workers steal the biggest outstanding pieces.
//!
//! ## How it differs from a wrapped sequential iterator
//!
//! A parallel iterator here is a [`ParIter`] over a [`Producer`]: a
//! splittable, exactly-sized description of the data (a slice, a range, a
//! chunking of a slice, or an adapter over one). Combinators (`map`, `zip`,
//! `enumerate`) compose producers; sinks (`for_each`, `collect`,
//! `fold`/`reduce`) split the producer along chunk boundaries and execute
//! leaves on the pool. Inherent methods take precedence over any trait
//! method of the same name, which is how call sites written against the old
//! sequential facade compile unchanged.
//!
//! ## Determinism
//!
//! In deterministic mode (default, see [`fv_runtime::deterministic`]) chunk
//! boundaries depend only on the item count and the `with_min_len` /
//! `with_max_len` hints — never on the worker count — and `fold`/`reduce`
//! combine chunk accumulators in index order along a fixed split tree.
//! Floating-point results are therefore bitwise identical at any
//! `FV_THREADS`. `for_each` and `collect` write disjoint outputs and are
//! deterministic unconditionally.
//!
//! Swapping the real rayon back in requires no source changes: repoint the
//! workspace dependency at the registry once it is reachable.

pub use fv_runtime::{current_num_threads, join, scope, Scope};

use fv_runtime::SendPtr;

/// A splittable, exactly-sized source of items for parallel execution.
///
/// `split_at` cuts the producer into two disjoint producers at an item
/// index; `into_seq` converts a (leaf) producer into a plain sequential
/// iterator. Implementations must satisfy `split_at(i).0.len() == i` and
/// preserve item order across splits.
pub trait Producer: Sized + Send {
    /// The element type.
    type Item: Send;
    /// Sequential iterator a leaf is consumed through.
    type IntoSeq: Iterator<Item = Self::Item>;

    /// Number of items this producer will yield.
    fn len(&self) -> usize;
    /// `true` if no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Consume as a sequential iterator.
    fn into_seq(self) -> Self::IntoSeq;
}

// ---------------------------------------------------------------------------
// Base producers: slices, chunked slices, ranges
// ---------------------------------------------------------------------------

/// Producer over `&[T]` yielding `&T`.
pub struct SliceProducer<'a, T>(&'a [T]);

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoSeq = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (Self(l), Self(r))
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.0.iter()
    }
}

/// Producer over `&mut [T]` yielding `&mut T`.
pub struct SliceMutProducer<'a, T>(&'a mut [T]);

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoSeq = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(index);
        (Self(l), Self(r))
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.0.iter_mut()
    }
}

/// Producer over `&[T]` yielding `size`-element chunks (last may be short).
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoSeq = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        // `index` counts chunks; only the right side may end short.
        let at = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (
            Self {
                slice: l,
                size: self.size,
            },
            Self {
                slice: r,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.slice.chunks(self.size)
    }
}

/// Producer over `&mut [T]` yielding mutable `size`-element chunks.
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoSeq = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            Self {
                slice: l,
                size: self.size,
            },
            Self {
                slice: r,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.slice.chunks_mut(self.size)
    }
}

/// Producer over an integer range.
pub struct RangeProducer<T> {
    start: T,
    end: T,
}

macro_rules! range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            type IntoSeq = std::ops::Range<$t>;

            fn len(&self) -> usize {
                (self.end.saturating_sub(self.start)) as usize
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.start + index as $t;
                (
                    Self { start: self.start, end: mid },
                    Self { start: mid, end: self.end },
                )
            }

            fn into_seq(self) -> Self::IntoSeq {
                self.start..self.end
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type P = RangeProducer<$t>;

            fn into_par_iter(self) -> ParIter<Self::P> {
                ParIter::new(RangeProducer { start: self.start, end: self.end })
            }
        }
    )*};
}

range_producer!(usize, u32, u64);

// ---------------------------------------------------------------------------
// Adapter producers: map, zip, enumerate
// ---------------------------------------------------------------------------

/// Producer adapter applying `f` to each item.
pub struct MapProducer<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> Producer for MapProducer<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Clone + Send + Sync,
{
    type Item = R;
    type IntoSeq = std::iter::Map<P::IntoSeq, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Self {
                base: l,
                f: self.f.clone(),
            },
            Self { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.base.into_seq().map(self.f)
    }
}

/// Producer adapter pairing two producers item-by-item (shorter wins).
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoSeq = std::iter::Zip<A::IntoSeq, B::IntoSeq>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Self { a: al, b: bl }, Self { a: ar, b: br })
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Producer adapter attaching the global item index.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoSeq = EnumerateSeq<P::IntoSeq>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Self {
                base: l,
                offset: self.offset,
            },
            Self {
                base: r,
                offset: self.offset + index,
            },
        )
    }

    fn into_seq(self) -> Self::IntoSeq {
        EnumerateSeq {
            inner: self.base.into_seq(),
            next: self.offset,
        }
    }
}

/// Sequential iterator behind [`EnumerateProducer`]: like
/// `Iterator::enumerate` but starting from the producer's global offset.
pub struct EnumerateSeq<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let index = self.next;
        self.next += 1;
        Some((index, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

// ---------------------------------------------------------------------------
// ParIter: the user-facing parallel iterator
// ---------------------------------------------------------------------------

/// A parallel iterator: a [`Producer`] plus chunking hints.
pub struct ParIter<P> {
    producer: P,
    min_len: usize,
    max_len: usize,
}

impl<P: Producer> ParIter<P> {
    fn new(producer: P) -> Self {
        Self {
            producer,
            min_len: 1,
            max_len: usize::MAX,
        }
    }

    /// Total number of items.
    pub fn len(&self) -> usize {
        self.producer.len()
    }

    /// `true` if there are no items.
    pub fn is_empty(&self) -> bool {
        self.producer.is_empty()
    }

    /// Lower bound on items per parallel chunk. In deterministic mode this
    /// is part of the reduction geometry: changing it changes where
    /// `fold`/`reduce` chunk boundaries fall (identically at every thread
    /// count).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Upper bound on items per parallel chunk.
    pub fn with_max_len(mut self, max: usize) -> Self {
        self.max_len = max.max(1);
        self
    }

    fn chunk(&self) -> usize {
        fv_runtime::chunk_size(self.producer.len(), self.min_len, self.max_len)
    }

    /// Map each item through `f` (lazy; composes producers).
    pub fn map<R, F>(self, f: F) -> ParIter<MapProducer<P, F>>
    where
        R: Send,
        F: Fn(P::Item) -> R + Clone + Send + Sync,
    {
        ParIter {
            producer: MapProducer {
                base: self.producer,
                f,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Pair with another parallel iterator item-by-item (lazy).
    pub fn zip<Q: Producer>(self, other: ParIter<Q>) -> ParIter<ZipProducer<P, Q>> {
        ParIter {
            producer: ZipProducer {
                a: self.producer,
                b: other.producer,
            },
            min_len: self.min_len.max(other.min_len),
            max_len: self.max_len.min(other.max_len),
        }
    }

    /// Attach the global item index (lazy).
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        ParIter {
            producer: EnumerateProducer {
                base: self.producer,
                offset: 0,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Run `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        let chunk = self.chunk();
        drive_for_each(self.producer, chunk, &f);
    }

    /// Collect all items, preserving index order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<P::Item>,
    {
        C::from_par_iter(self)
    }

    /// Rayon-style fold: `identity` creates one accumulator per chunk,
    /// `fold_op` folds the chunk's items into it. The result is a lazy
    /// "iterator of accumulators" consumed by [`ParFold::reduce`].
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParFold<P, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync,
        F: Fn(T, P::Item) -> T + Send + Sync,
    {
        ParFold {
            producer: self.producer,
            min_len: self.min_len,
            max_len: self.max_len,
            identity,
            fold_op,
        }
    }

    /// Rayon-style reduce: combine all items with `op`, starting each chunk
    /// from `identity()`. Chunk results merge in index order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        let chunk = self.chunk();
        let leaf = |p: P| {
            let mut acc = identity();
            for item in p.into_seq() {
                acc = op(acc, item);
            }
            acc
        };
        match drive_reduce(self.producer, chunk, &leaf, &op) {
            Some(value) => value,
            None => identity(),
        }
    }
}

/// Lazy result of [`ParIter::fold`]: per-chunk accumulators awaiting a
/// final [`ParFold::reduce`].
pub struct ParFold<P, ID, F> {
    producer: P,
    min_len: usize,
    max_len: usize,
    identity: ID,
    fold_op: F,
}

impl<P, T, ID, F> ParFold<P, ID, F>
where
    P: Producer,
    T: Send,
    ID: Fn() -> T + Send + Sync,
    F: Fn(T, P::Item) -> T + Send + Sync,
{
    /// Merge the per-chunk accumulators with `op`, in index order.
    pub fn reduce<ID2, OP>(self, identity: ID2, op: OP) -> T
    where
        ID2: Fn() -> T + Send + Sync,
        OP: Fn(T, T) -> T + Send + Sync,
    {
        let chunk = fv_runtime::chunk_size(self.producer.len(), self.min_len, self.max_len);
        let chunk_identity = &self.identity;
        let fold_op = &self.fold_op;
        let leaf = move |p: P| {
            let mut acc = chunk_identity();
            for item in p.into_seq() {
                acc = fold_op(acc, item);
            }
            acc
        };
        match drive_reduce(self.producer, chunk, &leaf, &op) {
            Some(value) => value,
            None => identity(),
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel drivers (recursive join over chunk-aligned splits)
// ---------------------------------------------------------------------------

fn drive_for_each<P, F>(producer: P, chunk: usize, f: &F)
where
    P: Producer,
    F: Fn(P::Item) + Sync,
{
    let len = producer.len();
    if len == 0 {
        return;
    }
    if len <= chunk {
        for item in producer.into_seq() {
            f(item);
        }
        return;
    }
    let mid = fv_runtime::split_point(len, chunk);
    let (l, r) = producer.split_at(mid);
    fv_runtime::join(
        || drive_for_each(l, chunk, f),
        || drive_for_each(r, chunk, f),
    );
}

fn drive_collect_into<P>(producer: P, chunk: usize, out: SendPtr<P::Item>, offset: usize)
where
    P: Producer,
{
    let len = producer.len();
    if len == 0 {
        return;
    }
    if len <= chunk {
        for (i, item) in producer.into_seq().enumerate() {
            // Safety: every producer index maps to exactly one output slot,
            // and the caller sized the allocation to the total length.
            unsafe { out.0.add(offset + i).write(item) };
        }
        return;
    }
    let mid = fv_runtime::split_point(len, chunk);
    let (l, r) = producer.split_at(mid);
    fv_runtime::join(
        || drive_collect_into(l, chunk, out, offset),
        || drive_collect_into(r, chunk, out, offset + mid),
    );
}

fn drive_reduce<P, T, L, OP>(producer: P, chunk: usize, leaf: &L, op: &OP) -> Option<T>
where
    P: Producer,
    T: Send,
    L: Fn(P) -> T + Sync,
    OP: Fn(T, T) -> T + Sync,
{
    let len = producer.len();
    if len == 0 {
        return None;
    }
    if len <= chunk {
        return Some(leaf(producer));
    }
    let mid = fv_runtime::split_point(len, chunk);
    let (l, r) = producer.split_at(mid);
    let (left, right) = fv_runtime::join(
        || drive_reduce(l, chunk, leaf, op),
        || drive_reduce(r, chunk, leaf, op),
    );
    match (left, right) {
        (Some(a), Some(b)) => Some(op(a, b)),
        (Some(a), None) => Some(a),
        (None, b) => b,
    }
}

// ---------------------------------------------------------------------------
// Collection + entry-point traits
// ---------------------------------------------------------------------------

/// Types a [`ParIter`] can collect into (order-preserving).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the collection from a parallel iterator.
    fn from_par_iter<P: Producer<Item = T>>(iter: ParIter<P>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: Producer<Item = T>>(iter: ParIter<P>) -> Self {
        let len = iter.len();
        let chunk = iter.chunk();
        let mut out: Vec<T> = Vec::with_capacity(len);
        let base = SendPtr(out.as_mut_ptr());
        drive_collect_into(iter.producer, chunk, base, 0);
        // Safety: drive_collect_into wrote every slot in [0, len) exactly
        // once. On panic we never reach this line; the vector drops empty
        // and written elements leak, which is safe.
        unsafe { out.set_len(len) };
        out
    }
}

/// `into_par_iter` for owned/range sources.
pub trait IntoParallelIterator {
    /// The producer this source converts into.
    type P: Producer;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::P>;
}

/// `par_iter` / `par_chunks` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>;
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
        ParIter::new(SliceProducer(self))
    }

    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(size > 0, "par_chunks: chunk size must be non-zero");
        ParIter::new(ChunksProducer { slice: self, size })
    }
}

/// `par_iter_mut` / `par_chunks_mut` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>>;
    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>> {
        ParIter::new(SliceMutProducer(self))
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(size > 0, "par_chunks_mut: chunk size must be non-zero");
        ParIter::new(ChunksMutProducer { slice: self, size })
    }
}

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use fv_runtime::Pool;

    #[test]
    fn slice_combinators_behave_like_std() {
        let v = [1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut out = vec![0u32; 4];
        out.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for c in chunk.iter_mut() {
                *c = i as u32;
            }
        });
        assert_eq!(out, vec![0, 0, 1, 1]);
    }

    #[test]
    fn fold_reduce_matches_rayon_shape() {
        let total = (0usize..10)
            .into_par_iter()
            .with_min_len(4)
            .fold(|| 0usize, |acc, x| acc + x)
            .reduce(|| 0usize, |a, b| a + b);
        assert_eq!(total, 45);
    }

    #[test]
    fn zip_chains() {
        let a = [1, 2, 3];
        let mut b = vec![0, 0, 0];
        b.par_iter_mut().zip(a.par_iter()).for_each(|(o, &x)| *o = x * 10);
        assert_eq!(b, vec![10, 20, 30]);
        assert!(super::current_num_threads() >= 1);
        assert_eq!(super::join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn large_for_each_covers_all_items_in_parallel() {
        let pool = Pool::new(4);
        let mut out = vec![0usize; 100_000];
        pool.install(|| {
            out.par_iter_mut().enumerate().for_each(|(i, v)| *v = i * 3);
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn collect_preserves_order_at_any_width() {
        let expected: Vec<u64> = (0..50_000u64).map(|i| i * i).collect();
        for width in [1, 2, 8] {
            let pool = Pool::new(width);
            let got: Vec<u64> =
                pool.install(|| (0..50_000u64).into_par_iter().map(|i| i * i).collect());
            assert_eq!(got, expected, "width {width}");
        }
    }

    #[test]
    fn float_fold_reduce_bitwise_identical_across_widths() {
        // Deterministic mode (the default in tests): identical chunk
        // geometry and reduction tree at every pool width, so the sum of an
        // associativity-sensitive series has one bit pattern.
        let sum_in = |width: usize| {
            let pool = Pool::new(width);
            pool.install(|| {
                (0..100_000usize)
                    .into_par_iter()
                    .map(|i| (i as f32).sqrt() * 1e-3)
                    .fold(|| 0.0f32, |a, x| a + x)
                    .reduce(|| 0.0f32, |a, b| a + b)
            })
        };
        let one = sum_in(1);
        assert_eq!(one.to_bits(), sum_in(2).to_bits());
        assert_eq!(one.to_bits(), sum_in(8).to_bits());
    }

    #[test]
    fn zip_of_chunks_splits_consistently() {
        // The par_matmul access pattern: chunks of two different widths
        // zipped together must stay row-aligned through splits.
        let k = 3;
        let n = 2;
        let rows = 1000;
        let a: Vec<u32> = (0..rows * k).map(|i| i as u32).collect();
        let mut out = vec![0u32; rows * n];
        let pool = Pool::new(4);
        pool.install(|| {
            out.par_chunks_mut(n).zip(a.par_chunks(k)).for_each(|(o, ar)| {
                o[0] = ar.iter().sum();
                o[1] = ar[0];
            });
        });
        for r in 0..rows {
            let base = (r * k) as u32;
            assert_eq!(out[r * n], base * 3 + 3);
            assert_eq!(out[r * n + 1], base);
        }
    }

    #[test]
    fn panic_inside_for_each_propagates() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..10_000usize).into_par_iter().for_each(|i| {
                    if i == 7_777 {
                        panic!("item panic");
                    }
                });
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: [f32; 0] = [];
        let collected: Vec<f32> = empty.par_iter().map(|&x| x).collect();
        assert!(collected.is_empty());
        let total = (0usize..0)
            .into_par_iter()
            .fold(|| 1usize, |a, x| a + x)
            .reduce(|| 7usize, |a, b| a + b);
        assert_eq!(total, 7);
    }
}
