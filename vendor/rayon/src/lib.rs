//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so the real rayon cannot be
//! fetched. This crate reproduces exactly the API surface the `fillvoid`
//! workspace uses — `par_iter`, `par_iter_mut`, `par_chunks`,
//! `par_chunks_mut`, `into_par_iter`, `with_min_len`, rayon-style
//! `fold`/`reduce`, and `current_num_threads` — with *sequential* execution.
//!
//! Every "parallel" iterator is a thin wrapper over the corresponding
//! sequential iterator, so all standard `Iterator` combinators (`map`,
//! `zip`, `enumerate`, `for_each`, `collect`, ...) work unchanged. The two
//! rayon-specific combinators with signatures that differ from `Iterator`
//! (`fold` taking an identity *closure*, and `reduce`) are provided as
//! inherent methods, which take precedence over the `Iterator` trait
//! methods of the same name.
//!
//! Swapping the real rayon back in requires no source changes: delete the
//! `[patch.crates-io]` entry once the registry is reachable.

/// Number of worker threads (always 1: execution is sequential).
pub fn current_num_threads() -> usize {
    1
}

/// Run two closures "in parallel" (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// A "parallel" iterator: a wrapper that delegates to a sequential iterator.
#[derive(Debug, Clone)]
pub struct ParIter<I>(pub I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: ExactSizeIterator> ExactSizeIterator for ParIter<I> {}

impl<I: Iterator> ParIter<I> {
    /// Sequencing hint; a no-op without a thread pool.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Sequencing hint; a no-op without a thread pool.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// Rayon-style fold: `identity` builds each per-thread accumulator (one,
    /// here), `fold_op` folds items into it. Returns a one-item "iterator of
    /// accumulators", matching rayon's shape so `.reduce(...)` chains work.
    pub fn fold<T, ID, F>(self, identity: ID, mut fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        let mut acc = identity();
        for item in self.0 {
            acc = fold_op(acc, item);
        }
        ParIter(std::iter::once(acc))
    }

    /// Rayon-style reduce: folds all items with `op`, starting from
    /// `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, mut op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        let mut acc = identity();
        for item in self.0 {
            acc = op(acc, item);
        }
        acc
    }
}

/// `into_par_iter` for anything iterable (ranges, vectors, ...).
pub trait IntoParallelIterator {
    /// The wrapped sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Convert into a "parallel" iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter` / `par_chunks` over shared slices.
pub trait ParallelSlice<T> {
    /// Sequential stand-in for `rayon`'s `par_iter`.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Sequential stand-in for `rayon`'s `par_chunks`.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(size))
    }
}

/// `par_iter_mut` / `par_chunks_mut` over mutable slices.
pub trait ParallelSliceMut<T> {
    /// Sequential stand-in for `rayon`'s `par_iter_mut`.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
}

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_combinators_behave_like_std() {
        let v = [1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut out = vec![0u32; 4];
        out.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for c in chunk.iter_mut() {
                *c = i as u32;
            }
        });
        assert_eq!(out, vec![0, 0, 1, 1]);
    }

    #[test]
    fn fold_reduce_matches_rayon_shape() {
        let total = (0usize..10)
            .into_par_iter()
            .with_min_len(4)
            .fold(|| 0usize, |acc, x| acc + x)
            .reduce(|| 0usize, |a, b| a + b);
        assert_eq!(total, 45);
    }

    #[test]
    fn zip_chains() {
        let a = [1, 2, 3];
        let mut b = vec![0, 0, 0];
        b.par_iter_mut().zip(a.par_iter()).for_each(|(o, &x)| *o = x * 10);
        assert_eq!(b, vec![10, 20, 30]);
        assert_eq!(super::current_num_threads(), 1);
        assert_eq!(super::join(|| 1, || 2), (1, 2));
    }
}
