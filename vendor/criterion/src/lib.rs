//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real criterion
//! cannot be fetched. This crate reproduces the macro/type surface the
//! `fv-bench` benches use — `criterion_group!`, `criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`] and [`black_box`] — with a simple mean-of-samples
//! wall-clock measurement printed to stdout (no statistics, plots or
//! HTML reports).

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: 10,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench("", id, 10, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measurement-time hint; a no-op here.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Time a closure.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_bench(&self.group, &id.to_string(), self.sample_size, f);
        self
    }

    /// Time a closure against a prepared input.
    pub fn bench_with_input<I: std::fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_bench(&self.group, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (prints nothing extra).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        total_nanos: 0,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.total_nanos as f64 / b.iters as f64
    } else {
        0.0
    };
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench: {label}: {:.3} ms/iter ({} iters)", mean / 1e6, b.iters);
}

/// Passed to bench closures; times the workload.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Run `routine` `sample_size` times, timing each run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up, then timed samples.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

/// Benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($fn_name:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $fn_name(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
