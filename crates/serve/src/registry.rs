//! Model registry: `(dataset, model_version)` → trained pipeline, with
//! LRU eviction under a byte budget.
//!
//! Models arrive from two sources: direct in-memory registration (tests,
//! benches, co-located in-situ producers) and lazy disk loading under a
//! configured root. On disk a key `(dataset, v)` resolves to either a
//! single FVPL pipeline file `<root>/<dataset>/v<v>.fvpl` or — the
//! fine-tuned, crash-safe path — a `CheckpointStore` directory
//! `<root>/<dataset>/v<v>/` whose newest valid FVCK generation wins.
//!
//! Entries are `Arc`'d: eviction only drops the registry's reference, so
//! requests already holding the model finish unaffected. Each entry
//! carries its own circuit [`Breaker`] — a model that keeps panicking or
//! emitting non-finite output is demoted to the classical fallback
//! without affecting its neighbors.
//!
//! On top of the cache sits the **model lifecycle**: each dataset may
//! have one *active* (promoted) version that new sessions resolve to,
//! and [`ModelRegistry::promote`] advances it with zero downtime. A
//! candidate version N+1 is canary-validated (a reconstruction against a
//! stored [`CanarySpec`], gated on finiteness, an optional bitwise
//! fingerprint, and an optional SNR floor) *before* anything is
//! installed — a failing canary is a typed `SwapRejected` and the world
//! is untouched (automatic rollback is trivial because promotion is
//! install-last). On success the displaced version enters the *retiring*
//! list: already-open sessions keep their pinned `Arc<ModelEntry>` and
//! drain naturally, new sessions route to N+1, and
//! [`ModelRegistry::poll_drains`] retires a version the moment the
//! registry holds the last reference. Retiring entries are exempt from
//! LRU eviction (evicting one could not free its memory — the sessions
//! still hold it — but would break drain tracking), which also makes the
//! budget a soft bound while drains are in flight.

use crate::breaker::{Breaker, BreakerState};
use crate::error::ServeError;
use fillvoid_core::checkpoint::CheckpointStore;
use fillvoid_core::{metrics, FcnnPipeline};
use fv_field::ScalarField;
use fv_runtime::{chaos, telemetry};
use fv_sampling::PointCloud;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

static TM_HIT: telemetry::Counter = telemetry::Counter::new("serve.registry.hit");
static TM_MISS: telemetry::Counter = telemetry::Counter::new("serve.registry.miss");
static TM_EVICT: telemetry::Counter = telemetry::Counter::new("serve.registry.evict");
static TM_BYTES: telemetry::Gauge = telemetry::Gauge::new("serve.registry.bytes");
static TM_SWAP_PROMOTED: telemetry::Counter = telemetry::Counter::new("serve.swap.promoted");
static TM_SWAP_REJECTED: telemetry::Counter = telemetry::Counter::new("serve.swap.rejected");
static TM_SWAP_RETIRED: telemetry::Counter = telemetry::Counter::new("serve.swap.retired");
static TM_DRAIN: telemetry::Site = telemetry::Site::new("serve.swap.drain", None);
static TM_CANARY: telemetry::Site = telemetry::Site::new("serve.canary", None);

/// FNV-1a over the raw little-endian bits of a float slice. Used for
/// canary fingerprints and by the bench/CI gates to compare served
/// volumes bitwise without shipping both around.
pub fn fingerprint_f32(vals: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in vals {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The stored validation probe a candidate model must pass before
/// promotion: reconstruct `reference.grid()` from `cloud` and hold the
/// output to the configured gates. Finiteness is always required;
/// `fingerprint` pins the output bitwise (for "retrained but must match"
/// flows), `snr_floor_db` bounds quality for genuinely new weights.
#[derive(Clone)]
pub struct CanarySpec {
    /// Sample cloud the canary reconstructs from.
    pub cloud: Arc<PointCloud>,
    /// Ground-truth field; its grid is the canary's target grid.
    pub reference: ScalarField,
    /// Minimum acceptable SNR (dB) of the canary output vs `reference`.
    pub snr_floor_db: Option<f64>,
    /// Exact [`fingerprint_f32`] the canary output must reproduce.
    pub fingerprint: Option<u64>,
}

/// Lifecycle counters, exported for benches and the `Stats` op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapStats {
    /// Successful promotions.
    pub promoted: u64,
    /// Rejected promotions (stale version, failed canary, oversized).
    pub rejected: u64,
    /// Displaced versions fully drained and dropped.
    pub retired: u64,
    /// Displaced versions still pinned by live sessions.
    pub draining: usize,
    /// Drain latency of the most recently retired version (ms).
    pub last_drain_ms: f64,
    /// Worst drain latency seen (ms).
    pub max_drain_ms: f64,
    /// Canary reconstructions run.
    pub canary_runs: u64,
    /// Total wall-clock spent in canary reconstructions (ms).
    pub canary_ms_total: f64,
}

/// Registry key.
pub type ModelKey = (String, u32);

/// One resident model.
#[derive(Debug)]
pub struct ModelEntry {
    /// Registry key.
    pub key: ModelKey,
    /// The trained pipeline (immutable once registered).
    pub pipeline: FcnnPipeline,
    /// Serialized size, charged against the registry budget.
    pub size_bytes: usize,
    breaker: Mutex<Breaker>,
}

impl ModelEntry {
    /// Breaker gate for one request; `false` demotes to the fallback.
    pub fn breaker_allow(&self) -> bool {
        self.breaker.lock().expect("breaker lock").allow()
    }

    /// Record a model-path outcome.
    pub fn breaker_record(&self, ok: bool) {
        let mut b = self.breaker.lock().expect("breaker lock");
        if ok {
            b.record_success()
        } else {
            b.record_failure()
        }
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.lock().expect("breaker lock").state()
    }

    /// Times this model's breaker tripped.
    pub fn breaker_opens(&self) -> u64 {
        self.breaker.lock().expect("breaker lock").opens()
    }
}

struct Slot {
    entry: Arc<ModelEntry>,
    last_used: u64,
}

struct Retiring {
    key: ModelKey,
    since: Instant,
}

struct Inner {
    slots: HashMap<ModelKey, Slot>,
    /// Per-dataset promoted version; what `VERSION_ACTIVE` resolves to.
    active: HashMap<String, u32>,
    /// Displaced versions waiting for their last session to drain.
    retiring: Vec<Retiring>,
    bytes: usize,
    tick: u64,
}

/// Byte-budgeted LRU model registry with a hot-swap lifecycle.
pub struct ModelRegistry {
    budget: usize,
    root: Option<PathBuf>,
    breaker_threshold: u32,
    breaker_probe_after: u32,
    inner: Mutex<Inner>,
    /// Canary specs live outside `inner`: the canary reconstruction runs
    /// without holding the registry lock, so resident-model lookups are
    /// never blocked behind a model forward pass.
    canaries: Mutex<HashMap<String, Arc<CanarySpec>>>,
    swap_promoted: AtomicU64,
    swap_rejected: AtomicU64,
    swap_retired: AtomicU64,
    drain_last_ns: AtomicU64,
    drain_max_ns: AtomicU64,
    canary_runs: AtomicU64,
    canary_ns: AtomicU64,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry lock");
        f.debug_struct("ModelRegistry")
            .field("budget", &self.budget)
            .field("root", &self.root)
            .field("models", &inner.slots.len())
            .field("bytes", &inner.bytes)
            .finish()
    }
}

impl ModelRegistry {
    /// An in-memory-only registry under a byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget: budget_bytes.max(1),
            root: None,
            breaker_threshold: 3,
            breaker_probe_after: 8,
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                active: HashMap::new(),
                retiring: Vec::new(),
                bytes: 0,
                tick: 0,
            }),
            canaries: Mutex::new(HashMap::new()),
            swap_promoted: AtomicU64::new(0),
            swap_rejected: AtomicU64::new(0),
            swap_retired: AtomicU64::new(0),
            drain_last_ns: AtomicU64::new(0),
            drain_max_ns: AtomicU64::new(0),
            canary_runs: AtomicU64::new(0),
            canary_ns: AtomicU64::new(0),
        }
    }

    /// Resolve cache misses from `<root>/<dataset>/v<version>{.fvpl,/}`.
    pub fn with_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.root = Some(root.into());
        self
    }

    /// Configure per-model breakers (consecutive failures to trip, denied
    /// requests per recovery probe).
    pub fn with_breaker(mut self, threshold: u32, probe_after: u32) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_probe_after = probe_after;
        self
    }

    /// Register an in-memory pipeline; returns its entry.
    ///
    /// The first version inserted for a dataset becomes its *active*
    /// version (so freshly seeded deployments resolve `VERSION_ACTIVE`
    /// without an explicit promotion); later inserts never move the
    /// active pointer — that is [`Self::promote`]'s job.
    pub fn insert(
        &self,
        dataset: impl Into<String>,
        version: u32,
        pipeline: FcnnPipeline,
    ) -> Result<Arc<ModelEntry>, ServeError> {
        let key = (dataset.into(), version);
        let mut payload = Vec::new();
        pipeline.write_to(&mut payload)?;
        let entry = Arc::new(ModelEntry {
            key: key.clone(),
            pipeline,
            size_bytes: payload.len(),
            breaker: Mutex::new(Breaker::new(self.breaker_threshold, self.breaker_probe_after)),
        });
        let mut inner = self.inner.lock().expect("registry lock");
        let dataset_name = key.0.clone();
        self.admit(&mut inner, key, entry.clone())?;
        inner.active.entry(dataset_name).or_insert(version);
        Ok(entry)
    }

    /// Look a model up, loading from disk on a miss.
    pub fn get(&self, dataset: &str, version: u32) -> Result<Arc<ModelEntry>, ServeError> {
        let key = (dataset.to_string(), version);
        {
            let mut inner = self.inner.lock().expect("registry lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.slots.get_mut(&key) {
                slot.last_used = tick;
                TM_HIT.incr();
                return Ok(slot.entry.clone());
            }
        }
        TM_MISS.incr();
        // Load outside the lock: a slow disk read must not block lookups
        // of resident models. A racing load of the same key is harmless —
        // the second admit finds the key present and returns the winner.
        let pipeline = self.load_from_disk(dataset, version)?;
        let mut payload = Vec::new();
        pipeline.write_to(&mut payload)?;
        let entry = Arc::new(ModelEntry {
            key: key.clone(),
            pipeline,
            size_bytes: payload.len(),
            breaker: Mutex::new(Breaker::new(self.breaker_threshold, self.breaker_probe_after)),
        });
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(slot) = inner.slots.get(&key) {
            return Ok(slot.entry.clone());
        }
        self.admit(&mut inner, key, entry.clone())?;
        Ok(entry)
    }

    /// Insert under the budget, evicting least-recently-used entries as
    /// needed (never the entry being admitted, and never a retiring
    /// entry: its memory is pinned by live sessions, so evicting it
    /// frees nothing and would only lose the drain bookkeeping). When
    /// only retiring entries remain the budget is allowed to overshoot
    /// temporarily; [`Self::poll_drains`] reclaims the bytes as soon as
    /// the last session lets go.
    fn admit(
        &self,
        inner: &mut Inner,
        key: ModelKey,
        entry: Arc<ModelEntry>,
    ) -> Result<(), ServeError> {
        if entry.size_bytes > self.budget {
            return Err(ServeError::BudgetExhausted {
                need: entry.size_bytes,
                budget: self.budget,
            });
        }
        if let Some(old) = inner.slots.remove(&key) {
            inner.bytes -= old.entry.size_bytes;
        }
        while inner.bytes + entry.size_bytes > self.budget {
            let victim = {
                let retiring = &inner.retiring;
                inner
                    .slots
                    .iter()
                    .filter(|(k, _)| !retiring.iter().any(|r| &r.key == *k))
                    .min_by_key(|(_, s)| s.last_used)
                    .map(|(k, _)| k.clone())
            };
            match victim {
                Some(k) => {
                    let slot = inner.slots.remove(&k).expect("victim present");
                    inner.bytes -= slot.entry.size_bytes;
                    TM_EVICT.incr();
                }
                None => break, // only retiring entries left; overshoot until they drain
            }
        }
        inner.bytes += entry.size_bytes;
        inner.tick += 1;
        let tick = inner.tick;
        inner.slots.insert(key, Slot { entry, last_used: tick });
        TM_BYTES.set(inner.bytes as u64);
        Ok(())
    }

    fn load_from_disk(&self, dataset: &str, version: u32) -> Result<FcnnPipeline, ServeError> {
        let root = self.root.as_ref().ok_or_else(|| ServeError::UnknownModel {
            dataset: dataset.to_string(),
            version,
        })?;
        // Keys are path components: reject separators so a tenant cannot
        // point the registry outside its root.
        if dataset.is_empty() || dataset.contains(['/', '\\', '.']) {
            return Err(ServeError::UnknownModel {
                dataset: dataset.to_string(),
                version,
            });
        }
        let base = root.join(dataset);
        let fvpl = base.join(format!("v{version}.fvpl"));
        if fvpl.is_file() {
            return Ok(FcnnPipeline::load(&fvpl)?);
        }
        let ckpt_dir = base.join(format!("v{version}"));
        if ckpt_dir.is_dir() {
            let store = CheckpointStore::open(&ckpt_dir, 4)?;
            if let Some((_gen, pipeline)) = store.load_latest()? {
                return Ok(pipeline);
            }
        }
        Err(ServeError::UnknownModel {
            dataset: dataset.to_string(),
            version,
        })
    }

    /// Resident model count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").slots.len()
    }

    /// `true` when no models are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("registry lock").bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Is this key resident (without touching LRU order)?
    pub fn contains(&self, dataset: &str, version: u32) -> bool {
        self.inner
            .lock()
            .expect("registry lock")
            .slots
            .contains_key(&(dataset.to_string(), version))
    }

    // -----------------------------------------------------------------
    // Model lifecycle: promote / canary / drain
    // -----------------------------------------------------------------

    /// The currently promoted version for a dataset, if any.
    pub fn active_version(&self, dataset: &str) -> Option<u32> {
        self.inner
            .lock()
            .expect("registry lock")
            .active
            .get(dataset)
            .copied()
    }

    /// Install (or replace) the canary probe candidate promotions for
    /// `dataset` must pass.
    pub fn set_canary(&self, dataset: impl Into<String>, spec: CanarySpec) {
        self.canaries
            .lock()
            .expect("canary lock")
            .insert(dataset.into(), Arc::new(spec));
    }

    fn canary_for(&self, dataset: &str) -> Option<Arc<CanarySpec>> {
        self.canaries
            .lock()
            .expect("canary lock")
            .get(dataset)
            .cloned()
    }

    fn reject(&self, dataset: &str, version: u32, reason: String) -> ServeError {
        TM_SWAP_REJECTED.incr();
        self.swap_rejected.fetch_add(1, Ordering::Relaxed);
        ServeError::SwapRejected {
            dataset: dataset.to_string(),
            version,
            reason,
        }
    }

    /// Promote `pipeline` as the new active version of `dataset`.
    ///
    /// Zero-downtime contract: the candidate is serialized (for budget
    /// accounting) and canary-validated *before* anything is installed,
    /// so every failure path — stale version, oversized entry, failed
    /// canary, injected `serve.swap`/`serve.canary` fault — returns a
    /// typed [`ServeError::SwapRejected`] with the previous version
    /// still serving, untouched ("rollback" is the absence of any
    /// partial install). On success the new version is admitted, the
    /// active pointer moves, and the displaced version (if resident)
    /// enters the retiring list: sessions opened against it keep their
    /// pinned `Arc` and the version is dropped by [`Self::poll_drains`]
    /// once the registry holds the last reference.
    ///
    /// `validate` gates the canary (servers expose it as
    /// `FV_SERVE_CANARY=0`); with no [`CanarySpec`] stored for the
    /// dataset the candidate is vetted only by having deserialized into
    /// a working pipeline.
    ///
    /// Versions must be strictly increasing per dataset. The staleness
    /// check runs again after the (lock-free) canary so two racing
    /// promotions resolve cleanly: the loser is rejected, never
    /// installed over the winner.
    pub fn promote(
        &self,
        dataset: &str,
        version: u32,
        pipeline: FcnnPipeline,
        validate: bool,
    ) -> Result<Arc<ModelEntry>, ServeError> {
        chaos::point("serve.swap");
        if let Some(e) = chaos::io_error("serve.swap") {
            return Err(self.reject(dataset, version, format!("injected fault: {e}")));
        }
        if let Some(cur) = self.active_version(dataset) {
            if version <= cur {
                return Err(self.reject(
                    dataset,
                    version,
                    format!("not newer than active v{cur}"),
                ));
            }
        }
        let mut payload = Vec::new();
        pipeline
            .write_to(&mut payload)
            .map_err(|e| self.reject(dataset, version, format!("serialize: {e}")))?;
        if payload.len() > self.budget {
            return Err(self.reject(
                dataset,
                version,
                format!("needs {} B, budget is {} B", payload.len(), self.budget),
            ));
        }
        let entry = Arc::new(ModelEntry {
            key: (dataset.to_string(), version),
            pipeline,
            size_bytes: payload.len(),
            breaker: Mutex::new(Breaker::new(self.breaker_threshold, self.breaker_probe_after)),
        });
        if validate {
            if let Some(spec) = self.canary_for(dataset) {
                self.run_canary(&entry, &spec)
                    .map_err(|reason| self.reject(dataset, version, reason))?;
            }
        }

        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(&cur) = inner.active.get(dataset) {
            if version <= cur {
                drop(inner);
                return Err(self.reject(
                    dataset,
                    version,
                    format!("superseded by concurrent promotion to v{cur}"),
                ));
            }
        }
        // Mark the displaced version retiring *before* the admission's
        // LRU sweep runs: retiring keys are eviction-exempt, so the
        // version being drained can never be the victim that makes room
        // for its own successor (that would strand its sessions without
        // drain tracking).
        if let Some(&old_v) = inner.active.get(dataset) {
            let old_key = (dataset.to_string(), old_v);
            if inner.slots.contains_key(&old_key)
                && !inner.retiring.iter().any(|r| r.key == old_key)
            {
                inner.retiring.push(Retiring {
                    key: old_key,
                    since: Instant::now(),
                });
            }
        }
        self.admit(&mut inner, entry.key.clone(), entry.clone())?;
        inner.active.insert(dataset.to_string(), version);
        TM_SWAP_PROMOTED.incr();
        self.swap_promoted.fetch_add(1, Ordering::Relaxed);
        self.poll_drains_locked(&mut inner);
        Ok(entry)
    }

    /// Run the canary reconstruction for a candidate entry. Returns the
    /// rejection reason on failure. Called without the registry lock —
    /// resident lookups proceed while the canary's forward pass runs.
    fn run_canary(&self, entry: &ModelEntry, spec: &CanarySpec) -> Result<(), String> {
        chaos::point("serve.canary");
        if let Some(e) = chaos::io_error("serve.canary") {
            return Err(format!("canary: injected fault: {e}"));
        }
        let t0 = Instant::now();
        let out = entry
            .pipeline
            .reconstruct(&spec.cloud, spec.reference.grid())
            .map_err(|e| format!("canary reconstruction failed: {e}"))?;
        let mut vals = out.into_values();
        chaos::corrupt_f32("serve.canary", &mut vals);
        let dt = t0.elapsed();
        TM_CANARY.record_duration(dt);
        self.canary_runs.fetch_add(1, Ordering::Relaxed);
        self.canary_ns
            .fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
        if !vals.iter().all(|v| v.is_finite()) {
            return Err("canary produced non-finite output".into());
        }
        if let Some(expect) = spec.fingerprint {
            let got = fingerprint_f32(&vals);
            if got != expect {
                return Err(format!(
                    "canary fingerprint {got:#018x} != expected {expect:#018x}"
                ));
            }
        }
        if let Some(floor) = spec.snr_floor_db {
            let field = ScalarField::from_vec(*spec.reference.grid(), vals)
                .map_err(|e| format!("canary output rejected: {e}"))?;
            let snr = metrics::snr_db(&spec.reference, &field);
            if snr < floor || snr.is_nan() {
                return Err(format!("canary snr {snr:.2} dB below floor {floor:.2} dB"));
            }
        }
        Ok(())
    }

    /// Retire every displaced version whose last outside reference is
    /// gone; returns how many were dropped. Safe against racing lookups
    /// because cloning a slot's `Arc` requires the same lock held here:
    /// a strong count of 1 observed under the lock cannot concurrently
    /// grow. Cheap when nothing is draining — callers sprinkle it on
    /// session close, batch completion, and idle ticks.
    pub fn poll_drains(&self) -> usize {
        let mut inner = self.inner.lock().expect("registry lock");
        self.poll_drains_locked(&mut inner)
    }

    fn poll_drains_locked(&self, inner: &mut Inner) -> usize {
        let mut retired = 0usize;
        let mut i = 0usize;
        while i < inner.retiring.len() {
            let key = &inner.retiring[i].key;
            // Self-healing guard: a key that is (still or again) the
            // dataset's active version must never be retired out from
            // under new sessions — drop the stale retiring record.
            if inner.active.get(&key.0) == Some(&key.1) {
                inner.retiring.swap_remove(i);
                continue;
            }
            let drained = match inner.slots.get(&inner.retiring[i].key) {
                Some(slot) => Arc::strong_count(&slot.entry) == 1,
                None => true, // slot already gone; nothing left to free
            };
            if drained {
                let r = inner.retiring.swap_remove(i);
                if let Some(slot) = inner.slots.remove(&r.key) {
                    inner.bytes -= slot.entry.size_bytes;
                    TM_BYTES.set(inner.bytes as u64);
                }
                let dt = r.since.elapsed();
                TM_DRAIN.record_duration(dt);
                let ns = dt.as_nanos().min(u64::MAX as u128) as u64;
                self.drain_last_ns.store(ns, Ordering::Relaxed);
                self.drain_max_ns.fetch_max(ns, Ordering::Relaxed);
                TM_SWAP_RETIRED.incr();
                self.swap_retired.fetch_add(1, Ordering::Relaxed);
                retired += 1;
            } else {
                i += 1;
            }
        }
        retired
    }

    /// Lifecycle counters snapshot.
    pub fn swap_stats(&self) -> SwapStats {
        let draining = self.inner.lock().expect("registry lock").retiring.len();
        SwapStats {
            promoted: self.swap_promoted.load(Ordering::Relaxed),
            rejected: self.swap_rejected.load(Ordering::Relaxed),
            retired: self.swap_retired.load(Ordering::Relaxed),
            draining,
            last_drain_ms: self.drain_last_ns.load(Ordering::Relaxed) as f64 / 1e6,
            max_drain_ms: self.drain_max_ns.load(Ordering::Relaxed) as f64 / 1e6,
            canary_runs: self.canary_runs.load(Ordering::Relaxed),
            canary_ms_total: self.canary_ns.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fillvoid_core::PipelineConfig;
    use fv_field::{Grid3, ScalarField};

    fn tiny_pipeline(seed: u64) -> FcnnPipeline {
        let g = Grid3::new([8, 8, 4]).unwrap();
        let f = ScalarField::from_world_fn(g, |p| (p[0] * 0.3).sin() as f32 + p[1] as f32 * 0.1);
        let mut cfg = PipelineConfig::small_for_tests();
        cfg.trainer.epochs = 2;
        FcnnPipeline::train(&f, &cfg, seed).unwrap()
    }

    #[test]
    fn lru_evicts_under_budget() {
        let p = tiny_pipeline(1);
        let mut bytes = Vec::new();
        p.write_to(&mut bytes).unwrap();
        let one = bytes.len();
        // Budget for two models: inserting a third evicts the LRU.
        let reg = ModelRegistry::new(one * 2 + one / 2);
        reg.insert("a", 0, p.clone()).unwrap();
        reg.insert("b", 0, p.clone()).unwrap();
        assert_eq!(reg.len(), 2);
        reg.get("a", 0).unwrap(); // touch "a": "b" becomes LRU
        reg.insert("c", 0, p.clone()).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.contains("a", 0) && reg.contains("c", 0));
        assert!(!reg.contains("b", 0));
        assert!(reg.bytes() <= reg.budget());
    }

    #[test]
    fn oversized_model_rejected_outright() {
        let p = tiny_pipeline(2);
        let reg = ModelRegistry::new(16);
        assert!(matches!(
            reg.insert("a", 0, p),
            Err(ServeError::BudgetExhausted { .. })
        ));
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn disk_roundtrip_via_fvpl_and_checkpoint_store() {
        let p = tiny_pipeline(3);
        let dir = std::env::temp_dir().join(format!("fv_serve_reg_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("hurricane")).unwrap();
        p.save(dir.join("hurricane/v1.fvpl")).unwrap();
        let mut store = CheckpointStore::open(dir.join("hurricane/v2"), 2).unwrap();
        store.save(&p).unwrap();

        let reg = ModelRegistry::new(64 << 20).with_root(&dir);
        let a = reg.get("hurricane", 1).unwrap();
        let b = reg.get("hurricane", 2).unwrap();
        assert_eq!(a.pipeline.mlp(), p.mlp());
        assert_eq!(b.pipeline.mlp(), p.mlp());
        assert!(matches!(
            reg.get("hurricane", 9),
            Err(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            reg.get("../hurricane", 1),
            Err(ServeError::UnknownModel { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn promote_routes_new_lookups_and_drains_the_displaced_version() {
        let reg = ModelRegistry::new(64 << 20);
        reg.insert("h", 1, tiny_pipeline(10)).unwrap();
        assert_eq!(reg.active_version("h"), Some(1));

        // A "session" pins v1 the way SessionManager does: by Arc.
        let pinned = reg.get("h", 1).unwrap();

        reg.promote("h", 2, tiny_pipeline(11), true).unwrap();
        assert_eq!(reg.active_version("h"), Some(2));
        let s = reg.swap_stats();
        assert_eq!((s.promoted, s.retired, s.draining), (1, 0, 1));
        // v1 still resident and serving for its pinned session.
        assert!(reg.contains("h", 1) && reg.contains("h", 2));

        // Last reference drops -> v1 retires on the next poll.
        drop(pinned);
        assert_eq!(reg.poll_drains(), 1);
        let s = reg.swap_stats();
        assert_eq!((s.retired, s.draining), (1, 0));
        assert!(!reg.contains("h", 1));
        assert_eq!(reg.bytes(), reg.get("h", 2).unwrap().size_bytes);
    }

    #[test]
    fn stale_and_canary_failing_promotions_are_rejected_without_side_effects() {
        let reg = ModelRegistry::new(64 << 20);
        let v1 = tiny_pipeline(20);
        let g = Grid3::new([8, 8, 4]).unwrap();
        let f = ScalarField::from_world_fn(g, |p| (p[0] * 0.3).sin() as f32 + p[1] as f32 * 0.1);
        reg.insert("h", 1, v1.clone()).unwrap();

        // Stale: not newer than the active version.
        assert!(matches!(
            reg.promote("h", 1, tiny_pipeline(21), true),
            Err(ServeError::SwapRejected { .. })
        ));

        // Fingerprint canary pinned to v1's exact output: a different
        // model must be rejected, and nothing about the world changes.
        use fv_sampling::FieldSampler;
        let cloud = std::sync::Arc::new(fv_sampling::RandomSampler.sample(&f, 0.25, 77));
        let expect = fingerprint_f32(v1.reconstruct(&cloud, f.grid()).unwrap().values());
        reg.set_canary(
            "h",
            CanarySpec {
                cloud: cloud.clone(),
                reference: f.clone(),
                snr_floor_db: None,
                fingerprint: Some(expect),
            },
        );
        let before = reg.bytes();
        assert!(matches!(
            reg.promote("h", 2, tiny_pipeline(22), true),
            Err(ServeError::SwapRejected { .. })
        ));
        assert_eq!(reg.active_version("h"), Some(1));
        assert_eq!(reg.bytes(), before);
        assert!(!reg.contains("h", 2));

        // An impossible SNR floor rejects even a bitwise-matching model.
        reg.set_canary(
            "h",
            CanarySpec {
                cloud,
                reference: f,
                snr_floor_db: Some(f64::INFINITY),
                fingerprint: None,
            },
        );
        assert!(matches!(
            reg.promote("h", 2, v1.clone(), true),
            Err(ServeError::SwapRejected { .. })
        ));
        // validate=false bypasses the canary and succeeds.
        reg.promote("h", 2, v1, false).unwrap();
        assert_eq!(reg.active_version("h"), Some(2));
        let s = reg.swap_stats();
        assert_eq!(s.rejected, 3);
        assert_eq!(s.promoted, 1);
    }

    #[test]
    fn retiring_entries_are_exempt_from_lru_eviction() {
        let p = tiny_pipeline(30);
        let mut bytes = Vec::new();
        p.write_to(&mut bytes).unwrap();
        let one = bytes.len();
        // Budget holds 1.5 models: promoting v2 over a pinned v1 forces
        // the admission sweep to look for a victim, and the only
        // candidate is the version being drained. It must survive (the
        // budget overshoots) rather than be evicted to make room for
        // its own successor.
        let reg = ModelRegistry::new(one + one / 2);
        reg.insert("a", 1, p.clone()).unwrap();
        let pinned = reg.get("a", 1).unwrap();
        reg.promote("a", 2, p, true).unwrap();
        assert!(reg.contains("a", 1), "retiring v1 must survive eviction");
        assert!(reg.contains("a", 2));
        assert!(reg.bytes() > reg.budget(), "budget is soft while draining");
        drop(pinned);
        assert_eq!(reg.poll_drains(), 1);
        assert!(!reg.contains("a", 1));
        assert!(reg.bytes() <= reg.budget());
    }
}
