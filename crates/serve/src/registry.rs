//! Model registry: `(dataset, model_version)` → trained pipeline, with
//! LRU eviction under a byte budget.
//!
//! Models arrive from two sources: direct in-memory registration (tests,
//! benches, co-located in-situ producers) and lazy disk loading under a
//! configured root. On disk a key `(dataset, v)` resolves to either a
//! single FVPL pipeline file `<root>/<dataset>/v<v>.fvpl` or — the
//! fine-tuned, crash-safe path — a `CheckpointStore` directory
//! `<root>/<dataset>/v<v>/` whose newest valid FVCK generation wins.
//!
//! Entries are `Arc`'d: eviction only drops the registry's reference, so
//! requests already holding the model finish unaffected. Each entry
//! carries its own circuit [`Breaker`] — a model that keeps panicking or
//! emitting non-finite output is demoted to the classical fallback
//! without affecting its neighbors.

use crate::breaker::{Breaker, BreakerState};
use crate::error::ServeError;
use fillvoid_core::checkpoint::CheckpointStore;
use fillvoid_core::FcnnPipeline;
use fv_runtime::telemetry;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

static TM_HIT: telemetry::Counter = telemetry::Counter::new("serve.registry.hit");
static TM_MISS: telemetry::Counter = telemetry::Counter::new("serve.registry.miss");
static TM_EVICT: telemetry::Counter = telemetry::Counter::new("serve.registry.evict");
static TM_BYTES: telemetry::Gauge = telemetry::Gauge::new("serve.registry.bytes");

/// Registry key.
pub type ModelKey = (String, u32);

/// One resident model.
#[derive(Debug)]
pub struct ModelEntry {
    /// Registry key.
    pub key: ModelKey,
    /// The trained pipeline (immutable once registered).
    pub pipeline: FcnnPipeline,
    /// Serialized size, charged against the registry budget.
    pub size_bytes: usize,
    breaker: Mutex<Breaker>,
}

impl ModelEntry {
    /// Breaker gate for one request; `false` demotes to the fallback.
    pub fn breaker_allow(&self) -> bool {
        self.breaker.lock().expect("breaker lock").allow()
    }

    /// Record a model-path outcome.
    pub fn breaker_record(&self, ok: bool) {
        let mut b = self.breaker.lock().expect("breaker lock");
        if ok {
            b.record_success()
        } else {
            b.record_failure()
        }
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.lock().expect("breaker lock").state()
    }

    /// Times this model's breaker tripped.
    pub fn breaker_opens(&self) -> u64 {
        self.breaker.lock().expect("breaker lock").opens()
    }
}

struct Slot {
    entry: Arc<ModelEntry>,
    last_used: u64,
}

struct Inner {
    slots: HashMap<ModelKey, Slot>,
    bytes: usize,
    tick: u64,
}

/// Byte-budgeted LRU model registry.
pub struct ModelRegistry {
    budget: usize,
    root: Option<PathBuf>,
    breaker_threshold: u32,
    breaker_probe_after: u32,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry lock");
        f.debug_struct("ModelRegistry")
            .field("budget", &self.budget)
            .field("root", &self.root)
            .field("models", &inner.slots.len())
            .field("bytes", &inner.bytes)
            .finish()
    }
}

impl ModelRegistry {
    /// An in-memory-only registry under a byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget: budget_bytes.max(1),
            root: None,
            breaker_threshold: 3,
            breaker_probe_after: 8,
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
        }
    }

    /// Resolve cache misses from `<root>/<dataset>/v<version>{.fvpl,/}`.
    pub fn with_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.root = Some(root.into());
        self
    }

    /// Configure per-model breakers (consecutive failures to trip, denied
    /// requests per recovery probe).
    pub fn with_breaker(mut self, threshold: u32, probe_after: u32) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_probe_after = probe_after;
        self
    }

    /// Register an in-memory pipeline; returns its entry.
    pub fn insert(
        &self,
        dataset: impl Into<String>,
        version: u32,
        pipeline: FcnnPipeline,
    ) -> Result<Arc<ModelEntry>, ServeError> {
        let key = (dataset.into(), version);
        let mut payload = Vec::new();
        pipeline.write_to(&mut payload)?;
        let entry = Arc::new(ModelEntry {
            key: key.clone(),
            pipeline,
            size_bytes: payload.len(),
            breaker: Mutex::new(Breaker::new(self.breaker_threshold, self.breaker_probe_after)),
        });
        let mut inner = self.inner.lock().expect("registry lock");
        self.admit(&mut inner, key, entry.clone())?;
        Ok(entry)
    }

    /// Look a model up, loading from disk on a miss.
    pub fn get(&self, dataset: &str, version: u32) -> Result<Arc<ModelEntry>, ServeError> {
        let key = (dataset.to_string(), version);
        {
            let mut inner = self.inner.lock().expect("registry lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.slots.get_mut(&key) {
                slot.last_used = tick;
                TM_HIT.incr();
                return Ok(slot.entry.clone());
            }
        }
        TM_MISS.incr();
        // Load outside the lock: a slow disk read must not block lookups
        // of resident models. A racing load of the same key is harmless —
        // the second admit finds the key present and returns the winner.
        let pipeline = self.load_from_disk(dataset, version)?;
        let mut payload = Vec::new();
        pipeline.write_to(&mut payload)?;
        let entry = Arc::new(ModelEntry {
            key: key.clone(),
            pipeline,
            size_bytes: payload.len(),
            breaker: Mutex::new(Breaker::new(self.breaker_threshold, self.breaker_probe_after)),
        });
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(slot) = inner.slots.get(&key) {
            return Ok(slot.entry.clone());
        }
        self.admit(&mut inner, key, entry.clone())?;
        Ok(entry)
    }

    /// Insert under the budget, evicting least-recently-used entries as
    /// needed (never the entry being admitted).
    fn admit(
        &self,
        inner: &mut Inner,
        key: ModelKey,
        entry: Arc<ModelEntry>,
    ) -> Result<(), ServeError> {
        if entry.size_bytes > self.budget {
            return Err(ServeError::BudgetExhausted {
                need: entry.size_bytes,
                budget: self.budget,
            });
        }
        if let Some(old) = inner.slots.remove(&key) {
            inner.bytes -= old.entry.size_bytes;
        }
        while inner.bytes + entry.size_bytes > self.budget {
            let victim = inner
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let slot = inner.slots.remove(&k).expect("victim present");
                    inner.bytes -= slot.entry.size_bytes;
                    TM_EVICT.incr();
                }
                None => break, // nothing left to evict; entry fits by the check above
            }
        }
        inner.bytes += entry.size_bytes;
        inner.tick += 1;
        let tick = inner.tick;
        inner.slots.insert(key, Slot { entry, last_used: tick });
        TM_BYTES.set(inner.bytes as u64);
        Ok(())
    }

    fn load_from_disk(&self, dataset: &str, version: u32) -> Result<FcnnPipeline, ServeError> {
        let root = self.root.as_ref().ok_or_else(|| ServeError::UnknownModel {
            dataset: dataset.to_string(),
            version,
        })?;
        // Keys are path components: reject separators so a tenant cannot
        // point the registry outside its root.
        if dataset.is_empty() || dataset.contains(['/', '\\', '.']) {
            return Err(ServeError::UnknownModel {
                dataset: dataset.to_string(),
                version,
            });
        }
        let base = root.join(dataset);
        let fvpl = base.join(format!("v{version}.fvpl"));
        if fvpl.is_file() {
            return Ok(FcnnPipeline::load(&fvpl)?);
        }
        let ckpt_dir = base.join(format!("v{version}"));
        if ckpt_dir.is_dir() {
            let store = CheckpointStore::open(&ckpt_dir, 4)?;
            if let Some((_gen, pipeline)) = store.load_latest()? {
                return Ok(pipeline);
            }
        }
        Err(ServeError::UnknownModel {
            dataset: dataset.to_string(),
            version,
        })
    }

    /// Resident model count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").slots.len()
    }

    /// `true` when no models are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("registry lock").bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Is this key resident (without touching LRU order)?
    pub fn contains(&self, dataset: &str, version: u32) -> bool {
        self.inner
            .lock()
            .expect("registry lock")
            .slots
            .contains_key(&(dataset.to_string(), version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fillvoid_core::PipelineConfig;
    use fv_field::{Grid3, ScalarField};

    fn tiny_pipeline(seed: u64) -> FcnnPipeline {
        let g = Grid3::new([8, 8, 4]).unwrap();
        let f = ScalarField::from_world_fn(g, |p| (p[0] * 0.3).sin() as f32 + p[1] as f32 * 0.1);
        let mut cfg = PipelineConfig::small_for_tests();
        cfg.trainer.epochs = 2;
        FcnnPipeline::train(&f, &cfg, seed).unwrap()
    }

    #[test]
    fn lru_evicts_under_budget() {
        let p = tiny_pipeline(1);
        let mut bytes = Vec::new();
        p.write_to(&mut bytes).unwrap();
        let one = bytes.len();
        // Budget for two models: inserting a third evicts the LRU.
        let reg = ModelRegistry::new(one * 2 + one / 2);
        reg.insert("a", 0, p.clone()).unwrap();
        reg.insert("b", 0, p.clone()).unwrap();
        assert_eq!(reg.len(), 2);
        reg.get("a", 0).unwrap(); // touch "a": "b" becomes LRU
        reg.insert("c", 0, p.clone()).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.contains("a", 0) && reg.contains("c", 0));
        assert!(!reg.contains("b", 0));
        assert!(reg.bytes() <= reg.budget());
    }

    #[test]
    fn oversized_model_rejected_outright() {
        let p = tiny_pipeline(2);
        let reg = ModelRegistry::new(16);
        assert!(matches!(
            reg.insert("a", 0, p),
            Err(ServeError::BudgetExhausted { .. })
        ));
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn disk_roundtrip_via_fvpl_and_checkpoint_store() {
        let p = tiny_pipeline(3);
        let dir = std::env::temp_dir().join(format!("fv_serve_reg_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("hurricane")).unwrap();
        p.save(dir.join("hurricane/v1.fvpl")).unwrap();
        let mut store = CheckpointStore::open(dir.join("hurricane/v2"), 2).unwrap();
        store.save(&p).unwrap();

        let reg = ModelRegistry::new(64 << 20).with_root(&dir);
        let a = reg.get("hurricane", 1).unwrap();
        let b = reg.get("hurricane", 2).unwrap();
        assert_eq!(a.pipeline.mlp(), p.mlp());
        assert_eq!(b.pipeline.mlp(), p.mlp());
        assert!(matches!(
            reg.get("hurricane", 9),
            Err(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            reg.get("../hurricane", 1),
            Err(ServeError::UnknownModel { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
