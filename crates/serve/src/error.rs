//! Server-side error type.

use crate::proto::ErrorCode;

/// Anything that can go wrong while serving a request.
#[derive(Debug)]
pub enum ServeError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// Model load / reconstruction failure from the core pipeline.
    Core(fillvoid_core::CoreError),
    /// No model registered or loadable under the requested key.
    UnknownModel { dataset: String, version: u32 },
    /// The registry's byte budget cannot admit this model.
    BudgetExhausted { need: usize, budget: usize },
    /// A model promotion was refused (stale version, failed canary, or
    /// inadmissible size); the previously active version keeps serving.
    SwapRejected {
        dataset: String,
        version: u32,
        reason: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Core(e) => write!(f, "pipeline: {e}"),
            ServeError::UnknownModel { dataset, version } => {
                write!(f, "no model for ({dataset}, v{version})")
            }
            ServeError::BudgetExhausted { need, budget } => {
                write!(f, "model needs {need} B but the registry budget is {budget} B")
            }
            ServeError::SwapRejected {
                dataset,
                version,
                reason,
            } => {
                write!(f, "promotion of ({dataset}, v{version}) rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<fillvoid_core::CoreError> for ServeError {
    fn from(e: fillvoid_core::CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl ServeError {
    /// The protocol error code this maps to.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::UnknownModel { .. } => ErrorCode::UnknownModel,
            ServeError::SwapRejected { .. } => ErrorCode::SwapRejected,
            ServeError::BudgetExhausted { .. } => ErrorCode::Internal,
            ServeError::Io(_) | ServeError::Core(_) => ErrorCode::Internal,
        }
    }
}
