//! Per-model circuit breaker.
//!
//! The same Closed → Open → HalfOpen machine the in-situ session uses
//! (DESIGN.md §11), re-hosted per registry entry so one tenant's broken
//! fine-tune cannot take down every model on the server. While open, all
//! requests for the model are demoted to the classical-interpolation
//! fallback with a typed `Degraded` status — the server keeps answering,
//! just at lower fidelity. Every `probe_after`-th denied request lets one
//! probe through; a successful probe closes the breaker again.

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests take the model path.
    Closed,
    /// Tripped: requests are demoted to the fallback without touching the
    /// model.
    Open,
    /// Cooldown elapsed: the next request is a recovery probe.
    HalfOpen,
}

/// Consecutive-failure circuit breaker (not thread-safe on its own; the
/// registry wraps it in a mutex).
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    probe_after: u32,
    failures: u32,
    open: bool,
    denials_until_probe: u32,
    opens: u64,
}

impl Breaker {
    /// `threshold` consecutive failures trip the breaker; after
    /// `probe_after` denied requests one probe is allowed through.
    pub fn new(threshold: u32, probe_after: u32) -> Self {
        Self {
            threshold: threshold.max(1),
            probe_after: probe_after.max(1),
            failures: 0,
            open: false,
            denials_until_probe: 0,
            opens: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        if !self.open {
            BreakerState::Closed
        } else if self.denials_until_probe == 0 {
            BreakerState::HalfOpen
        } else {
            BreakerState::Open
        }
    }

    /// Times the breaker tripped over its lifetime.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Should this request take the model path? `false` demotes it to the
    /// fallback. While open, each denial counts down toward the next
    /// probe.
    pub fn allow(&mut self) -> bool {
        if !self.open {
            return true;
        }
        if self.denials_until_probe == 0 {
            return true; // half-open: let one probe through
        }
        self.denials_until_probe -= 1;
        false
    }

    /// Record a model-path success: closes the breaker and clears the
    /// failure streak.
    pub fn record_success(&mut self) {
        self.open = false;
        self.failures = 0;
        self.denials_until_probe = 0;
    }

    /// Record a model-path failure (panic, error, or non-finite output).
    pub fn record_failure(&mut self) {
        self.failures = self.failures.saturating_add(1);
        if self.failures >= self.threshold && !self.open {
            self.open = true;
            self.opens += 1;
        }
        if self.open {
            self.denials_until_probe = self.probe_after;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_probes() {
        let mut b = Breaker::new(3, 2);
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(b.allow());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        // Two denials, then a probe slips through.
        assert!(!b.allow());
        assert!(!b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow());
        // Failed probe re-opens with a fresh cooldown.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert!(!b.allow());
        // Successful probe closes fully.
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = Breaker::new(2, 1);
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak must reset");
    }
}
