//! The TCP server: accept loop, per-connection dispatch, graceful
//! shutdown.
//!
//! ## Threading model
//!
//! Accept and per-connection frame I/O run on plain OS threads — blocking
//! socket reads must never occupy `fv-runtime` pool workers, or 64 idle
//! connections would starve the 4-worker compute pool into deadlock. All
//! *compute* (feature extraction, forward passes, fallback interpolation)
//! happens on the batcher thread, which drives the global `fv-runtime`
//! pool through the same `rayon` facade as the direct path — a packed
//! micro-batch crosses the granularity threshold and saturates the pool
//! where 16 serial single-request passes would not.
//!
//! ## Connection watchdogs
//!
//! Every connection socket runs under two deadlines. Between frames the
//! handler waits for the *first byte* in short ticks, checking the
//! shutdown flag and the session's idle clock on each expiry — a
//! connection silent for longer than `idle_ttl` is reaped (typed notice,
//! then close), so abandoned clients cannot pin session slots forever.
//! `Ping` counts as activity, making it the heartbeat. Once a frame has
//! started, the *rest* of it must arrive within `io_timeout`; a peer
//! that stalls mid-frame is disconnected rather than left holding a
//! reader thread. Writes run under the same `io_timeout` — a client
//! that stops draining its socket exhausts its write budget and loses
//! the connection instead of wedging the handler.
//!
//! ## Shutdown
//!
//! `Server::shutdown` (also run on drop) is idempotent and total:
//! 1. set the shutdown flag — new connections and new requests are
//!    answered `ShuttingDown`;
//! 2. wake the blocking accept loop with a loopback connect and join it;
//! 3. stop the batcher: the pending batch is flushed (in-flight work
//!    completes), everything queued behind the marker gets a typed
//!    `Shutdown` response, and the batcher thread is joined;
//! 4. `shutdown(Both)` every connection socket — blocked reads and
//!    writes return — and join every connection thread.
//!
//! Nothing is detached: after `shutdown` returns, no server thread is
//! alive and the port is free (verified by the 100-cycle restart test).

use crate::batcher::{AfterFlush, BatchConfig, MicroBatcher, ReconJob, ReconOutcome};
use crate::proto::{
    self, BrickFrame, BrickMsg, BrickSummary, ErrorBody, ErrorCode, Frame, FrameError, Op,
    OpenSessionReq, OpenSessionResp, PutCloudReq, ReconstructBrickedReq, ReconstructReq,
    ReconstructResp, Status, SwapModelReq, MAX_GRID_POINTS, VERSION_ACTIVE,
};
use crate::registry::ModelRegistry;
use crate::session::{ReplyCache, SessionManager};
use crate::stream::{BrickScheduler, StreamConfig, StreamJob, StreamMsg};
use fillvoid_core::FcnnPipeline;
use fv_field::{BrickLayout, ScalarField};
use fv_runtime::{chaos, telemetry, Deadline, ExecCtx};
use fv_sampling::PointCloud;
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

static TM_ACCEPT: telemetry::Counter = telemetry::Counter::new("serve.accepted");
static TM_REQ: telemetry::Site = telemetry::Site::new("serve.request", None);
static TM_REQUESTS: telemetry::Counter = telemetry::Counter::new("serve.requests");
static TM_PROTO_ERR: telemetry::Counter = telemetry::Counter::new("serve.proto_errors");
static TM_REJECT_BUSY: telemetry::Counter = telemetry::Counter::new("serve.reject.busy");
static TM_INTERN_HIT: telemetry::Counter = telemetry::Counter::new("serve.cloud.intern_hits");
static TM_REAPED: telemetry::Counter = telemetry::Counter::new("serve.conn.reaped");
static TM_STALLED: telemetry::Counter = telemetry::Counter::new("serve.conn.stalled");
static TM_WRITE_TIMEOUT: telemetry::Counter =
    telemetry::Counter::new("serve.conn.write_timeouts");

/// Server configuration. Every knob has an `FV_SERVE_*` env override
/// (see [`ServeConfig::from_env`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Model registry byte budget.
    pub registry_budget: usize,
    /// Directory models are lazily loaded from (`None` = in-memory only).
    pub model_root: Option<PathBuf>,
    /// Per-tenant in-flight request cap.
    pub max_inflight_per_tenant: u64,
    /// Consecutive model failures that trip a model's breaker.
    pub breaker_threshold: u32,
    /// Demoted requests per breaker recovery probe.
    pub breaker_probe_after: u32,
    /// Honor the remote `Shutdown` op. Off by default: on a shared
    /// multi-tenant server any client could otherwise halt service for
    /// everyone. The embedding process always has [`Server::shutdown`].
    pub allow_remote_shutdown: bool,
    /// Honor the remote `SwapModel` op. Off by default for the same
    /// reason as `allow_remote_shutdown`: an unauthenticated client
    /// could otherwise replace the model everyone else is serving from.
    /// The embedding process always has [`ModelRegistry::promote`].
    pub allow_remote_swap: bool,
    /// Reap a connection that has sent no complete frame for this long.
    /// `Ping` resets the clock, making it the heartbeat op.
    pub idle_ttl: Duration,
    /// Per-frame transfer budget: once a frame's first byte has arrived
    /// the rest must follow within this window, and every response write
    /// must complete within it. Stalled or non-draining peers are
    /// disconnected.
    pub io_timeout: Duration,
    /// Run the stored canary reconstruction before promoting a swapped
    /// model (`FV_SERVE_CANARY=0` disables — for tests and airgapped
    /// reference-free deployments).
    pub canary: bool,
    /// TTL of the idempotent-reply cache (see [`ReplyCache`]).
    pub retry_ttl: Duration,
    /// Byte budget of the idempotent-reply cache.
    pub retry_cache_budget: usize,
    /// Largest target the dense `Reconstruct` op accepts, in grid
    /// points. Defaults to the frame cap ([`MAX_GRID_POINTS`]); lowering
    /// it forces big targets onto the streaming `ReconstructBricked` op
    /// sooner (benches use this to exercise streaming cheaply).
    pub max_dense_points: u64,
    /// Brick-stream scheduler tuning (`ReconstructBricked`).
    pub stream: StreamConfig,
    /// Micro-batcher tuning.
    pub batch: BatchConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            registry_budget: 256 << 20,
            model_root: None,
            max_inflight_per_tenant: 32,
            breaker_threshold: 3,
            breaker_probe_after: 8,
            allow_remote_shutdown: false,
            allow_remote_swap: false,
            idle_ttl: Duration::from_secs(300),
            io_timeout: Duration::from_secs(30),
            canary: true,
            retry_ttl: Duration::from_secs(5),
            retry_cache_budget: 32 << 20,
            max_dense_points: MAX_GRID_POINTS,
            stream: StreamConfig::default(),
            batch: BatchConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by `FV_SERVE_ADDR`, `FV_SERVE_MODEL_ROOT`,
    /// `FV_SERVE_BUDGET_MB`, `FV_SERVE_MAX_INFLIGHT`, `FV_SERVE_QUEUE`,
    /// `FV_SERVE_BATCH_ROWS`, `FV_SERVE_FLUSH_US`, `FV_SERVE_BATCH`
    /// (`0` disables micro-batching), `FV_SERVE_ALLOW_SHUTDOWN`
    /// (`1` lets clients issue the `Shutdown` op), `FV_SERVE_ALLOW_SWAP`
    /// (`1` lets clients issue the `SwapModel` op), `FV_SERVE_IDLE_TTL`
    /// (idle reap threshold, **seconds** — matching the 300 s default;
    /// `FV_SERVE_IDLE_TTL_MS` for millisecond granularity, and it wins
    /// when both are set), `FV_SERVE_IO_TIMEOUT` (per-frame read/write
    /// budget, ms), `FV_SERVE_CANARY` (`0` skips canary validation on
    /// swap), `FV_SERVE_RETRY_TTL_MS` and `FV_SERVE_RETRY_CACHE_MB`
    /// (idempotent-reply cache tuning), `FV_SERVE_MAX_POINTS` (dense
    /// `Reconstruct` target cap, in grid points), and the brick-stream
    /// knobs: `FV_SERVE_BRICK_QUEUE` (streams per tenant),
    /// `FV_SERVE_BRICK_INFLIGHT_MB` (per-stream un-acked byte window),
    /// `FV_SERVE_BRICK_HALO` (initial ghost-gather halo).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        let get = |k: &str| std::env::var(k).ok();
        if let Some(v) = get("FV_SERVE_ADDR") {
            cfg.addr = v;
        }
        if let Some(v) = get("FV_SERVE_MODEL_ROOT") {
            cfg.model_root = Some(v.into());
        }
        if let Some(v) = get("FV_SERVE_BUDGET_MB").and_then(|v| v.parse::<usize>().ok()) {
            cfg.registry_budget = v << 20;
        }
        if let Some(v) = get("FV_SERVE_MAX_INFLIGHT").and_then(|v| v.parse().ok()) {
            cfg.max_inflight_per_tenant = v;
        }
        if let Some(v) = get("FV_SERVE_QUEUE").and_then(|v| v.parse().ok()) {
            cfg.batch.queue_depth = v;
        }
        if let Some(v) = get("FV_SERVE_BATCH_ROWS").and_then(|v| v.parse().ok()) {
            cfg.batch.max_rows = v;
        }
        if let Some(v) = get("FV_SERVE_FLUSH_US").and_then(|v| v.parse().ok()) {
            cfg.batch.flush_after = Duration::from_micros(v);
        }
        if let Some(v) = get("FV_SERVE_BATCH") {
            cfg.batch.batch = v != "0";
        }
        if let Some(v) = get("FV_SERVE_ALLOW_SHUTDOWN") {
            cfg.allow_remote_shutdown = v == "1";
        }
        if let Some(v) = get("FV_SERVE_ALLOW_SWAP") {
            cfg.allow_remote_swap = v == "1";
        }
        // Seconds, matching the `from_secs(300)` default and the
        // unsuffixed knob name. (An earlier revision parsed this as
        // milliseconds, so `FV_SERVE_IDLE_TTL=300` reaped idle
        // connections after 300 ms instead of 5 minutes.) Because that
        // fix silently changes what existing deployments' values mean,
        // setting the knob always earns a startup notice.
        if let Some(v) = get("FV_SERVE_IDLE_TTL").and_then(|v| v.parse::<u64>().ok()) {
            eprintln!("{}", idle_ttl_notice(v));
            cfg.idle_ttl = Duration::from_secs(v.max(1));
        }
        // Millisecond override for tests and aggressive deployments;
        // wins over FV_SERVE_IDLE_TTL when both are set.
        if let Some(v) = get("FV_SERVE_IDLE_TTL_MS").and_then(|v| v.parse::<u64>().ok()) {
            cfg.idle_ttl = Duration::from_millis(v.max(1));
        }
        if let Some(v) = get("FV_SERVE_IO_TIMEOUT").and_then(|v| v.parse::<u64>().ok()) {
            cfg.io_timeout = Duration::from_millis(v.max(1));
        }
        if let Some(v) = get("FV_SERVE_CANARY") {
            cfg.canary = v != "0";
        }
        if let Some(v) = get("FV_SERVE_RETRY_TTL_MS").and_then(|v| v.parse::<u64>().ok()) {
            cfg.retry_ttl = Duration::from_millis(v);
        }
        if let Some(v) = get("FV_SERVE_RETRY_CACHE_MB").and_then(|v| v.parse::<usize>().ok()) {
            cfg.retry_cache_budget = v << 20;
        }
        if let Some(v) = get("FV_SERVE_MAX_POINTS").and_then(|v| v.parse::<u64>().ok()) {
            cfg.max_dense_points = v.clamp(1, MAX_GRID_POINTS);
        }
        if let Some(v) = get("FV_SERVE_BRICK_QUEUE").and_then(|v| v.parse::<usize>().ok()) {
            cfg.stream.queue_per_tenant = v.max(1);
        }
        if let Some(v) = get("FV_SERVE_BRICK_INFLIGHT_MB").and_then(|v| v.parse::<usize>().ok()) {
            cfg.stream.inflight_budget = (v << 20).max(1);
        }
        if let Some(v) = get("FV_SERVE_BRICK_HALO").and_then(|v| v.parse::<usize>().ok()) {
            cfg.stream.halo = v.max(1);
        }
        cfg
    }
}

/// Startup notice for `FV_SERVE_IDLE_TTL`: the knob's parsing changed
/// from milliseconds to its documented seconds, so a deployment that set
/// it under the old interpretation now gets a 1000× longer reap window.
/// The notice names the unit and the `FV_SERVE_IDLE_TTL_MS` override,
/// and calls out implausibly large values (a day or more) as likely
/// leftover millisecond settings.
fn idle_ttl_notice(secs: u64) -> String {
    let mut msg = format!(
        "fv-serve: FV_SERVE_IDLE_TTL={secs} is interpreted as seconds \
         (earlier releases parsed it as milliseconds); set \
         FV_SERVE_IDLE_TTL_MS for millisecond granularity"
    );
    if secs >= 86_400 {
        msg.push_str(&format!(
            " — {secs} s is {:.1} hours, which looks like a leftover millisecond value",
            secs as f64 / 3600.0
        ));
    }
    msg
}

struct Shared {
    cfg: ServeConfig,
    registry: Arc<ModelRegistry>,
    sessions: SessionManager,
    batcher: MicroBatcher,
    bricks: BrickScheduler,
    shutdown: AtomicBool,
    conn_seq: AtomicU64,
    conns: Mutex<Vec<(u64, TcpStream)>>,
    // Interned uploads, keyed by content fingerprint (collisions resolved
    // by full comparison). Weak: an interned cloud lives only as long as
    // some session or in-flight job holds it.
    clouds: Mutex<HashMap<u64, Vec<Weak<PointCloud>>>>,
    // Idempotent-reply cache for client retry healing.
    replies: ReplyCache,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Intern an uploaded cloud: byte-identical uploads (same grid, same
    /// indices, same value bits) resolve to one shared `Arc`, making
    /// "same cloud" a pointer check — which is what lets the
    /// micro-batcher coalesce identical concurrent requests into a single
    /// unit of work.
    fn intern_cloud(&self, cloud: PointCloud) -> Arc<PointCloud> {
        let fp = cloud_fingerprint(&cloud);
        let mut table = self.clouds.lock().expect("cloud intern table");
        // Sweep dead refs from every bucket and drop buckets that empty
        // out — distinct uploads over a long-lived server must not grow
        // the table without bound.
        table.retain(|_, slot| {
            slot.retain(|w| w.strong_count() > 0);
            !slot.is_empty()
        });
        let slot = table.entry(fp).or_default();
        for weak in slot.iter() {
            if let Some(existing) = weak.upgrade() {
                if existing.grid() == cloud.grid()
                    && existing.indices() == cloud.indices()
                    && existing.values().len() == cloud.values().len()
                    && existing
                        .values()
                        .iter()
                        .zip(cloud.values())
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                {
                    TM_INTERN_HIT.incr();
                    return existing;
                }
            }
        }
        let arc = Arc::new(cloud);
        slot.push(Arc::downgrade(&arc));
        arc
    }

    fn unregister_conn(&self, id: u64) {
        self.conns
            .lock()
            .expect("conn table")
            .retain(|(cid, _)| *cid != id);
    }
}

/// A running reconstruction server.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    done: bool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("sessions", &self.shared.sessions.len())
            .finish()
    }
}

impl Server {
    /// Bind and start serving with a fresh registry built from `cfg`.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Self> {
        let mut registry = ModelRegistry::new(cfg.registry_budget)
            .with_breaker(cfg.breaker_threshold, cfg.breaker_probe_after);
        if let Some(root) = &cfg.model_root {
            registry = registry.with_root(root);
        }
        Self::start_with_registry(cfg, Arc::new(registry))
    }

    /// Bind and start serving over a caller-owned registry (tests and
    /// benches pre-register in-memory models this way).
    pub fn start_with_registry(
        cfg: ServeConfig,
        registry: Arc<ModelRegistry>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        // Drain poll after every flushed batch: an in-flight batch is the
        // one pin on a retiring model that session close can't observe,
        // so the batcher itself reports when it lets go.
        let after_flush: AfterFlush = {
            let registry = registry.clone();
            Arc::new(move || {
                registry.poll_drains();
            })
        };
        let shared = Arc::new(Shared {
            sessions: SessionManager::new(cfg.max_inflight_per_tenant),
            batcher: MicroBatcher::start_with(cfg.batch.clone(), Some(after_flush)),
            bricks: BrickScheduler::start(cfg.stream.clone()),
            replies: ReplyCache::new(cfg.retry_ttl, cfg.retry_cache_budget),
            cfg,
            registry,
            shutdown: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            clouds: Mutex::new(HashMap::new()),
        });
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let handlers = handlers.clone();
            std::thread::Builder::new()
                .name("fv-serve-accept".into())
                .spawn(move || accept_loop(listener, shared, handlers))?
        };
        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
            handlers,
            done: false,
        })
    }

    /// The bound address (use with port 0 to discover the ephemeral
    /// port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live session count (observability for tests).
    pub fn session_count(&self) -> usize {
        self.shared.sessions.len()
    }

    /// The server's model registry.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Graceful, idempotent shutdown; see the module docs for the exact
    /// sequence. After this returns, no server thread is alive.
    pub fn shutdown(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept call; the loop observes the flag and
        // exits (the listener closes with it).
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Flush in-flight batches, answer queued requests with Shutdown,
        // join the batcher. Connection threads blocked on a response
        // receive it here and write it out before their sockets close.
        self.shared.batcher.shutdown();
        // Stop the brick-stream worker: queued streams get a terminal
        // ShuttingDown message, which connection threads blocked on
        // their stream channel observe and forward.
        self.shared.bricks.shutdown();
        // Unblock every connection thread and join it.
        for (_, stream) in self.shared.conns.lock().expect("conn table").iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<_> = self.handlers.lock().expect("handler table").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Every connection thread is joined, so every session (and its
        // model pin) is closed: any version still draining retires now.
        self.shared.registry.poll_drains();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        // Chaos: a panic or injected I/O error while setting a connection
        // up must cost only that connection, never the listener.
        let ok = std::panic::catch_unwind(|| {
            chaos::point("serve.accept");
            chaos::io_error("serve.accept").is_none()
        })
        .unwrap_or(false);
        let stream = match stream {
            Ok(s) => s,
            Err(_) if shared.shutting_down() => break,
            Err(_) => continue,
        };
        if !ok {
            continue; // injected accept failure: drop this connection only
        }
        TM_ACCEPT.incr();
        let _ = stream.set_nodelay(true);
        let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conn table").push((id, clone));
        }
        let conn_shared = shared.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("fv-serve-conn-{id}"))
            .spawn(move || {
                // A panicking handler (chaos or bug) drops only this
                // connection; sessions it opened are closed on the way
                // out, so no slot leaks.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_conn(&conn_shared, stream, id)
                }));
                conn_shared.unregister_conn(id);
            });
        match spawned {
            Ok(handle) => {
                let mut table = handlers.lock().expect("handler table");
                // Opportunistically reap finished threads so a long-lived
                // server doesn't accumulate dead handles.
                let (done, live): (Vec<_>, Vec<_>) =
                    table.drain(..).partition(|h| h.is_finished());
                for h in done {
                    let _ = h.join();
                }
                *table = live;
                table.push(handle);
            }
            Err(_) => shared.unregister_conn(id),
        }
    }
}

/// Closes the connection's sessions on drop — including during a panic
/// unwind — so a dying handler thread can never leak a session slot.
struct SessionCleanup<'a> {
    shared: &'a Shared,
    conn: u64,
    ids: Vec<u64>,
}

impl Drop for SessionCleanup<'_> {
    fn drop(&mut self) {
        for id in &self.ids {
            self.shared.sessions.close(*id, self.conn);
        }
        // Closing sessions may have dropped the last pin on a retiring
        // model version; let it go while the drain clock is still warm.
        self.shared.registry.poll_drains();
    }
}

/// What the first-byte wait produced.
enum FirstByte {
    /// A frame is starting.
    Byte(u8),
    /// Peer closed cleanly between frames.
    Closed,
    /// Idle longer than the TTL — reap the connection.
    Reap,
    /// Server is shutting down.
    Shutdown,
    /// Unrecoverable socket error.
    Dead,
}

/// Wait for the first byte of the next frame in short ticks so the idle
/// clock and the shutdown flag are checked even while the socket is
/// silent. The tick is never longer than the idle TTL or the frame
/// I/O budget.
fn await_first_byte(
    shared: &Shared,
    stream: &mut TcpStream,
    idle_since: &Instant,
) -> FirstByte {
    let idle_ttl = shared.cfg.idle_ttl;
    let tick = Duration::from_millis(25)
        .min(idle_ttl)
        .min(shared.cfg.io_timeout)
        .max(Duration::from_millis(1));
    if stream.set_read_timeout(Some(tick)).is_err() {
        return FirstByte::Dead;
    }
    let mut b = [0u8; 1];
    loop {
        if shared.shutting_down() {
            return FirstByte::Shutdown;
        }
        match stream.read(&mut b) {
            Ok(0) => return FirstByte::Closed,
            Ok(_) => return FirstByte::Byte(b[0]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if idle_since.elapsed() >= idle_ttl {
                    return FirstByte::Reap;
                }
                // Idle tick: cheap opportunity to retire drained models.
                shared.registry.poll_drains();
            }
            Err(_) => return FirstByte::Dead,
        }
    }
}

fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream, conn: u64) {
    let mut cleanup = SessionCleanup {
        shared,
        conn,
        ids: Vec::new(),
    };
    // Slow-client write budget: every response write must finish inside
    // the frame I/O window or the connection is dropped.
    let _ = stream.set_write_timeout(Some(shared.cfg.io_timeout));
    let mut idle_since = Instant::now();
    loop {
        let first = match await_first_byte(shared, &mut stream, &idle_since) {
            FirstByte::Byte(b) => b,
            FirstByte::Closed | FirstByte::Shutdown | FirstByte::Dead => break,
            FirstByte::Reap => {
                TM_REAPED.incr();
                // Best-effort notice; the peer is probably gone anyway.
                write_error(
                    &mut stream,
                    0,
                    Status::Error,
                    ErrorCode::Internal,
                    "connection idle past FV_SERVE_IDLE_TTL; reaped",
                );
                break;
            }
        };
        // A frame has started: the remainder runs under the per-frame
        // transfer budget, not the idle tick.
        if stream
            .set_read_timeout(Some(shared.cfg.io_timeout))
            .is_err()
        {
            break;
        }
        let frame = match read_frame_rest_chaos(&mut stream, first) {
            Ok(f) => f,
            Err(FrameError::Eof) => break,
            Err(FrameError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Stalled mid-frame: the peer started a frame and went
                // silent. Holding the reader open would let one slow
                // client pin a thread indefinitely.
                TM_STALLED.incr();
                write_error(
                    &mut stream,
                    0,
                    Status::Error,
                    ErrorCode::BadFrame,
                    "frame stalled past FV_SERVE_IO_TIMEOUT",
                );
                break;
            }
            Err(e) => {
                TM_PROTO_ERR.incr();
                // Best-effort typed response; the stream itself can no
                // longer be trusted, so the connection closes either way.
                write_error(&mut stream, 0, Status::Error, ErrorCode::BadFrame, e.to_string());
                break;
            }
        };
        let _span = TM_REQ.span();
        let keep_going = dispatch(shared, &mut stream, &frame, conn, &mut cleanup.ids);
        if !keep_going {
            break;
        }
        idle_since = Instant::now();
    }
}

/// Rest-of-frame read with the `serve.conn.read` and `serve.decode`
/// chaos sites in front: injected panics and I/O errors model a
/// hostile/failing transport.
fn read_frame_rest_chaos(stream: &mut TcpStream, first: u8) -> Result<Frame, FrameError> {
    if let Some(e) = chaos::io_error("serve.conn.read") {
        return Err(FrameError::Io(e));
    }
    chaos::point("serve.conn.read");
    if let Some(e) = chaos::io_error("serve.decode") {
        return Err(FrameError::Io(e));
    }
    chaos::point("serve.decode");
    proto::read_frame_rest(stream, first)
}

/// Response write with the `serve.conn.write` chaos site in front.
/// Returns `false` (close the connection) on injected faults, real
/// socket errors, and exhausted write budgets alike.
fn write_response(stream: &mut TcpStream, op: u8, status: u8, payload: &[u8]) -> bool {
    if chaos::io_error("serve.conn.write").is_some() {
        return false;
    }
    chaos::point("serve.conn.write");
    match proto::write_frame(stream, op, status, payload) {
        Ok(()) => true,
        Err(e) => {
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
            {
                TM_WRITE_TIMEOUT.incr();
            }
            false
        }
    }
}

fn write_error(
    stream: &mut TcpStream,
    op: u8,
    status: Status,
    code: ErrorCode,
    message: impl Into<String>,
) -> bool {
    let body = ErrorBody::new(code, message);
    write_response(stream, op, status as u8, &body.encode())
}

/// Handle one decoded frame. Returns `false` when the connection should
/// close.
fn dispatch(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    frame: &Frame,
    conn: u64,
    my_sessions: &mut Vec<u64>,
) -> bool {
    let op = match Op::from_u8(frame.op) {
        Some(op) => op,
        None => {
            return write_error(
                stream,
                frame.op,
                Status::Error,
                ErrorCode::UnknownOp,
                format!("unknown op {}", frame.op),
            )
        }
    };
    if shared.shutting_down() && op != Op::Ping {
        return write_error(
            stream,
            frame.op,
            Status::ShuttingDown,
            ErrorCode::Internal,
            "server is shutting down",
        );
    }
    match op {
        Op::Ping => write_response(stream, op as u8, Status::Ok as u8, &frame.payload),
        Op::OpenSession => handle_open(shared, stream, frame, conn, my_sessions),
        Op::CloseSession => {
            let id = match proto::decode_session_id(&frame.payload) {
                Ok(id) => id,
                Err(e) => {
                    return write_error(stream, frame.op, Status::Error, ErrorCode::BadRequest, e.0)
                }
            };
            // Graceful close of the tenant's last session drops its
            // cached replies now instead of letting them ride out the
            // TTL — inside the session manager's tenant critical
            // section, so a racing OpenSession for the same name cannot
            // store a reply between the idle check and the prune and
            // lose it. Torn-connection cleanup deliberately does NOT
            // prune — that is when a healing client needs replay.
            let closed = shared
                .sessions
                .close_and_then(id, conn, |t| shared.replies.prune_tenant(t));
            if closed.is_some() {
                my_sessions.retain(|&s| s != id);
                // This may have been the last session pinning a
                // retiring model version.
                shared.registry.poll_drains();
                write_response(stream, op as u8, Status::Ok as u8, &[])
            } else {
                write_error(
                    stream,
                    frame.op,
                    Status::Error,
                    ErrorCode::UnknownSession,
                    format!("no session {id}"),
                )
            }
        }
        Op::PutCloud => handle_put_cloud(shared, stream, frame, conn),
        Op::Reconstruct => handle_reconstruct(shared, stream, frame, conn),
        Op::ReconstructBricked => handle_reconstruct_bricked(shared, stream, frame, conn),
        Op::SwapModel => handle_swap(shared, stream, frame),
        Op::Stats => {
            let tel = telemetry::snapshot().to_json();
            let sw = shared.registry.swap_stats();
            let json = format!(
                "{{\"sessions\": {}, \"registry\": {{\"models\": {}, \"bytes\": {}, \"budget\": {}}}, \
                 \"swap\": {{\"promoted\": {}, \"rejected\": {}, \"retired\": {}, \"draining\": {}, \
                 \"last_drain_ms\": {:.3}, \"max_drain_ms\": {:.3}, \"canary_runs\": {}, \"canary_ms_total\": {:.3}}}, \
                 \"retry_cache\": {{\"entries\": {}, \"bytes\": {}, \"hits\": {}, \"stores\": {}}}, \
                 \"stream\": {}, \"tenants\": {}, \"telemetry\": {}}}",
                shared.sessions.len(),
                shared.registry.len(),
                shared.registry.bytes(),
                shared.registry.budget(),
                sw.promoted,
                sw.rejected,
                sw.retired,
                sw.draining,
                sw.last_drain_ms,
                sw.max_drain_ms,
                sw.canary_runs,
                sw.canary_ms_total,
                shared.replies.len(),
                shared.replies.bytes(),
                shared.replies.hits(),
                shared.replies.stores(),
                shared.bricks.stats_json(),
                shared.sessions.tenants_json(),
                tel,
            );
            write_response(stream, op as u8, Status::Ok as u8, json.as_bytes())
        }
        Op::Shutdown => {
            // Gated: on a shared multi-tenant server an unauthenticated
            // Shutdown would let any client halt service for everyone.
            // The embedding process always has `Server::shutdown`.
            if !shared.cfg.allow_remote_shutdown {
                return write_error(
                    stream,
                    frame.op,
                    Status::Error,
                    ErrorCode::Forbidden,
                    "remote shutdown is disabled (set FV_SERVE_ALLOW_SHUTDOWN=1 to enable)",
                );
            }
            // Flag first, reply second: when the client sees the Ok, every
            // other thread already observes the shutdown. The owner's
            // `shutdown()`/drop joins the threads.
            shared.shutdown.store(true, Ordering::Release);
            write_response(stream, op as u8, Status::Ok as u8, &[]);
            false
        }
    }
}

/// `SwapModel`: deserialize the candidate, canary-validate, and promote
/// it as the dataset's new active version. Every failure is a typed
/// response with the previous version untouched.
fn handle_swap(shared: &Arc<Shared>, stream: &mut TcpStream, frame: &Frame) -> bool {
    // Gated like `Shutdown`: on a shared multi-tenant server an
    // unauthenticated client could otherwise replace the model everyone
    // else is serving from.
    if !shared.cfg.allow_remote_swap {
        return write_error(
            stream,
            frame.op,
            Status::Error,
            ErrorCode::Forbidden,
            "remote model swap is disabled (set FV_SERVE_ALLOW_SWAP=1 to enable)",
        );
    }
    let req = match SwapModelReq::decode(&frame.payload) {
        Ok(r) => r,
        Err(e) => return write_error(stream, frame.op, Status::Error, ErrorCode::BadRequest, e.0),
    };
    let pipeline = match FcnnPipeline::read_from(req.pipeline.as_slice()) {
        Ok(p) => p,
        Err(e) => {
            return write_error(
                stream,
                frame.op,
                Status::Error,
                ErrorCode::BadRequest,
                format!("candidate pipeline rejected: {e}"),
            )
        }
    };
    match shared
        .registry
        .promote(&req.dataset, req.version, pipeline, shared.cfg.canary)
    {
        Ok(_) => write_response(stream, frame.op, Status::Ok as u8, &[]),
        Err(e) => write_error(stream, frame.op, Status::Error, e.code(), e.to_string()),
    }
}

fn handle_open(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    frame: &Frame,
    conn: u64,
    my_sessions: &mut Vec<u64>,
) -> bool {
    let req = match OpenSessionReq::decode(&frame.payload) {
        Ok(r) => r,
        Err(e) => return write_error(stream, frame.op, Status::Error, ErrorCode::BadRequest, e.0),
    };
    if req.tenant.is_empty() {
        return write_error(
            stream,
            frame.op,
            Status::Error,
            ErrorCode::BadRequest,
            "empty tenant name",
        );
    }
    // `VERSION_ACTIVE` resolves to the dataset's promoted version *at
    // open time*; the session then stays pinned to that concrete version
    // through any later swap, until it closes.
    let version = if req.version == VERSION_ACTIVE {
        match shared.registry.active_version(&req.dataset) {
            Some(v) => v,
            None => {
                return write_error(
                    stream,
                    frame.op,
                    Status::Error,
                    ErrorCode::UnknownModel,
                    format!("no active version for dataset {}", req.dataset),
                )
            }
        }
    } else {
        req.version
    };
    let entry = match shared.registry.get(&req.dataset, version) {
        Ok(e) => e,
        Err(e) => {
            return write_error(stream, frame.op, Status::Error, e.code(), e.to_string());
        }
    };
    let id = shared.sessions.open(&req.tenant, entry, conn);
    my_sessions.push(id);
    let resp = OpenSessionResp {
        session: id,
        version,
    };
    write_response(stream, frame.op, Status::Ok as u8, &resp.encode())
}

fn handle_put_cloud(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    frame: &Frame,
    conn: u64,
) -> bool {
    let req = match PutCloudReq::decode(&frame.payload) {
        Ok(r) => r,
        Err(e) => return write_error(stream, frame.op, Status::Error, ErrorCode::BadRequest, e.0),
    };
    let session = match shared.sessions.get(req.session, conn) {
        Some(s) => s,
        None => {
            return write_error(
                stream,
                frame.op,
                Status::Error,
                ErrorCode::UnknownSession,
                format!("no session {}", req.session),
            )
        }
    };
    let cloud = match build_cloud(&req) {
        Ok(c) => c,
        Err(msg) => {
            return write_error(stream, frame.op, Status::Error, ErrorCode::BadRequest, msg)
        }
    };
    session.lock().expect("session lock").cloud = Some(shared.intern_cloud(cloud));
    write_response(stream, frame.op, Status::Ok as u8, &[])
}

/// Content fingerprint (FNV-1a over grid geometry, indices, and value
/// bits) for the intern table. Collisions are fine — interning always
/// confirms with a full comparison.
fn cloud_fingerprint(cloud: &PointCloud) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let grid = cloud.grid();
    for d in grid.dims() {
        h = (h ^ d as u64).wrapping_mul(PRIME);
    }
    for o in grid.origin() {
        h = (h ^ o.to_bits()).wrapping_mul(PRIME);
    }
    for s in grid.spacing() {
        h = (h ^ s.to_bits()).wrapping_mul(PRIME);
    }
    for &i in cloud.indices() {
        h = (h ^ i as u64).wrapping_mul(PRIME);
    }
    for &v in cloud.values() {
        h = (h ^ u64::from(v.to_bits())).wrapping_mul(PRIME);
    }
    h
}

/// Rebuild a [`PointCloud`] from wire data by scattering the values into
/// a scratch field at the sampled indices (`PointCloud::from_indices`
/// reads values back out of the field, so duplicates and ordering are
/// handled by its own normalization). The grid is size-bounded *before*
/// the scratch field allocates: wire dims are attacker-controlled.
fn build_cloud(req: &PutCloudReq) -> Result<PointCloud, String> {
    let grid = req.grid.to_grid_bounded().map_err(|e| e.0)?;
    if req.indices.is_empty() {
        return Err("empty sample cloud".into());
    }
    if req.indices.len() != req.values.len() {
        return Err(format!(
            "{} indices but {} values",
            req.indices.len(),
            req.values.len()
        ));
    }
    let n = grid.num_points() as u64;
    let mut scratch = ScalarField::zeros(grid);
    let mut indices = Vec::with_capacity(req.indices.len());
    for (&idx, &v) in req.indices.iter().zip(&req.values) {
        if idx >= n {
            return Err(format!("index {idx} out of range for {n}-point grid"));
        }
        scratch.values_mut()[idx as usize] = v;
        indices.push(idx as usize);
    }
    Ok(PointCloud::from_indices(&scratch, indices))
}

fn handle_reconstruct(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    frame: &Frame,
    conn: u64,
) -> bool {
    let req = match ReconstructReq::decode(&frame.payload) {
        Ok(r) => r,
        Err(e) => return write_error(stream, frame.op, Status::Error, ErrorCode::BadRequest, e.0),
    };
    let session = match shared.sessions.get(req.session, conn) {
        Some(s) => s,
        None => {
            return write_error(
                stream,
                frame.op,
                Status::Error,
                ErrorCode::UnknownSession,
                format!("no session {}", req.session),
            )
        }
    };
    // Idempotent replay: a retried request id whose original reply is
    // still cached gets the stored bytes back — no recompute, no second
    // pass through admission, no double-counted tenant stats. Keyed by
    // tenant (not session or connection) so the replay works across the
    // reconnect that motivated the retry.
    if req.request_id != 0 {
        let tenant_name = session.lock().expect("session lock").tenant.name.clone();
        if let Some((status, payload)) = shared.replies.get(&tenant_name, req.request_id) {
            return write_response(stream, frame.op, status, &payload);
        }
    }
    // Bounded decode: a huge or u64-wrapping target must be rejected
    // here, before any num_points-sized buffer exists anywhere (batcher
    // prep, IDW fallback, response encode).
    let target = match req.target.to_grid_bounded() {
        Ok(g) => g,
        Err(e) => return write_error(stream, frame.op, Status::Error, ErrorCode::BadRequest, e.0),
    };
    if target.num_points() as u64 > shared.cfg.max_dense_points {
        return write_error(
            stream,
            frame.op,
            Status::Error,
            ErrorCode::BadRequest,
            format!(
                "target has {} points, over the dense-response cap of {}; \
                 use ReconstructBricked to stream it",
                target.num_points(),
                shared.cfg.max_dense_points
            ),
        );
    }
    let (entry, cloud, tenant) = {
        let s = session.lock().expect("session lock");
        match &s.cloud {
            Some(c) => (s.model.clone(), c.clone(), s.tenant.clone()),
            None => {
                return write_error(
                    stream,
                    frame.op,
                    Status::Error,
                    ErrorCode::BadRequest,
                    "no sample cloud uploaded for this session",
                )
            }
        }
    };
    // Admission: the tenant's in-flight cap first, then queue space.
    let guard = match shared.sessions.try_admit(&tenant) {
        Some(g) => g,
        None => {
            tenant.rejected.fetch_add(1, Ordering::Relaxed);
            return write_error(
                stream,
                frame.op,
                Status::Error,
                ErrorCode::TooManyInFlight,
                format!("tenant {} is at its in-flight cap", tenant.name),
            );
        }
    };
    let mut ctx = ExecCtx::unbounded();
    if req.deadline_ms > 0 {
        ctx = ctx.with_deadline(Deadline::after(Duration::from_millis(req.deadline_ms as u64)));
    }
    let rows = if cloud.grid() == &target {
        target.num_points() - cloud.len()
    } else {
        target.num_points()
    };
    let (resp_tx, resp_rx) = sync_channel(1);
    let job = Box::new(ReconJob {
        entry,
        cloud,
        target,
        ctx,
        tenant: tenant.clone(),
        guard,
        rows,
        resp: resp_tx,
    });
    TM_REQUESTS.incr();
    tenant.requests.fetch_add(1, Ordering::Relaxed);
    match shared.batcher.try_submit(job) {
        Ok(()) => {}
        Err((job, disconnected)) => {
            drop(job); // releases the in-flight guard
            tenant.rejected.fetch_add(1, Ordering::Relaxed);
            return if disconnected {
                write_error(
                    stream,
                    frame.op,
                    Status::ShuttingDown,
                    ErrorCode::Internal,
                    "server is shutting down",
                )
            } else {
                TM_REJECT_BUSY.incr();
                write_error(
                    stream,
                    frame.op,
                    Status::Error,
                    ErrorCode::Busy,
                    "micro-batch queue is full; retry with backoff",
                )
            };
        }
    }
    // The batcher always answers: flush, fallback, or shutdown drain. A
    // dropped sender without a message means the batcher thread died.
    let outcome = resp_rx
        .recv()
        .unwrap_or(ReconOutcome::Rejected(ErrorCode::Internal, "batcher gone".into()));
    match outcome {
        ReconOutcome::Ok(values) => {
            tenant.rows.fetch_add(values.len() as u64, Ordering::Relaxed);
            let body = ReconstructResp {
                values,
                reason: String::new(),
            };
            reply_cached(shared, stream, frame.op, Status::Ok as u8, &tenant.name, &req, body)
        }
        ReconOutcome::Degraded(values, reason) => {
            tenant.rows.fetch_add(values.len() as u64, Ordering::Relaxed);
            tenant.degraded.fetch_add(1, Ordering::Relaxed);
            let body = ReconstructResp { values, reason };
            reply_cached(
                shared,
                stream,
                frame.op,
                Status::Degraded as u8,
                &tenant.name,
                &req,
                body,
            )
        }
        ReconOutcome::Rejected(code, message) => {
            tenant.rejected.fetch_add(1, Ordering::Relaxed);
            tenant.errors.fetch_add(1, Ordering::Relaxed);
            write_error(stream, frame.op, Status::Error, code, message)
        }
        ReconOutcome::Shutdown => {
            tenant.rejected.fetch_add(1, Ordering::Relaxed);
            write_error(
                stream,
                frame.op,
                Status::ShuttingDown,
                ErrorCode::Internal,
                "server shut down before the request ran",
            )
        }
    }
}

/// Write a successful reconstruction reply, storing the encoded bytes in
/// the idempotent-reply cache first (for nonzero request ids) so the
/// *store* happens even when the write that follows is cut off mid-frame
/// — that cut is exactly the moment a retry will need the cached copy.
/// Error outcomes are never cached: a retry should re-attempt those.
fn reply_cached(
    shared: &Shared,
    stream: &mut TcpStream,
    op: u8,
    status: u8,
    tenant: &str,
    req: &ReconstructReq,
    body: ReconstructResp,
) -> bool {
    let payload = Arc::new(body.encode());
    if req.request_id != 0 {
        shared
            .replies
            .put(tenant, req.request_id, status, payload.clone());
    }
    write_response(stream, op, status, &payload)
}

/// Brick-frame write with its own chaos site (`serve.brick.write`) in
/// front of the shared `serve.conn.write` one: a mid-stream write fault
/// tears exactly the stream under test.
fn write_brick(stream: &mut TcpStream, op: u8, payload: &[u8]) -> bool {
    if chaos::io_error("serve.brick.write").is_some() {
        return false;
    }
    chaos::point("serve.brick.write");
    write_response(stream, op, Status::Ok as u8, payload)
}

/// `ReconstructBricked`: validate, admit, hand the stream to the brick
/// scheduler, and relay its messages to the socket — brick frames in
/// ascending index order, then one summary (or typed error) frame.
///
/// The connection thread owns the transport half of the back-pressure
/// loop: after every brick write (delivered or not) it drains the
/// stream's in-flight byte window and wakes the scheduler. On exit it
/// sets the stream's client-gone flag (and drops the receiver): the
/// scheduler abandons the stream at its next turn, releasing the
/// tenant's queue slot and in-flight guard — even when bytes stranded
/// in the channel would otherwise keep the stream budget-blocked and
/// it would never reach a send that could observe the disconnect.
fn handle_reconstruct_bricked(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    frame: &Frame,
    conn: u64,
) -> bool {
    let req = match ReconstructBrickedReq::decode(&frame.payload) {
        Ok(r) => r,
        Err(e) => return write_error(stream, frame.op, Status::Error, ErrorCode::BadRequest, e.0),
    };
    let session = match shared.sessions.get(req.session, conn) {
        Some(s) => s,
        None => {
            return write_error(
                stream,
                frame.op,
                Status::Error,
                ErrorCode::UnknownSession,
                format!("no session {}", req.session),
            )
        }
    };
    // Streamed bound: the target may exceed the dense frame cap (that is
    // the op's whole point) but stays overflow-checked.
    let target = match req.target.to_grid_streamed() {
        Ok(g) => g,
        Err(e) => return write_error(stream, frame.op, Status::Error, ErrorCode::BadRequest, e.0),
    };
    // Each brick travels as one frame, so a brick's dense payload must
    // respect the per-frame cap the dense path lives under.
    let brick_points = req
        .brick_dims
        .iter()
        .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
        .filter(|&n| n > 0 && n <= MAX_GRID_POINTS);
    if brick_points.is_none() {
        return write_error(
            stream,
            frame.op,
            Status::Error,
            ErrorCode::BadRequest,
            format!(
                "brick dims {:?} must be nonzero and at most {MAX_GRID_POINTS} voxels per brick",
                req.brick_dims
            ),
        );
    }
    let brick_dims = [
        req.brick_dims[0] as usize,
        req.brick_dims[1] as usize,
        req.brick_dims[2] as usize,
    ];
    // Cheap (counts only): bounds start_brick before admission.
    let layout = match BrickLayout::new(target, brick_dims) {
        Ok(l) => l,
        Err(e) => {
            return write_error(
                stream,
                frame.op,
                Status::Error,
                ErrorCode::BadRequest,
                e.to_string(),
            )
        }
    };
    if req.start_brick > layout.num_bricks() as u64 {
        return write_error(
            stream,
            frame.op,
            Status::Error,
            ErrorCode::BadRequest,
            format!(
                "start_brick {} past the {}-brick layout",
                req.start_brick,
                layout.num_bricks()
            ),
        );
    }
    let (entry, cloud, tenant) = {
        let s = session.lock().expect("session lock");
        match &s.cloud {
            Some(c) => (s.model.clone(), c.clone(), s.tenant.clone()),
            None => {
                return write_error(
                    stream,
                    frame.op,
                    Status::Error,
                    ErrorCode::BadRequest,
                    "no sample cloud uploaded for this session",
                )
            }
        }
    };
    let guard = match shared.sessions.try_admit(&tenant) {
        Some(g) => g,
        None => {
            tenant.rejected.fetch_add(1, Ordering::Relaxed);
            return write_error(
                stream,
                frame.op,
                Status::Error,
                ErrorCode::TooManyInFlight,
                format!("tenant {} is at its in-flight cap", tenant.name),
            );
        }
    };
    let mut ctx = ExecCtx::unbounded();
    if req.deadline_ms > 0 {
        ctx = ctx.with_deadline(Deadline::after(Duration::from_millis(req.deadline_ms as u64)));
    }
    let inflight_bytes = Arc::new(AtomicUsize::new(0));
    let client_gone = Arc::new(AtomicBool::new(false));
    let (resp_tx, resp_rx) = sync_channel(8);
    let job = StreamJob {
        entry,
        cloud,
        target,
        brick_dims,
        start_brick: req.start_brick,
        ctx,
        tenant: tenant.clone(),
        guard: Some(guard),
        resp: resp_tx,
        inflight_bytes: inflight_bytes.clone(),
        client_gone: client_gone.clone(),
    };
    TM_REQUESTS.incr();
    tenant.requests.fetch_add(1, Ordering::Relaxed);
    match shared.bricks.submit(job) {
        Ok(()) => {}
        Err((job, shutting_down)) => {
            drop(job); // releases the in-flight guard
            tenant.rejected.fetch_add(1, Ordering::Relaxed);
            return if shutting_down {
                write_error(
                    stream,
                    frame.op,
                    Status::ShuttingDown,
                    ErrorCode::Internal,
                    "server is shutting down",
                )
            } else {
                TM_REJECT_BUSY.incr();
                write_error(
                    stream,
                    frame.op,
                    Status::Error,
                    ErrorCode::Busy,
                    format!(
                        "tenant {} already has FV_SERVE_BRICK_QUEUE streams queued; retry with backoff",
                        tenant.name
                    ),
                )
            };
        }
    }
    // Every exit from here on — summary written, typed failure, torn
    // socket mid-stream — must mark the client gone and wake the worker.
    // Dropping `resp_rx` alone is not enough: bricks already queued in
    // the channel keep their bytes charged to the in-flight window, and
    // once those orphaned bytes reach the budget the scheduler would
    // block *before* the `try_send` that could observe the disconnect,
    // requeuing the stream forever.
    struct Abandon<'a> {
        gone: &'a AtomicBool,
        bricks: &'a BrickScheduler,
    }
    impl Drop for Abandon<'_> {
        fn drop(&mut self) {
            self.gone.store(true, Ordering::Release);
            self.bricks.notify();
        }
    }
    let _abandon = Abandon {
        gone: &client_gone,
        bricks: &shared.bricks,
    };
    loop {
        match resp_rx.recv() {
            Ok(StreamMsg::Brick {
                index,
                start,
                dims,
                values,
            }) => {
                let nbytes = values.len() * 4;
                tenant.rows.fetch_add(values.len() as u64, Ordering::Relaxed);
                let body = BrickMsg::Brick(BrickFrame {
                    request_id: req.request_id,
                    index,
                    start,
                    dims,
                    values,
                });
                let ok = write_brick(stream, frame.op, &body.encode());
                // Settle the back-pressure window whether or not the
                // write landed — the bytes left server memory either way.
                inflight_bytes.fetch_sub(nbytes, Ordering::AcqRel);
                shared.bricks.notify();
                if !ok {
                    // Dropping the receiver tells the scheduler the
                    // client is gone at its next send.
                    return false;
                }
            }
            Ok(StreamMsg::Done {
                total,
                sent,
                skipped,
                max_halo,
            }) => {
                let body = BrickMsg::Summary(BrickSummary {
                    request_id: req.request_id,
                    total_bricks: total,
                    sent,
                    skipped,
                    max_halo,
                });
                return write_response(stream, frame.op, Status::Ok as u8, &body.encode());
            }
            Ok(StreamMsg::Fail {
                status,
                code,
                message,
            }) => {
                tenant.rejected.fetch_add(1, Ordering::Relaxed);
                return write_error(stream, frame.op, status, code, message);
            }
            Err(_) => {
                // Scheduler gone (shutdown drained it) without a
                // terminal message for us.
                return write_error(
                    stream,
                    frame.op,
                    Status::ShuttingDown,
                    ErrorCode::Internal,
                    "server shut down mid-stream",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Env mutation is process-global; every test touching `FV_SERVE_*`
    /// vars serializes here.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Regression: `FV_SERVE_IDLE_TTL` is documented against a
    /// `from_secs(300)` default, but the parse used `from_millis`, so
    /// `FV_SERVE_IDLE_TTL=300` reaped connections after 300 ms. The knob
    /// is seconds; `FV_SERVE_IDLE_TTL_MS` is the millisecond override.
    #[test]
    fn idle_ttl_env_is_seconds_with_ms_override() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("FV_SERVE_IDLE_TTL", "300");
        let cfg = ServeConfig::from_env();
        assert_eq!(
            cfg.idle_ttl,
            Duration::from_secs(300),
            "FV_SERVE_IDLE_TTL must parse as seconds, matching its documented default"
        );

        std::env::set_var("FV_SERVE_IDLE_TTL_MS", "250");
        let cfg = ServeConfig::from_env();
        assert_eq!(
            cfg.idle_ttl,
            Duration::from_millis(250),
            "FV_SERVE_IDLE_TTL_MS wins when both are set"
        );

        std::env::remove_var("FV_SERVE_IDLE_TTL");
        std::env::remove_var("FV_SERVE_IDLE_TTL_MS");
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.idle_ttl, Duration::from_secs(300), "default unchanged");
    }

    /// The seconds fix is a breaking config change for deployments that
    /// set the knob under the old millisecond parsing, so the startup
    /// notice must name the unit, point at the `_MS` override, and flag
    /// day-plus values as likely leftover milliseconds.
    #[test]
    fn idle_ttl_notice_names_unit_change_and_suspect_values() {
        let plain = idle_ttl_notice(300);
        assert!(plain.contains("seconds"), "must state the unit: {plain}");
        assert!(
            plain.contains("FV_SERVE_IDLE_TTL_MS"),
            "must point at the millisecond override: {plain}"
        );
        assert!(
            !plain.contains("leftover"),
            "a plausible value earns no suspicion: {plain}"
        );
        // 300_000 was "5 minutes" under the old parsing; as seconds it
        // is ~83 hours — exactly the silent-breakage case to flag.
        let suspect = idle_ttl_notice(300_000);
        assert!(
            suspect.contains("leftover millisecond value"),
            "implausibly large values must be called out: {suspect}"
        );
    }

    #[test]
    fn stream_knobs_parse_from_env() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("FV_SERVE_BRICK_QUEUE", "5");
        std::env::set_var("FV_SERVE_BRICK_INFLIGHT_MB", "2");
        std::env::set_var("FV_SERVE_BRICK_HALO", "3");
        std::env::set_var("FV_SERVE_MAX_POINTS", "4096");
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.stream.queue_per_tenant, 5);
        assert_eq!(cfg.stream.inflight_budget, 2 << 20);
        assert_eq!(cfg.stream.halo, 3);
        assert_eq!(cfg.max_dense_points, 4096);
        std::env::remove_var("FV_SERVE_BRICK_QUEUE");
        std::env::remove_var("FV_SERVE_BRICK_INFLIGHT_MB");
        std::env::remove_var("FV_SERVE_BRICK_HALO");
        std::env::remove_var("FV_SERVE_MAX_POINTS");
    }
}
