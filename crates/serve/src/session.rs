//! Tenant sessions and admission control.
//!
//! A session binds a tenant to one registry model and holds the tenant's
//! uploaded sample cloud. Tenants own the admission state: an atomic
//! in-flight counter capped at `max_inflight` (checked by a CAS loop so
//! two racing requests cannot both take the last slot) plus the
//! per-tenant telemetry counters the `Stats` op reports. The in-flight
//! slot is an RAII [`InflightGuard`] — it is released on drop, so a
//! panicking worker or a torn connection can never leak a slot.
//!
//! ## Isolation
//!
//! Every session is owned by the connection that opened it: `get` and
//! `close` require the caller's connection id and answer "no such
//! session" for anyone else's, so one tenant can never read, replace, or
//! close another tenant's session by guessing its id. Ids are also
//! randomized (a keyed `splitmix64` over an entropy seed) rather than
//! sequential, but that is defense in depth — the connection binding is
//! the enforced boundary.
//!
//! This module also hosts the [`ReplyCache`]: the short-lived,
//! per-tenant-keyed store of computed `Reconstruct` replies that makes
//! client retries idempotent (see the self-healing `Client`). It lives
//! here because its keys are tenant-scoped — the cache is part of the
//! tenant-isolation story, not the transport.

use crate::registry::ModelEntry;
use fv_runtime::telemetry;
use fv_sampling::PointCloud;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

static TM_SESSIONS: telemetry::Gauge = telemetry::Gauge::new("serve.sessions");
static TM_REJECT_INFLIGHT: telemetry::Counter = telemetry::Counter::new("serve.reject.inflight");
static TM_RETRY_HIT: telemetry::Counter = telemetry::Counter::new("serve.retry.cache_hit");
static TM_RETRY_STORE: telemetry::Counter = telemetry::Counter::new("serve.retry.cached");

/// Per-tenant counters, reported by the `Stats` op.
#[derive(Debug)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Reconstruction requests admitted.
    pub requests: AtomicU64,
    /// Query rows served.
    pub rows: AtomicU64,
    /// Responses demoted to the classical fallback.
    pub degraded: AtomicU64,
    /// Requests rejected (queue full, in-flight cap, deadline).
    pub rejected: AtomicU64,
    /// Typed error responses.
    pub errors: AtomicU64,
    /// Requests currently in flight.
    pub inflight: AtomicU64,
    /// High-watermark of `inflight`.
    pub peak_inflight: AtomicU64,
}

impl TenantStats {
    fn new(name: String) -> Self {
        Self {
            name,
            requests: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            peak_inflight: AtomicU64::new(0),
        }
    }

    /// One JSON object (hand-rolled, like `fv_runtime::telemetry`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tenant\": \"{}\", \"requests\": {}, \"rows\": {}, \"degraded\": {}, \"rejected\": {}, \"errors\": {}, \"inflight\": {}, \"peak_inflight\": {}}}",
            self.name.escape_default(),
            self.requests.load(Ordering::Relaxed),
            self.rows.load(Ordering::Relaxed),
            self.degraded.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.inflight.load(Ordering::Relaxed),
            self.peak_inflight.load(Ordering::Relaxed),
        )
    }
}

/// RAII in-flight slot: dropping it releases the tenant's slot, whatever
/// path (response, error, panic unwind) got us there.
#[derive(Debug)]
pub struct InflightGuard {
    tenant: Arc<TenantStats>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.tenant.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One open session.
#[derive(Debug)]
pub struct Session {
    /// Session id (unique for the server's lifetime).
    pub id: u64,
    /// Id of the connection that opened the session; ops arriving over
    /// any other connection are rejected as "no such session".
    pub owner_conn: u64,
    /// Owning tenant.
    pub tenant: Arc<TenantStats>,
    /// Bound model.
    pub model: Arc<ModelEntry>,
    /// Uploaded sample cloud, if any. `Arc` so in-flight batched requests
    /// keep a consistent cloud even if the tenant re-uploads mid-request.
    pub cloud: Option<Arc<PointCloud>>,
}

/// `splitmix64` finalizer: a bijective scramble of the id counter so
/// session ids carry no sequence information on the wire.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Zero-dependency entropy for the id key: wall-clock nanos mixed with
/// ASLR-influenced heap and stack addresses. Not cryptographic — the
/// enforced isolation boundary is the per-connection ownership check,
/// not id secrecy.
fn entropy_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let heap = Box::new(0u64);
    let heap_addr = &*heap as *const u64 as u64;
    let stack_addr = &now as *const u64 as u64;
    splitmix64(now ^ heap_addr.rotate_left(32) ^ stack_addr.rotate_left(17))
}

/// All live sessions plus the tenant table.
pub struct SessionManager {
    sessions: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
    // BTreeMap: Stats output is deterministically ordered by tenant name.
    tenants: Mutex<BTreeMap<String, Arc<TenantStats>>>,
    next_id: AtomicU64,
    id_key: u64,
    max_inflight: u64,
}

impl std::fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionManager")
            .field("sessions", &self.len())
            .field("max_inflight", &self.max_inflight)
            .finish()
    }
}

impl SessionManager {
    /// Manager with a per-tenant in-flight cap.
    pub fn new(max_inflight_per_tenant: u64) -> Self {
        Self {
            sessions: Mutex::new(HashMap::new()),
            tenants: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            id_key: entropy_seed(),
            max_inflight: max_inflight_per_tenant.max(1),
        }
    }

    /// The tenant record, created on first sight.
    pub fn tenant(&self, name: &str) -> Arc<TenantStats> {
        let mut tenants = self.tenants.lock().expect("tenant lock");
        tenants
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(TenantStats::new(name.to_string())))
            .clone()
    }

    /// Open a session owned by connection `conn`; returns its id.
    pub fn open(&self, tenant: &str, model: Arc<ModelEntry>, conn: u64) -> u64 {
        let tenant = self.tenant(tenant);
        let mut sessions = self.sessions.lock().expect("session lock");
        // Randomized ids (bijective scramble of a keyed counter); the
        // collision loop is for paranoia, not expectation.
        let mut id = splitmix64(self.id_key ^ self.next_id.fetch_add(1, Ordering::Relaxed));
        while sessions.contains_key(&id) {
            id = splitmix64(self.id_key ^ self.next_id.fetch_add(1, Ordering::Relaxed));
        }
        let session = Session {
            id,
            owner_conn: conn,
            tenant,
            model,
            cloud: None,
        };
        sessions.insert(id, Arc::new(Mutex::new(session)));
        TM_SESSIONS.set(sessions.len() as u64);
        id
    }

    /// Look a session up on behalf of connection `conn`. A session owned
    /// by a different connection reads as absent — callers surface the
    /// same `UnknownSession` either way, so an id probe learns nothing.
    pub fn get(&self, id: u64, conn: u64) -> Option<Arc<Mutex<Session>>> {
        let session = self.sessions.lock().expect("session lock").get(&id).cloned()?;
        if session.lock().expect("session").owner_conn != conn {
            return None;
        }
        Some(session)
    }

    /// Close a session on behalf of connection `conn`. Returns the
    /// closed session's tenant *name* if it existed and `conn` owns it
    /// (`None` otherwise), so the caller can run tenant-scoped cleanup —
    /// e.g. dropping the tenant's cached replies once its last session is
    /// gone. The name (not the `Arc`) is returned deliberately: holding
    /// the record across the internal prune would keep the tenant
    /// artificially "active".
    pub fn close(&self, id: u64, conn: u64) -> Option<String> {
        self.close_and_then(id, conn, |_| {})
    }

    /// [`Self::close`], plus tenant-idle cleanup that cannot race with a
    /// concurrent open: when the closed session was the last reference
    /// to its tenant, `on_idle(&tenant_name)` runs *inside* the tenant
    /// table's critical section. Because [`Self::tenant`] registers a
    /// tenant under the same lock, a racing open for the same name
    /// either lands before the idle check (the tenant reads active, no
    /// cleanup) or blocks until `on_idle` returns (anything it stores —
    /// e.g. a cached reply — postdates the cleanup). Checking
    /// [`Self::tenant_is_active`] *after* `close` returns leaves a
    /// window between check and cleanup where exactly that interleaving
    /// destroys a fresh tenant's state.
    pub fn close_and_then(
        &self,
        id: u64,
        conn: u64,
        on_idle: impl FnOnce(&str),
    ) -> Option<String> {
        let closed = {
            let mut sessions = self.sessions.lock().expect("session lock");
            let owned = sessions
                .get(&id)
                .is_some_and(|s| s.lock().expect("session").owner_conn == conn);
            let closed = if owned {
                sessions
                    .remove(&id)
                    .map(|s| s.lock().expect("session").tenant.name.clone())
            } else {
                None
            };
            TM_SESSIONS.set(sessions.len() as u64);
            closed
        };
        if let Some(name) = &closed {
            let mut tenants = self.tenants.lock().expect("tenant lock");
            // Drop tenant records nothing references anymore: every
            // session and in-flight job holds a clone of the `Arc`, so
            // the map's is the last reference exactly when the tenant is
            // idle. Client-chosen tenant names must not grow server
            // memory without bound.
            tenants.retain(|_, t| Arc::strong_count(t) > 1);
            if !tenants.contains_key(name) {
                on_idle(name);
            }
        }
        closed
    }

    /// `true` while the tenant record is referenced by any session or
    /// in-flight job. Meaningful right after [`Self::close`] (which
    /// prunes idle records): a `false` answer means the tenant just went
    /// fully idle.
    pub fn tenant_is_active(&self, name: &str) -> bool {
        self.tenants
            .lock()
            .expect("tenant lock")
            .contains_key(name)
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.lock().expect("session lock").len()
    }

    /// `true` when no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Try to take an in-flight slot for the tenant.
    pub fn try_admit(&self, tenant: &Arc<TenantStats>) -> Option<InflightGuard> {
        let mut cur = tenant.inflight.load(Ordering::Acquire);
        loop {
            if cur >= self.max_inflight {
                TM_REJECT_INFLIGHT.incr();
                return None;
            }
            match tenant.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        let now = tenant.inflight.load(Ordering::Acquire);
        tenant.peak_inflight.fetch_max(now, Ordering::AcqRel);
        Some(InflightGuard {
            tenant: tenant.clone(),
        })
    }

    /// JSON array of per-tenant counters, ordered by tenant name.
    pub fn tenants_json(&self) -> String {
        let tenants = self.tenants.lock().expect("tenant lock");
        let rows: Vec<String> = tenants.values().map(|t| t.to_json()).collect();
        format!("[{}]", rows.join(", "))
    }
}

// ---------------------------------------------------------------------------
// Idempotent-retry reply cache
// ---------------------------------------------------------------------------

struct CachedReply {
    status: u8,
    payload: Arc<Vec<u8>>,
    at: Instant,
}

struct ReplyCacheInner {
    map: HashMap<(String, u64), CachedReply>,
    /// Insertion order for FIFO eviction under the byte budget.
    order: VecDeque<(String, u64)>,
    bytes: usize,
}

/// Short-lived store of computed `Reconstruct` replies, keyed by
/// `(tenant, request_id)`.
///
/// When a self-healing client's connection dies *after* the server
/// computed a reply but *before* the client read it, the retried request
/// (same nonzero `request_id`, possibly over a brand-new connection and
/// session) is answered from here: the original bytes are replayed, the
/// reconstruction is not recomputed, and the tenant's request counters
/// are not incremented a second time. Keying by tenant name means a
/// replay works across reconnects (sessions die with their connection)
/// while one tenant can never read another's cached reply.
///
/// Entries expire after `ttl` — retries arrive within a backoff window,
/// not hours later — and the whole cache is bounded by `byte_budget`
/// with FIFO eviction, so a hostile client cannot grow server memory by
/// minting request ids.
pub struct ReplyCache {
    ttl: Duration,
    byte_budget: usize,
    inner: Mutex<ReplyCacheInner>,
    hits: AtomicU64,
    stores: AtomicU64,
}

impl std::fmt::Debug for ReplyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("reply cache lock");
        f.debug_struct("ReplyCache")
            .field("entries", &inner.map.len())
            .field("bytes", &inner.bytes)
            .field("ttl", &self.ttl)
            .finish()
    }
}

impl ReplyCache {
    /// A cache bounded by `ttl` per entry and `byte_budget` overall.
    pub fn new(ttl: Duration, byte_budget: usize) -> Self {
        Self {
            ttl,
            byte_budget: byte_budget.max(1),
            inner: Mutex::new(ReplyCacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                bytes: 0,
            }),
            hits: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        }
    }

    /// Replay a cached reply for `(tenant, request_id)`, if still fresh.
    /// Expired entries are dropped on the way.
    pub fn get(&self, tenant: &str, request_id: u64) -> Option<(u8, Arc<Vec<u8>>)> {
        if request_id == 0 {
            return None;
        }
        let mut inner = self.inner.lock().expect("reply cache lock");
        self.prune_expired(&mut inner);
        let key = (tenant.to_string(), request_id);
        let hit = inner
            .map
            .get(&key)
            .map(|c| (c.status, c.payload.clone()))?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        TM_RETRY_HIT.incr();
        Some(hit)
    }

    /// Store a computed reply. Oversized payloads (over the whole
    /// budget) are skipped — a retry of one simply recomputes.
    pub fn put(&self, tenant: &str, request_id: u64, status: u8, payload: Arc<Vec<u8>>) {
        if request_id == 0 || payload.len() > self.byte_budget {
            return;
        }
        let mut inner = self.inner.lock().expect("reply cache lock");
        self.prune_expired(&mut inner);
        let key = (tenant.to_string(), request_id);
        while inner.bytes + payload.len() > self.byte_budget {
            let Some(old_key) = inner.order.pop_front() else {
                break;
            };
            if let Some(old) = inner.map.remove(&old_key) {
                inner.bytes -= old.payload.len();
            }
        }
        inner.bytes += payload.len();
        let prev = inner.map.insert(
            key.clone(),
            CachedReply {
                status,
                payload,
                at: Instant::now(),
            },
        );
        if let Some(prev) = prev {
            // Same id stored twice (racing duplicate): keep one charge.
            inner.bytes -= prev.payload.len();
        } else {
            inner.order.push_back(key);
        }
        self.stores.fetch_add(1, Ordering::Relaxed);
        TM_RETRY_STORE.incr();
    }

    /// Drop every cached reply belonging to `tenant`.
    ///
    /// Called when a tenant's last session closes *gracefully* (explicit
    /// `CloseSession`): the tenant said it is done, so its replies must
    /// not linger for the TTL — a workload churning through tenant names
    /// would otherwise hold `O(request rate × TTL)` entries instead of
    /// `O(active tenants)`. Deliberately **not** called when a torn
    /// connection reaps sessions: that is exactly the moment a
    /// self-healing client is about to reconnect and replay, and pruning
    /// there would defeat the cache's whole purpose (those entries still
    /// die by TTL/budget).
    pub fn prune_tenant(&self, tenant: &str) {
        let mut inner = self.inner.lock().expect("reply cache lock");
        let mut freed = 0usize;
        inner.map.retain(|(t, _), c| {
            let keep = t != tenant;
            if !keep {
                freed += c.payload.len();
            }
            keep
        });
        inner.bytes -= freed;
        inner.order.retain(|(t, _)| t != tenant);
    }

    fn prune_expired(&self, inner: &mut ReplyCacheInner) {
        while let Some(front) = inner.order.front() {
            let expired = inner
                .map
                .get(front)
                .is_none_or(|c| c.at.elapsed() >= self.ttl);
            if !expired {
                break;
            }
            let key = inner.order.pop_front().expect("front present");
            if let Some(old) = inner.map.remove(&key) {
                inner.bytes -= old.payload.len();
            }
        }
    }

    /// Cached replies currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("reply cache lock").map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes currently charged.
    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("reply cache lock").bytes
    }

    /// Replays served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Replies stored.
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use fillvoid_core::{FcnnPipeline, PipelineConfig};
    use fv_field::{Grid3, ScalarField};

    fn entry() -> Arc<ModelEntry> {
        let g = Grid3::new([8, 8, 4]).unwrap();
        let f = ScalarField::from_world_fn(g, |p| (p[0] * 0.3).sin() as f32);
        let mut cfg = PipelineConfig::small_for_tests();
        cfg.trainer.epochs = 1;
        let p = FcnnPipeline::train(&f, &cfg, 1).unwrap();
        ModelRegistry::new(64 << 20).insert("t", 0, p).unwrap()
    }

    #[test]
    fn open_close_and_slot_accounting() {
        let m = SessionManager::new(2);
        let e = entry();
        let id = m.open("acme", e.clone(), 7);
        assert!(m.get(id, 7).is_some());
        assert_eq!(m.len(), 1);

        let t = m.tenant("acme");
        let g1 = m.try_admit(&t).expect("slot 1");
        let _g2 = m.try_admit(&t).expect("slot 2");
        assert!(m.try_admit(&t).is_none(), "cap is 2");
        drop(g1);
        assert!(m.try_admit(&t).is_some(), "drop released the slot");
        assert_eq!(t.peak_inflight.load(Ordering::Relaxed), 2);

        assert_eq!(m.close(id, 7).as_deref(), Some("acme"));
        assert!(m.close(id, 7).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn sessions_are_invisible_to_other_connections() {
        let m = SessionManager::new(2);
        let id = m.open("acme", entry(), 1);
        // Another connection can neither read nor close the session,
        // even knowing its id.
        assert!(m.get(id, 2).is_none());
        assert!(m.close(id, 2).is_none());
        assert_eq!(m.len(), 1, "foreign close must not remove the session");
        // The owner still can.
        assert!(m.get(id, 1).is_some());
        assert!(m.close(id, 1).is_some());
    }

    #[test]
    fn session_ids_are_not_sequential() {
        let m = SessionManager::new(2);
        let e = entry();
        let a = m.open("acme", e.clone(), 1);
        let b = m.open("acme", e, 1);
        assert_ne!(b, a.wrapping_add(1), "ids must not be predictable from a neighbor");
    }

    #[test]
    fn idle_tenants_are_pruned_on_close() {
        let m = SessionManager::new(2);
        let id = m.open("transient-tenant", entry(), 1);
        assert!(m.tenants_json().contains("transient-tenant"));
        assert!(m.tenant_is_active("transient-tenant"));
        assert_eq!(m.close(id, 1).as_deref(), Some("transient-tenant"));
        assert!(
            !m.tenants_json().contains("transient-tenant"),
            "idle tenant record must not outlive its sessions"
        );
        assert!(
            !m.tenant_is_active("transient-tenant"),
            "close must report the tenant idle (not kept alive by the returned name)"
        );
    }

    /// `close_and_then` runs its idle cleanup inside the tenant critical
    /// section, and only when the closed session was the tenant's last
    /// reference — an open session or an in-flight guard defers it.
    #[test]
    fn close_and_then_fires_only_on_last_reference() {
        let m = SessionManager::new(2);
        let e = entry();
        let a = m.open("acme", e.clone(), 1);
        let b = m.open("acme", e.clone(), 1);
        let mut fired: Vec<String> = Vec::new();
        assert!(m.close_and_then(a, 1, |t| fired.push(t.into())).is_some());
        assert!(fired.is_empty(), "a second session keeps the tenant active");
        assert!(m.close_and_then(b, 1, |t| fired.push(t.into())).is_some());
        assert_eq!(fired, ["acme"], "last close must run the idle cleanup");

        // An in-flight job (its guard clones the tenant Arc) defers the
        // cleanup even when no session remains.
        let c = m.open("acme", e, 1);
        let t = m.tenant("acme");
        let guard = m.try_admit(&t).expect("slot");
        drop(t); // only the guard may pin the tenant for this check
        assert!(m.close_and_then(c, 1, |t| fired.push(t.into())).is_some());
        assert_eq!(fired.len(), 1, "in-flight guard must defer the cleanup");
        drop(guard);

        // A close that doesn't own the session never fires the cleanup.
        let d = m.open("other", entry(), 1);
        assert!(m.close_and_then(d, 99, |t| fired.push(t.into())).is_none());
        assert_eq!(fired.len(), 1, "foreign close must not run cleanup");
    }

    #[test]
    fn guard_released_across_panic() {
        let m = SessionManager::new(1);
        let t = m.tenant("acme");
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.try_admit(&t).expect("slot");
            panic!("worker died");
        }));
        assert!(res.is_err());
        assert_eq!(t.inflight.load(Ordering::Relaxed), 0, "unwind released");
        assert!(m.try_admit(&t).is_some());
    }

    #[test]
    fn reply_cache_replays_per_tenant_with_ttl_and_budget() {
        let c = ReplyCache::new(Duration::from_secs(60), 1024);
        assert!(c.get("acme", 7).is_none());
        c.put("acme", 7, 0, Arc::new(vec![1, 2, 3]));
        let (status, payload) = c.get("acme", 7).expect("cached");
        assert_eq!((status, payload.as_slice()), (0, &[1u8, 2, 3][..]));
        // Tenant-scoped: another tenant cannot replay the same id.
        assert!(c.get("evil", 7).is_none());
        // Id 0 is "not idempotent": never stored, never served.
        c.put("acme", 0, 0, Arc::new(vec![9]));
        assert!(c.get("acme", 0).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.stores(), 1);

        // Byte budget: FIFO eviction, oversized payloads skipped.
        let small = ReplyCache::new(Duration::from_secs(60), 8);
        small.put("t", 1, 0, Arc::new(vec![0; 6]));
        small.put("t", 2, 0, Arc::new(vec![0; 6])); // evicts id 1
        assert!(small.get("t", 1).is_none());
        assert!(small.get("t", 2).is_some());
        assert!(small.bytes() <= 8);
        small.put("t", 3, 0, Arc::new(vec![0; 64])); // over budget: skipped
        assert!(small.get("t", 3).is_none());

        // TTL expiry.
        let fast = ReplyCache::new(Duration::from_millis(20), 1024);
        fast.put("t", 1, 0, Arc::new(vec![1]));
        std::thread::sleep(Duration::from_millis(40));
        assert!(fast.get("t", 1).is_none());
        assert!(fast.is_empty());
        assert_eq!(fast.bytes(), 0);
    }

    /// Regression for the churned-tenant-name leak: before `prune_tenant`
    /// existed, a workload cycling through tenant names left every
    /// tenant's replies resident until TTL/budget pressure — the cache
    /// grew with *names seen*, not *tenants active*. Graceful last-
    /// session close must drop the tenant's entries immediately.
    #[test]
    fn reply_cache_prunes_closed_tenants_to_active_set() {
        let c = ReplyCache::new(Duration::from_secs(3600), 1 << 20);
        for i in 0..64u64 {
            let name = format!("churn-{i}");
            c.put(&name, i + 1, 0, Arc::new(vec![0u8; 128]));
            // The tenant closes its last session; the server prunes.
            c.prune_tenant(&name);
        }
        assert!(
            c.is_empty(),
            "churned tenants must not accumulate: {} entries resident",
            c.len()
        );
        assert_eq!(c.bytes(), 0, "byte accounting must drain with the entries");

        // Pruning one tenant must not touch another's replies.
        c.put("alive", 1, 0, Arc::new(vec![1, 2]));
        c.put("gone", 1, 0, Arc::new(vec![3, 4]));
        c.prune_tenant("gone");
        assert!(c.get("alive", 1).is_some());
        assert!(c.get("gone", 1).is_none());
        assert_eq!(c.bytes(), 2);
    }

    #[test]
    fn tenants_json_is_ordered_and_valid_shape() {
        let m = SessionManager::new(4);
        m.tenant("zeta");
        m.tenant("alpha");
        let json = m.tenants_json();
        let a = json.find("alpha").unwrap();
        let z = json.find("zeta").unwrap();
        assert!(a < z, "tenants must be name-ordered: {json}");
        assert!(json.starts_with('[') && json.ends_with(']'));
    }
}
