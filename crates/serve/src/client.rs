//! Blocking client for the FVS1 protocol (tests, benches, CI smoke).

use crate::proto::{
    self, ErrorBody, GridWire, Op, OpenSessionReq, PutCloudReq, ReconstructReq, ReconstructResp,
    Status,
};
use fv_field::{Grid3, ScalarField};
use fv_sampling::PointCloud;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// Could not read a well-formed frame.
    Frame(proto::FrameError),
    /// Could not decode a well-formed frame's payload.
    Wire(proto::WireError),
    /// The server answered with a typed error.
    Server {
        /// Response status ([`Status::Error`] or [`Status::ShuttingDown`]).
        status: Status,
        /// Typed code (raw; see [`proto::ErrorCode`]).
        code: u16,
        /// Server-provided detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o: {e}"),
            ClientError::Frame(e) => write!(f, "client frame: {e}"),
            ClientError::Wire(e) => write!(f, "client decode: {e}"),
            ClientError::Server {
                status,
                code,
                message,
            } => write!(f, "server error ({status:?}, code {code}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<proto::FrameError> for ClientError {
    fn from(e: proto::FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<proto::WireError> for ClientError {
    fn from(e: proto::WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A reconstruction served over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedField {
    /// The dense reconstruction.
    pub field: ScalarField,
    /// `true` when the server demoted the request to the classical
    /// fallback (circuit breaker / model failure).
    pub degraded: bool,
    /// Demotion reason (empty for full-fidelity responses).
    pub reason: String,
}

/// Blocking FVS1 client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self { stream })
    }

    /// One request/response exchange. Error and ShuttingDown statuses are
    /// surfaced as [`ClientError::Server`].
    fn call(&mut self, op: Op, payload: &[u8]) -> Result<(Status, Vec<u8>), ClientError> {
        proto::write_frame(&mut self.stream, op as u8, Status::Ok as u8, payload)?;
        let frame = proto::read_frame(&mut self.stream)?;
        let status = Status::from_u8(frame.status).ok_or_else(|| {
            ClientError::Wire(proto::WireError(format!("unknown status {}", frame.status)))
        })?;
        match status {
            Status::Ok | Status::Degraded => Ok((status, frame.payload)),
            Status::Error | Status::ShuttingDown => {
                let body = ErrorBody::decode(&frame.payload)?;
                Err(ClientError::Server {
                    status,
                    code: body.code,
                    message: body.message,
                })
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(Op::Ping, b"ping")?;
        Ok(())
    }

    /// Open a tenant session bound to `(dataset, version)`.
    pub fn open_session(
        &mut self,
        tenant: &str,
        dataset: &str,
        version: u32,
    ) -> Result<u64, ClientError> {
        let req = OpenSessionReq {
            tenant: tenant.into(),
            dataset: dataset.into(),
            version,
        };
        let (_, payload) = self.call(Op::OpenSession, &req.encode())?;
        Ok(proto::decode_session_id(&payload)?)
    }

    /// Upload the session's sample cloud.
    pub fn put_cloud(&mut self, session: u64, cloud: &PointCloud) -> Result<(), ClientError> {
        let req = PutCloudReq {
            session,
            grid: GridWire::from_grid(cloud.grid()),
            indices: cloud.indices().iter().map(|&i| i as u64).collect(),
            values: cloud.values().to_vec(),
        };
        self.call(Op::PutCloud, &req.encode())?;
        Ok(())
    }

    /// Request a reconstruction onto `target`; `deadline_ms = 0` is
    /// unbounded.
    pub fn reconstruct(
        &mut self,
        session: u64,
        target: &Grid3,
        deadline_ms: u32,
    ) -> Result<ServedField, ClientError> {
        let req = ReconstructReq {
            session,
            target: GridWire::from_grid(target),
            deadline_ms,
        };
        let (status, payload) = self.call(Op::Reconstruct, &req.encode())?;
        let body = ReconstructResp::decode(&payload)?;
        let field = ScalarField::from_vec(*target, body.values)
            .map_err(|e| ClientError::Wire(proto::WireError(format!("bad field: {e}"))))?;
        Ok(ServedField {
            field,
            degraded: status == Status::Degraded,
            reason: body.reason,
        })
    }

    /// Scrape the server's JSON stats (telemetry snapshot + per-tenant
    /// counters).
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let (_, payload) = self.call(Op::Stats, &[])?;
        String::from_utf8(payload)
            .map_err(|_| ClientError::Wire(proto::WireError("non-utf8 stats".into())))
    }

    /// Close a session.
    pub fn close_session(&mut self, session: u64) -> Result<(), ClientError> {
        self.call(Op::CloseSession, &proto::encode_session_id(session))?;
        Ok(())
    }

    /// Ask the server to shut down.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call(Op::Shutdown, &[])?;
        Ok(())
    }

    /// Send raw bytes (protocol robustness tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Read one raw frame (protocol robustness tests).
    pub fn read_raw(&mut self) -> Result<proto::Frame, ClientError> {
        Ok(proto::read_frame(&mut self.stream)?)
    }

    /// The underlying stream (for tests that tear connections).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
