//! Blocking client for the FVS1 protocol (tests, benches, CI smoke).
//!
//! Two modes share one type:
//!
//! - [`Client::connect`] is the raw single-connection client: every
//!   transport failure surfaces to the caller. Protocol-robustness tests
//!   depend on these exact semantics.
//! - [`Client::connect_healing`] layers self-healing on top: a transport
//!   failure triggers a capped-exponential-backoff reconnect, tracked
//!   sessions are re-opened (with their *originally requested* version
//!   spec, so `VERSION_ACTIVE` re-resolves) and their clouds re-uploaded,
//!   and the failed request is retried with the new session ids. Each
//!   reconstruction carries a nonzero idempotency id, reused verbatim
//!   across retries: if the original reply was computed but lost on the
//!   wire, the server replays it from its reply cache instead of
//!   recomputing — the retry can never double-count or diverge.

use crate::proto::{
    self, BrickFrame, BrickMsg, BrickSummary, ErrorBody, ErrorCode, GridWire, Op, OpenSessionReq,
    OpenSessionResp, PutCloudReq, ReconstructBrickedReq, ReconstructReq, ReconstructResp, Status,
    SwapModelReq,
};
use fillvoid_core::FcnnPipeline;
use fv_field::{Grid3, ScalarField};
use fv_sampling::PointCloud;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// Could not read a well-formed frame.
    Frame(proto::FrameError),
    /// Could not decode a well-formed frame's payload.
    Wire(proto::WireError),
    /// The server answered with a typed error.
    Server {
        /// Response status ([`Status::Error`] or [`Status::ShuttingDown`]).
        status: Status,
        /// Typed code (raw; see [`proto::ErrorCode`]).
        code: u16,
        /// Server-provided detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o: {e}"),
            ClientError::Frame(e) => write!(f, "client frame: {e}"),
            ClientError::Wire(e) => write!(f, "client decode: {e}"),
            ClientError::Server {
                status,
                code,
                message,
            } => write!(f, "server error ({status:?}, code {code}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<proto::FrameError> for ClientError {
    fn from(e: proto::FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<proto::WireError> for ClientError {
    fn from(e: proto::WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// `true` for failures of the *connection* (retryable by reconnecting),
/// `false` for failures of the *request* (the server answered; retrying
/// the same bytes would get the same answer).
fn transport(e: &ClientError) -> bool {
    matches!(e, ClientError::Io(_) | ClientError::Frame(_))
}

/// A reconstruction served over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedField {
    /// The dense reconstruction.
    pub field: ScalarField,
    /// `true` when the server demoted the request to the classical
    /// fallback (circuit breaker / model failure).
    pub degraded: bool,
    /// Demotion reason (empty for full-fidelity responses).
    pub reason: String,
}

/// One brick delivered by a streamed reconstruction, already converted
/// to host extents.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedBrick {
    /// Brick index in the layout's x-fastest brick order.
    pub index: u64,
    /// Inclusive low voxel corner in the target grid.
    pub start: [usize; 3],
    /// Brick extent in voxels.
    pub dims: [usize; 3],
    /// Dense values, x-fastest within the brick.
    pub values: Vec<f32>,
}

/// What a completed brick stream did, including the healing layer's
/// resume effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Bricks in the full decomposition.
    pub total_bricks: u64,
    /// Bricks delivered to the callback across all attempts.
    pub received: u64,
    /// Bricks the *final* attempt skipped because an earlier attempt had
    /// already delivered them — work a torn stream did not redo.
    pub resumed: u64,
    /// Largest halo any brick needed (final attempt).
    pub max_halo: u64,
    /// Reconnects the healing layer performed during this stream.
    pub reconnects: u64,
}

/// Reconnect schedule for the self-healing client: up to `attempts`
/// retries, sleeping `base * 2^n` before the n-th (capped at `max`).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the initial attempt.
    pub attempts: u32,
    /// First backoff sleep.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 5,
            base: Duration::from_millis(50),
            max: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base.saturating_mul(factor).min(self.max)
    }
}

/// Everything needed to rebuild one session on a fresh connection.
#[derive(Debug, Clone)]
struct Tracked {
    tenant: String,
    dataset: String,
    /// The version the *caller* asked for — may be
    /// [`proto::VERSION_ACTIVE`], which re-resolves on every re-open.
    version_spec: u32,
    /// Concrete version the current server session is pinned to.
    pinned: u32,
    /// Server-side session id on the current connection.
    server_id: u64,
    /// Last uploaded cloud, replayed after a reconnect.
    cloud: Option<PointCloud>,
}

#[derive(Debug)]
struct Healing {
    peer: SocketAddr,
    policy: RetryPolicy,
    /// Logical id (stable across reconnects, what callers hold) →
    /// session state. Server-side ids die with their connection.
    sessions: HashMap<u64, Tracked>,
    next_logical: u64,
    reconnects: u64,
    /// Idempotency-id generator state.
    id_base: u64,
    seq: u64,
}

/// Zero-dependency per-client entropy for idempotency ids: ids from two
/// client processes retrying against the same tenant must not collide.
/// Not cryptographic — collisions only risk a stale cached reply within
/// the cache's few-second TTL.
fn entropy() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let heap = Box::new(0u64);
    let addr = &*heap as *const u64 as u64;
    (now ^ addr.rotate_left(29)).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1
}

/// One request/response exchange over an established stream. Error and
/// ShuttingDown statuses are surfaced as [`ClientError::Server`]. A free
/// function (not a method) so the healing path can drive it while
/// holding disjoint borrows of the client's session table.
fn exchange(
    stream: &mut TcpStream,
    op: Op,
    payload: &[u8],
) -> Result<(Status, Vec<u8>), ClientError> {
    proto::write_frame(stream, op as u8, Status::Ok as u8, payload)?;
    let frame = proto::read_frame(stream)?;
    let status = Status::from_u8(frame.status).ok_or_else(|| {
        ClientError::Wire(proto::WireError(format!("unknown status {}", frame.status)))
    })?;
    match status {
        Status::Ok | Status::Degraded => Ok((status, frame.payload)),
        Status::Error | Status::ShuttingDown => {
            let body = ErrorBody::decode(&frame.payload)?;
            Err(ClientError::Server {
                status,
                code: body.code,
                message: body.message,
            })
        }
    }
}

/// Drive one `ReconstructBricked` exchange: send the request, deliver
/// brick frames to `on_brick` in ascending index order, and return the
/// terminating summary. `next` is the caller's contiguous-prefix
/// watermark (first brick index not yet delivered); it advances as bricks
/// arrive, so when the stream tears mid-flight the caller knows exactly
/// where to resume. A free function (like [`exchange`]) so the healing
/// retry loop can drive it while borrowing the session table.
fn stream_once(
    stream: &mut TcpStream,
    req: &ReconstructBrickedReq,
    next: &mut u64,
    on_brick: &mut dyn FnMut(ServedBrick),
) -> Result<BrickSummary, ClientError> {
    proto::write_frame(
        stream,
        Op::ReconstructBricked as u8,
        Status::Ok as u8,
        &req.encode(),
    )?;
    loop {
        let frame = proto::read_frame(stream)?;
        let status = Status::from_u8(frame.status).ok_or_else(|| {
            ClientError::Wire(proto::WireError(format!("unknown status {}", frame.status)))
        })?;
        if matches!(status, Status::Error | Status::ShuttingDown) {
            let body = ErrorBody::decode(&frame.payload)?;
            return Err(ClientError::Server {
                status,
                code: body.code,
                message: body.message,
            });
        }
        match BrickMsg::decode(&frame.payload)? {
            BrickMsg::Brick(b) => {
                if b.request_id != req.request_id {
                    return Err(ClientError::Wire(proto::WireError(format!(
                        "brick for foreign request {:#x} (stream is {:#x})",
                        b.request_id, req.request_id
                    ))));
                }
                if b.index != *next {
                    return Err(ClientError::Wire(proto::WireError(format!(
                        "brick {} out of order (expected {})",
                        b.index, *next
                    ))));
                }
                let served = served_brick(b)?;
                on_brick(served);
                *next += 1;
            }
            BrickMsg::Summary(s) => {
                if s.request_id != req.request_id {
                    return Err(ClientError::Wire(proto::WireError(
                        "summary for foreign request".into(),
                    )));
                }
                return Ok(s);
            }
        }
    }
}

/// Convert a wire brick to host extents, with checked casts.
fn served_brick(b: BrickFrame) -> Result<ServedBrick, ClientError> {
    let cast = |v: u64| -> Result<usize, ClientError> {
        usize::try_from(v)
            .map_err(|_| ClientError::Wire(proto::WireError(format!("extent {v} overflows usize"))))
    };
    Ok(ServedBrick {
        index: b.index,
        start: [cast(b.start[0])?, cast(b.start[1])?, cast(b.start[2])?],
        dims: [cast(b.dims[0])?, cast(b.dims[1])?, cast(b.dims[2])?],
        values: b.values,
    })
}

/// Blocking FVS1 client over one TCP connection (plus, in healing mode,
/// however many reconnects it takes).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    healing: Option<Healing>,
}

impl Client {
    /// Connect to a server (raw mode: transport failures surface).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            healing: None,
        })
    }

    /// Connect with self-healing: see the module docs for the retry /
    /// re-establishment contract. Session ids returned by this client
    /// are *logical* — stable across reconnects.
    pub fn connect_healing(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> Result<Self, ClientError> {
        let peer = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Wire(proto::WireError("address resolved empty".into())))?;
        let stream = TcpStream::connect(peer)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            healing: Some(Healing {
                peer,
                policy,
                sessions: HashMap::new(),
                next_logical: 1,
                reconnects: 0,
                id_base: entropy(),
                seq: 0,
            }),
        })
    }

    /// How many times the healing layer has reconnected (0 in raw mode).
    pub fn reconnects(&self) -> u64 {
        self.healing.as_ref().map_or(0, |h| h.reconnects)
    }

    /// Tear the TCP connection under the client (test hook for the
    /// healing path).
    pub fn break_connection(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// One exchange in raw mode.
    fn call(&mut self, op: Op, payload: &[u8]) -> Result<(Status, Vec<u8>), ClientError> {
        exchange(&mut self.stream, op, payload)
    }

    /// Reconnect and re-establish every tracked session: re-open with the
    /// originally requested version spec, then re-upload its cloud. The
    /// session table survives a failure partway through — the next retry
    /// attempt starts over from a fresh connection.
    fn reheal(&mut self) -> Result<(), ClientError> {
        let h = self.healing.as_mut().expect("reheal without healing mode");
        let stream = TcpStream::connect(h.peer)?;
        let _ = stream.set_nodelay(true);
        self.stream = stream;
        h.reconnects += 1;
        let mut sessions = std::mem::take(&mut h.sessions);
        let mut result = Ok(());
        for t in sessions.values_mut() {
            let open = OpenSessionReq {
                tenant: t.tenant.clone(),
                dataset: t.dataset.clone(),
                version: t.version_spec,
            };
            let reopened = open
                .encode()
                .map_err(ClientError::from)
                .and_then(|bytes| exchange(&mut self.stream, Op::OpenSession, &bytes))
                .and_then(|(_, payload)| Ok(OpenSessionResp::decode(&payload)?));
            let resp = match reopened {
                Ok(r) => r,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            };
            t.server_id = resp.session;
            t.pinned = resp.version;
            if let Some(cloud) = &t.cloud {
                let put = PutCloudReq {
                    session: resp.session,
                    grid: GridWire::from_grid(cloud.grid()),
                    indices: cloud.indices().iter().map(|&i| i as u64).collect(),
                    values: cloud.values().to_vec(),
                };
                if let Err(e) = exchange(&mut self.stream, Op::PutCloud, &put.encode()) {
                    result = Err(e);
                    break;
                }
            }
        }
        let h = self.healing.as_mut().expect("healing mode");
        h.sessions = sessions;
        result
    }

    /// Healing-mode request loop: rebuild the payload from the current
    /// session table (retried frames must carry the *new* server-side
    /// ids), exchange, and on a transport error back off, reconnect,
    /// re-establish, and try again — up to the policy's attempt cap.
    fn call_retry(
        &mut self,
        op: Op,
        build: impl Fn(&Healing) -> Result<Vec<u8>, ClientError>,
    ) -> Result<(Status, Vec<u8>), ClientError> {
        let mut attempt = 0u32;
        loop {
            let h = self.healing.as_ref().expect("call_retry without healing");
            let payload = build(h)?;
            match exchange(&mut self.stream, op, &payload) {
                Ok(r) => return Ok(r),
                Err(e) if transport(&e) => {
                    attempt += 1;
                    let policy = &self.healing.as_ref().expect("healing mode").policy;
                    if attempt > policy.attempts {
                        return Err(e);
                    }
                    std::thread::sleep(policy.backoff(attempt));
                    match self.reheal() {
                        Ok(()) => {}
                        // Reconnect itself failed: fall through and burn
                        // another attempt against the dead stream.
                        Err(e2) if transport(&e2) => {}
                        Err(e2) => return Err(e2),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Liveness probe (and, server-side, the idle-TTL heartbeat).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        if self.healing.is_some() {
            self.call_retry(Op::Ping, |_| Ok(b"ping".to_vec()))?;
        } else {
            self.call(Op::Ping, b"ping")?;
        }
        Ok(())
    }

    /// Open a tenant session bound to `(dataset, version)`; pass
    /// [`proto::VERSION_ACTIVE`] to bind whatever version is promoted at
    /// open time.
    pub fn open_session(
        &mut self,
        tenant: &str,
        dataset: &str,
        version: u32,
    ) -> Result<u64, ClientError> {
        self.open_session_versioned(tenant, dataset, version)
            .map(|(id, _)| id)
    }

    /// [`Self::open_session`], also returning the concrete model version
    /// the session was pinned to.
    pub fn open_session_versioned(
        &mut self,
        tenant: &str,
        dataset: &str,
        version: u32,
    ) -> Result<(u64, u32), ClientError> {
        let req = OpenSessionReq {
            tenant: tenant.into(),
            dataset: dataset.into(),
            version,
        };
        if self.healing.is_none() {
            let (_, payload) = self.call(Op::OpenSession, &req.encode()?)?;
            let resp = OpenSessionResp::decode(&payload)?;
            return Ok((resp.session, resp.version));
        }
        let (_, payload) = self.call_retry(Op::OpenSession, |_| Ok(req.encode()?))?;
        let resp = OpenSessionResp::decode(&payload)?;
        let h = self.healing.as_mut().expect("healing mode");
        let logical = h.next_logical;
        h.next_logical += 1;
        h.sessions.insert(
            logical,
            Tracked {
                tenant: tenant.into(),
                dataset: dataset.into(),
                version_spec: version,
                pinned: resp.version,
                server_id: resp.session,
                cloud: None,
            },
        );
        Ok((logical, resp.version))
    }

    /// The concrete model version a healing-mode session is currently
    /// pinned to (`None` for unknown ids or raw mode).
    pub fn pinned_version(&self, session: u64) -> Option<u32> {
        self.healing
            .as_ref()
            .and_then(|h| h.sessions.get(&session))
            .map(|t| t.pinned)
    }

    /// Upload the session's sample cloud.
    pub fn put_cloud(&mut self, session: u64, cloud: &PointCloud) -> Result<(), ClientError> {
        if self.healing.is_none() {
            let req = PutCloudReq {
                session,
                grid: GridWire::from_grid(cloud.grid()),
                indices: cloud.indices().iter().map(|&i| i as u64).collect(),
                values: cloud.values().to_vec(),
            };
            self.call(Op::PutCloud, &req.encode())?;
            return Ok(());
        }
        // Track first: if the exchange dies after the server applied it,
        // the reconnect replay re-uploads the same bytes (idempotent).
        {
            let h = self.healing.as_mut().expect("healing mode");
            let t = h.sessions.get_mut(&session).ok_or_else(|| {
                ClientError::Wire(proto::WireError(format!("unknown logical session {session}")))
            })?;
            t.cloud = Some(cloud.clone());
        }
        let grid = GridWire::from_grid(cloud.grid());
        let indices: Vec<u64> = cloud.indices().iter().map(|&i| i as u64).collect();
        let values = cloud.values().to_vec();
        self.call_retry(Op::PutCloud, move |h| {
            let t = h.sessions.get(&session).ok_or_else(|| {
                ClientError::Wire(proto::WireError(format!("unknown logical session {session}")))
            })?;
            Ok(PutCloudReq {
                session: t.server_id,
                grid,
                indices: indices.clone(),
                values: values.clone(),
            }
            .encode())
        })?;
        Ok(())
    }

    /// Request a reconstruction onto `target`; `deadline_ms = 0` is
    /// unbounded. In healing mode the request carries a nonzero
    /// idempotency id, identical across retries, so a reply lost on the
    /// wire is replayed from the server's cache rather than recomputed.
    pub fn reconstruct(
        &mut self,
        session: u64,
        target: &Grid3,
        deadline_ms: u32,
    ) -> Result<ServedField, ClientError> {
        let (status, payload) = if self.healing.is_none() {
            let req = ReconstructReq {
                session,
                target: GridWire::from_grid(target),
                deadline_ms,
                request_id: 0,
            };
            self.call(Op::Reconstruct, &req.encode())?
        } else {
            let request_id = {
                let h = self.healing.as_mut().expect("healing mode");
                h.seq += 1;
                let rid = h.id_base ^ h.seq;
                if rid == 0 {
                    0x9e37_79b9_7f4a_7c15
                } else {
                    rid
                }
            };
            let target = GridWire::from_grid(target);
            self.call_retry(Op::Reconstruct, move |h| {
                let t = h.sessions.get(&session).ok_or_else(|| {
                    ClientError::Wire(proto::WireError(format!(
                        "unknown logical session {session}"
                    )))
                })?;
                Ok(ReconstructReq {
                    session: t.server_id,
                    target,
                    deadline_ms,
                    request_id,
                }
                .encode())
            })?
        };
        let body = ReconstructResp::decode(&payload)?;
        let field = ScalarField::from_vec(*target, body.values)
            .map_err(|e| ClientError::Wire(proto::WireError(format!("bad field: {e}"))))?;
        Ok(ServedField {
            field,
            degraded: status == Status::Degraded,
            reason: body.reason,
        })
    }

    /// Reconstruct `target` as a stream of bricks, delivering each to
    /// `on_brick` as it arrives — the dense volume is never materialized
    /// client-side, so `target` may exceed the dense-response frame cap.
    ///
    /// Bricks arrive in ascending index order. In healing mode a torn
    /// stream reconnects, re-establishes the session, and **resumes at
    /// the first undelivered brick**: the retry request carries the same
    /// idempotent request id and a `start_brick` equal to the contiguous
    /// prefix already delivered, so the server recomputes nothing the
    /// client already holds and `on_brick` sees every index exactly once.
    /// Brick values are pure functions of `(model, cloud, target,
    /// index)`, so the resumed stream is bitwise-identical to an
    /// uninterrupted one.
    pub fn reconstruct_bricked(
        &mut self,
        session: u64,
        target: &Grid3,
        brick_dims: [u32; 3],
        deadline_ms: u32,
        mut on_brick: impl FnMut(ServedBrick),
    ) -> Result<StreamSummary, ClientError> {
        let wire_target = GridWire::from_grid(target);
        let reconnects_before = self.reconnects();
        let mut next = 0u64;
        if self.healing.is_none() {
            let req = ReconstructBrickedReq {
                session,
                target: wire_target,
                brick_dims,
                deadline_ms,
                request_id: 0,
                start_brick: 0,
            };
            let s = stream_once(&mut self.stream, &req, &mut next, &mut on_brick)?;
            return Ok(StreamSummary {
                total_bricks: s.total_bricks,
                received: next,
                resumed: s.skipped,
                max_halo: s.max_halo,
                reconnects: 0,
            });
        }
        let request_id = {
            let h = self.healing.as_mut().expect("healing mode");
            h.seq += 1;
            let rid = h.id_base ^ h.seq;
            if rid == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                rid
            }
        };
        let mut attempt = 0u32;
        loop {
            let server_id = {
                let h = self.healing.as_ref().expect("healing mode");
                h.sessions
                    .get(&session)
                    .ok_or_else(|| {
                        ClientError::Wire(proto::WireError(format!(
                            "unknown logical session {session}"
                        )))
                    })?
                    .server_id
            };
            let req = ReconstructBrickedReq {
                session: server_id,
                target: wire_target,
                brick_dims,
                deadline_ms,
                request_id,
                start_brick: next,
            };
            match stream_once(&mut self.stream, &req, &mut next, &mut on_brick) {
                Ok(s) => {
                    let h = self.healing.as_ref().expect("healing mode");
                    return Ok(StreamSummary {
                        total_bricks: s.total_bricks,
                        received: next,
                        resumed: s.skipped,
                        max_halo: s.max_halo,
                        reconnects: h.reconnects - reconnects_before,
                    });
                }
                Err(e) if transport(&e) => {
                    attempt += 1;
                    let policy = &self.healing.as_ref().expect("healing mode").policy;
                    if attempt > policy.attempts {
                        return Err(e);
                    }
                    std::thread::sleep(policy.backoff(attempt));
                    match self.reheal() {
                        Ok(()) => {}
                        // Reconnect itself failed: fall through and burn
                        // another attempt against the dead stream.
                        Err(e2) if transport(&e2) => {}
                        Err(e2) => return Err(e2),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// [`Self::reconstruct_bricked`] plus client-side reassembly: stream
    /// every brick and scatter it into one dense [`ScalarField`]. Only
    /// for targets whose dense volume fits client memory — the server
    /// never materializes it either way.
    pub fn reconstruct_bricked_dense(
        &mut self,
        session: u64,
        target: &Grid3,
        brick_dims: [u32; 3],
        deadline_ms: u32,
    ) -> Result<(ScalarField, StreamSummary), ClientError> {
        let dims = target.dims();
        let mut dense = vec![0.0f32; target.num_points()];
        let summary = self.reconstruct_bricked(session, target, brick_dims, deadline_ms, |b| {
            let mut src = 0usize;
            for z in 0..b.dims[2] {
                for y in 0..b.dims[1] {
                    let row = (b.start[2] + z) * dims[1] + (b.start[1] + y);
                    let dst = row * dims[0] + b.start[0];
                    dense[dst..dst + b.dims[0]].copy_from_slice(&b.values[src..src + b.dims[0]]);
                    src += b.dims[0];
                }
            }
        })?;
        if summary.received != summary.total_bricks {
            return Err(ClientError::Wire(proto::WireError(format!(
                "stream delivered {} of {} bricks",
                summary.received, summary.total_bricks
            ))));
        }
        let field = ScalarField::from_vec(*target, dense)
            .map_err(|e| ClientError::Wire(proto::WireError(format!("bad field: {e}"))))?;
        Ok((field, summary))
    }

    /// Scrape the server's JSON stats (telemetry snapshot + per-tenant
    /// counters + swap/drain/retry-cache lifecycle sections).
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let (_, payload) = if self.healing.is_none() {
            self.call(Op::Stats, &[])?
        } else {
            self.call_retry(Op::Stats, |_| Ok(Vec::new()))?
        };
        String::from_utf8(payload)
            .map_err(|_| ClientError::Wire(proto::WireError("non-utf8 stats".into())))
    }

    /// Close a session. In healing mode the session is untracked before
    /// the wire call, and "already gone" outcomes (unknown id after a
    /// reconnect, or a connection drop that closed it server-side) count
    /// as success — close is idempotent.
    pub fn close_session(&mut self, session: u64) -> Result<(), ClientError> {
        if self.healing.is_none() {
            self.call(Op::CloseSession, &proto::encode_session_id(session))?;
            return Ok(());
        }
        let tracked = self
            .healing
            .as_mut()
            .expect("healing mode")
            .sessions
            .remove(&session);
        let Some(t) = tracked else {
            return Ok(()); // double-close: already idempotent-ok
        };
        match self.call(Op::CloseSession, &proto::encode_session_id(t.server_id)) {
            Ok(_) => Ok(()),
            Err(e) if transport(&e) => Ok(()),
            Err(ClientError::Server { code, .. })
                if code == ErrorCode::UnknownSession as u16 =>
            {
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Push `pipeline` as `(dataset, version)` and ask the server to
    /// canary-validate and promote it (requires `FV_SERVE_ALLOW_SWAP=1`
    /// server-side). Never retried, even in healing mode: a swap whose
    /// reply was lost may have been applied, and blind re-submission
    /// would be answered `SwapRejected("not newer")` — the caller should
    /// observe the active version instead.
    pub fn swap_model(
        &mut self,
        dataset: &str,
        version: u32,
        pipeline: &FcnnPipeline,
    ) -> Result<(), ClientError> {
        let mut bytes = Vec::new();
        pipeline.write_to(&mut bytes).map_err(|e| {
            ClientError::Wire(proto::WireError(format!("pipeline serialize: {e}")))
        })?;
        let req = SwapModelReq {
            dataset: dataset.into(),
            version,
            pipeline: bytes,
        };
        self.call(Op::SwapModel, &req.encode()?)?;
        Ok(())
    }

    /// Ask the server to shut down.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call(Op::Shutdown, &[])?;
        Ok(())
    }

    /// Send raw bytes (protocol robustness tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Read one raw frame (protocol robustness tests).
    pub fn read_raw(&mut self) -> Result<proto::Frame, ClientError> {
        Ok(proto::read_frame(&mut self.stream)?)
    }

    /// The underlying stream (for tests that tear connections).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
