//! # fv-serve — reconstruction as a service
//!
//! A multi-tenant TCP server that serves [`fillvoid_core::FcnnPipeline`]
//! reconstructions over a zero-dependency binary protocol (`FVS1`,
//! length-prefixed + CRC-checked frames, same framing family as the FVF2
//! volume and FVPL pipeline formats). Four layers:
//!
//! 1. **Model registry** ([`registry`]) — loads pretrained / fine-tuned
//!    pipelines from FVPL files or [`fillvoid_core::checkpoint::CheckpointStore`]
//!    directories, keyed by `(dataset, model_version)`, LRU-evicted under
//!    a byte budget.
//! 2. **Session manager** ([`session`]) — per-tenant sessions holding the
//!    uploaded sample cloud, per-tenant telemetry counters, and the
//!    in-flight admission cap (RAII slots, panic-safe).
//! 3. **Micro-batcher** ([`batcher`]) — coalesces concurrent requests
//!    for the same model into shared packed forward passes through one
//!    reusable inference workspace, flushing on size or deadline. Row
//!    packing is bitwise-identical to per-request
//!    [`fillvoid_core::FcnnPipeline::reconstruct`] because every query row
//!    is an independent dot product.
//! 4. **Admission + degradation** ([`breaker`], [`server`]) — bounded
//!    queues, per-tenant in-flight caps, per-request deadlines via
//!    [`fv_runtime::ExecCtx`], and a circuit breaker that demotes a
//!    failing model to classical IDW interpolation with a typed
//!    `Degraded` response instead of an outage.
//!
//! On top of those, the **model lifecycle** (DESIGN.md §16): hot-swap
//! promotion with canary validation and session draining
//! ([`ModelRegistry::promote`]), connection watchdogs (idle reaping,
//! per-frame I/O deadlines, write budgets — [`server`]), and a
//! self-healing client ([`Client::connect_healing`]) whose retries ride
//! idempotent request ids answered from a short-lived server-side reply
//! cache ([`session::ReplyCache`]).
//!
//! Protocol spec: DESIGN.md §14. Bench: `exp_serve` (BENCH_serve.json).

pub mod batcher;
pub mod breaker;
pub mod client;
pub mod error;
pub mod proto;
pub mod registry;
pub mod server;
pub mod session;
pub mod stream;

pub use batcher::{AfterFlush, BatchConfig, MicroBatcher};
pub use breaker::{Breaker, BreakerState};
pub use client::{Client, ClientError, RetryPolicy, ServedBrick, ServedField, StreamSummary};
pub use error::ServeError;
pub use proto::{ErrorCode, Op, Status, VERSION_ACTIVE};
pub use registry::{fingerprint_f32, CanarySpec, ModelEntry, ModelRegistry, SwapStats};
pub use server::{ServeConfig, Server};
pub use session::{ReplyCache, SessionManager, TenantStats};
pub use stream::{BrickScheduler, StreamConfig};
