//! The micro-batcher: coalesces concurrent reconstruction requests into
//! shared forward passes.
//!
//! Requests land in a bounded queue (full ⇒ typed `Busy` backpressure at
//! the door, never an unbounded buffer). A dedicated batcher thread
//! collects them and flushes when the pending row count reaches the
//! model's prediction batch, when the flush deadline since the first
//! pending request elapses, or immediately in batch-size-1 mode (the
//! bench's comparison baseline). A flush groups jobs by model entry and
//! runs each group in two phases:
//!
//! 1. **Prepare (parallel over requests)**: per request, build the
//!    k-d tree, copy stored samples, extract the feature matrix for the
//!    query rows. Feature rows are per-query independent, so per-request
//!    extraction is bitwise-identical to the direct path's chunked
//!    extraction.
//! 2. **Infer (shared workspace)**: pack feature rows from *all* requests
//!    in the group into one matrix, chunked at `prediction_batch` rows,
//!    and run them through a single reused [`InferWorkspace`] — the
//!    steady-state forward loop allocates nothing. The matmul kernel
//!    computes each output row as an independent dot product
//!    (`matmul_transpose_b_into`), so an output row's bits do not depend
//!    on which other requests share its pass — served results are
//!    bitwise-identical to per-request `reconstruct` calls, which CI
//!    asserts.
//!
//! Within a group, jobs that share an interned sample cloud (the server
//! deduplicates identical uploads to one `Arc`) *and* a target grid
//! coalesce into a single unit of work: one k-d tree, one feature
//! extraction, one set of forward rows, the answer cloned to every
//! requester. A thundering herd of identical requests — many dashboards
//! watching the same dataset — costs one reconstruction per flush
//! instead of N, which is where the p99 win under concurrency comes from
//! on top of the packed passes.
//!
//! Requests larger than one prediction batch gain nothing from packing
//! and are executed individually via `reconstruct_with_ctx` (still through
//! a reused workspace, still under their own deadline).
//!
//! The model path runs under `catch_unwind`: a panicking model (or one
//! producing non-finite output — including the `serve.infer` chaos
//! corruption site) records a breaker failure and every affected request
//! is demoted to the classical IDW fallback with a typed `Degraded`
//! response instead of an error. An open breaker skips the model path
//! outright.

use crate::proto::ErrorCode;
use crate::registry::ModelEntry;
use crate::session::{InflightGuard, TenantStats};
use fillvoid_core::features::FeatureExtractor;
use fillvoid_core::normalize::CoordFrame;
use fillvoid_core::ReconstructWorkspace;
use fv_field::Grid3;
use fv_interp::{idw::IdwReconstructor, Reconstructor};
use fv_linalg::Matrix;
use fv_nn::InferWorkspace;
use fv_runtime::{chaos, telemetry, ExecCtx};
use fv_sampling::PointCloud;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

static TM_FLUSH: telemetry::Site = telemetry::Site::new("serve.flush", None);
static TM_INFER: telemetry::Site = telemetry::Site::new("serve.infer", Some("serve.flush"));
static TM_BATCH_JOBS: telemetry::Counter = telemetry::Counter::new("serve.batch.jobs");
static TM_BATCH_ROWS: telemetry::Gauge = telemetry::Gauge::new("serve.batch.rows");
static TM_DEGRADED: telemetry::Counter = telemetry::Counter::new("serve.degraded");
static TM_DEADLINE: telemetry::Counter = telemetry::Counter::new("serve.deadline_expired");
static TM_DEDUP: telemetry::Counter = telemetry::Counter::new("serve.batch.dedup");

/// Micro-batcher tuning.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Bounded queue depth; a full queue rejects with `Busy`.
    pub queue_depth: usize,
    /// Flush when pending query rows reach this (0 ⇒ use each model's
    /// prediction batch).
    pub max_rows: usize,
    /// Flush when this much time has passed since the first pending job.
    pub flush_after: Duration,
    /// `false` = batch-size-1 mode: flush after every job (the bench
    /// baseline micro-batching is measured against).
    pub batch: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            queue_depth: 128,
            max_rows: 0,
            flush_after: Duration::from_micros(500),
            batch: true,
        }
    }
}

/// One queued reconstruction request.
#[derive(Debug)]
pub struct ReconJob {
    /// Model to run.
    pub entry: Arc<ModelEntry>,
    /// Sample cloud to reconstruct from.
    pub cloud: Arc<PointCloud>,
    /// Grid to densify onto.
    pub target: Grid3,
    /// Cancellation/deadline context (polled at admission, batch start
    /// and per inference chunk for oversized jobs).
    pub ctx: ExecCtx,
    /// Owning tenant (for counters).
    pub tenant: Arc<TenantStats>,
    /// The tenant's in-flight slot; the batcher releases it *before* the
    /// outcome is sent (or on drop, if the job never gets an answer).
    pub guard: InflightGuard,
    /// Estimated query rows (for flush-on-size).
    pub rows: usize,
    /// Where the outcome goes (a rendezvous the connection thread waits
    /// on).
    pub resp: SyncSender<ReconOutcome>,
}

/// How a queued request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum ReconOutcome {
    /// Full-fidelity model output.
    Ok(Vec<f32>),
    /// Classical-fallback output with the demotion reason.
    Degraded(Vec<f32>, String),
    /// Typed rejection (deadline, internal failure).
    Rejected(ErrorCode, String),
    /// The server shut down before the request ran.
    Shutdown,
}

impl ReconJob {
    /// Answer the request, releasing the tenant's in-flight slot *before*
    /// the outcome is sent. The send synchronizes with the connection
    /// thread's recv, so by the time a client has read its response — and
    /// can issue its next request or a `Stats` scrape — the slot is
    /// already free; an already-answered request can never be observed
    /// still holding one.
    fn respond(self, outcome: ReconOutcome) {
        let ReconJob { guard, resp, .. } = self;
        drop(guard);
        let _ = resp.send(outcome);
    }
}

enum Msg {
    Job(Box<ReconJob>),
    Shutdown,
}

/// Reused buffers for the shared inference phase.
struct BatchWorkspace {
    packed: Matrix<f32>,
    infer: InferWorkspace,
    recon: ReconstructWorkspace,
}

impl Default for BatchWorkspace {
    fn default() -> Self {
        Self {
            packed: Matrix::zeros(0, 0),
            infer: InferWorkspace::default(),
            recon: ReconstructWorkspace::default(),
        }
    }
}

/// Callback run by the batcher thread after every flush, once the
/// batch's jobs have been answered and their model `Arc`s dropped. The
/// server hooks the registry's drain poll here so a retiring model
/// version whose last pin was an in-flight batch is retired promptly,
/// not only at the next session close.
pub type AfterFlush = Arc<dyn Fn() + Send + Sync>;

/// Handle to the batcher thread.
pub struct MicroBatcher {
    tx: SyncSender<Msg>,
    // Mutex<Option<..>> so shutdown works through a shared reference (the
    // server holds the batcher inside an Arc'd shared state).
    handle: std::sync::Mutex<Option<std::thread::JoinHandle<()>>>,
    flushes: Arc<AtomicU64>,
}

impl std::fmt::Debug for MicroBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroBatcher")
            .field("flushes", &self.flushes.load(Ordering::Relaxed))
            .finish()
    }
}

impl MicroBatcher {
    /// Spawn the batcher thread.
    pub fn start(cfg: BatchConfig) -> Self {
        Self::start_with(cfg, None)
    }

    /// Spawn the batcher thread with an [`AfterFlush`] hook.
    pub fn start_with(cfg: BatchConfig, after_flush: Option<AfterFlush>) -> Self {
        let (tx, rx) = sync_channel(cfg.queue_depth.max(1));
        let flushes = Arc::new(AtomicU64::new(0));
        let counter = flushes.clone();
        let handle = std::thread::Builder::new()
            .name("fv-serve-batcher".into())
            .spawn(move || worker(rx, cfg, counter, after_flush))
            .expect("spawn batcher");
        Self {
            tx,
            handle: std::sync::Mutex::new(Some(handle)),
            flushes,
        }
    }

    /// Non-blocking submit. On rejection the job comes back so the caller
    /// can answer with backpressure: `Err((job, false))` = queue full,
    /// `Err((job, true))` = batcher already shut down.
    pub fn try_submit(&self, job: Box<ReconJob>) -> Result<(), (Box<ReconJob>, bool)> {
        match self.tx.try_send(Msg::Job(job)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(Msg::Job(j))) => Err((j, false)),
            Err(TrySendError::Disconnected(Msg::Job(j))) => Err((j, true)),
            Err(_) => unreachable!("only jobs are submitted"),
        }
    }

    /// Flushes performed so far (observability for tests/bench).
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Graceful stop: the current pending batch is flushed (executed),
    /// anything still queued behind the shutdown marker is answered with
    /// [`ReconOutcome::Shutdown`], and the thread is joined. Idempotent
    /// and callable through a shared reference.
    pub fn shutdown(&self) {
        let handle = self.handle.lock().expect("batcher handle").take();
        if let Some(handle) = handle {
            // A full queue is fine: the worker is draining it. An error
            // means the worker is already gone — nothing left to flush.
            let _ = self.tx.send(Msg::Shutdown);
            let _ = handle.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker(
    rx: Receiver<Msg>,
    cfg: BatchConfig,
    flushes: Arc<AtomicU64>,
    after_flush: Option<AfterFlush>,
) {
    let mut ws = BatchWorkspace::default();
    let mut pending: Vec<ReconJob> = Vec::new();
    let mut pending_rows = 0usize;
    let mut first_at = Instant::now();
    // The hook must never kill the worker: it runs third-party-ish code
    // (the server's drain poll) on the batcher thread.
    let ran_flush = |hook: &Option<AfterFlush>| {
        if let Some(h) = hook {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h()));
        }
    };
    loop {
        let msg = if pending.is_empty() {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => break, // all senders gone; nothing pending
            }
        } else {
            let remaining = cfg.flush_after.saturating_sub(first_at.elapsed());
            match rx.recv_timeout(remaining) {
                Ok(m) => m,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    flush(&mut pending, &mut ws, &flushes);
                    ran_flush(&after_flush);
                    pending_rows = 0;
                    continue;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    flush(&mut pending, &mut ws, &flushes);
                    ran_flush(&after_flush);
                    break;
                }
            }
        };
        match msg {
            Msg::Job(job) => {
                if pending.is_empty() {
                    first_at = Instant::now();
                }
                let cap = if cfg.max_rows > 0 {
                    cfg.max_rows
                } else {
                    job.entry.pipeline.prediction_batch()
                };
                pending_rows += job.rows;
                pending.push(*job);
                if !cfg.batch || pending_rows >= cap || pending.len() >= cfg.queue_depth {
                    flush(&mut pending, &mut ws, &flushes);
                    ran_flush(&after_flush);
                    pending_rows = 0;
                }
            }
            Msg::Shutdown => {
                // In-flight batch executes; everything behind the marker
                // is answered with a typed Shutdown.
                flush(&mut pending, &mut ws, &flushes);
                while let Ok(Msg::Job(job)) = rx.try_recv() {
                    job.respond(ReconOutcome::Shutdown);
                }
                ran_flush(&after_flush);
                break;
            }
        }
    }
}

/// Execute and answer every pending job, grouped by model entry (same
/// model ⇒ same forward passes), preserving arrival order within groups.
///
/// The batcher thread must outlive any single batch: a panic that escapes
/// the per-group guard (e.g. the `serve.batch` chaos site, which fires
/// before jobs are even grouped) answers whatever is still pending with a
/// typed error and leaves the worker loop running.
fn flush(pending: &mut Vec<ReconJob>, ws: &mut BatchWorkspace, flushes: &Arc<AtomicU64>) {
    if pending.is_empty() {
        return;
    }
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        flush_inner(pending, ws, flushes)
    }));
    if attempt.is_err() {
        // Jobs already drained into the panicking scope were dropped with
        // their response channels (the handler answers "batcher gone");
        // anything still pending gets an explicit typed rejection. Either
        // way every in-flight slot guard is released here.
        for job in pending.drain(..) {
            job.respond(ReconOutcome::Rejected(
                ErrorCode::Internal,
                "batch worker panicked".into(),
            ));
        }
    }
}

fn flush_inner(pending: &mut Vec<ReconJob>, ws: &mut BatchWorkspace, flushes: &Arc<AtomicU64>) {
    let _span = TM_FLUSH.span();
    chaos::point("serve.batch");
    TM_BATCH_JOBS.add(pending.len() as u64);
    TM_BATCH_ROWS.set(pending.iter().map(|j| j.rows as u64).sum());
    flushes.fetch_add(1, Ordering::Relaxed);

    let mut groups: Vec<(*const ModelEntry, Vec<ReconJob>)> = Vec::new();
    for job in pending.drain(..) {
        let key = Arc::as_ptr(&job.entry);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, g)) => g.push(job),
            None => groups.push((key, vec![job])),
        }
    }
    for (_, group) in groups {
        run_group(group, ws);
    }
}

/// Per-job result of the model path.
enum ModelResult {
    Done(Vec<f32>),
    Expired,
    NonFinite,
}

fn run_group(jobs: Vec<ReconJob>, ws: &mut BatchWorkspace) {
    let entry = jobs[0].entry.clone();

    if !entry.breaker_allow() {
        let reason = format!(
            "circuit breaker open for ({}, v{})",
            entry.key.0, entry.key.1
        );
        for job in jobs {
            respond_fallback(job, &reason);
        }
        return;
    }

    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_group_model(&entry, &jobs, ws)
    }));
    match attempt {
        Ok(Ok(results)) => {
            let ran_any = results.iter().any(|r| !matches!(r, ModelResult::Expired));
            let any_bad = results.iter().any(|r| matches!(r, ModelResult::NonFinite));
            if ran_any {
                entry.breaker_record(!any_bad);
            }
            for (job, result) in jobs.into_iter().zip(results) {
                match result {
                    ModelResult::Done(values) => {
                        job.respond(ReconOutcome::Ok(values));
                    }
                    ModelResult::Expired => {
                        TM_DEADLINE.incr();
                        job.respond(ReconOutcome::Rejected(
                            ErrorCode::DeadlineExceeded,
                            "deadline expired before the batch ran".into(),
                        ));
                    }
                    ModelResult::NonFinite => {
                        respond_fallback(job, "model produced non-finite output");
                    }
                }
            }
        }
        Ok(Err(e)) => {
            entry.breaker_record(false);
            let reason = format!("model path failed: {e}");
            for job in jobs {
                respond_fallback(job, &reason);
            }
        }
        Err(panic) => {
            entry.breaker_record(false);
            let reason = format!("model path panicked: {}", panic_message(&panic));
            for job in jobs {
                respond_fallback(job, &reason);
            }
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else if p.downcast_ref::<chaos::ChaosPanic>().is_some() {
        "injected chaos panic".into()
    } else {
        "opaque panic payload".into()
    }
}

/// Classical IDW fallback with a `Degraded` response; stored samples are
/// restored exactly like the model path does on a same-grid request.
fn respond_fallback(job: ReconJob, reason: &str) {
    TM_DEGRADED.incr();
    let outcome = match IdwReconstructor::default().reconstruct(&job.cloud, &job.target) {
        Ok(mut field) => {
            if job.cloud.grid() == &job.target {
                for (pos, &idx) in job.cloud.indices().iter().enumerate() {
                    field.values_mut()[idx] = job.cloud.values()[pos];
                }
            }
            ReconOutcome::Degraded(field.into_values(), reason.to_string())
        }
        Err(e) => ReconOutcome::Rejected(
            ErrorCode::Internal,
            format!("fallback failed after: {reason}: {e}"),
        ),
    };
    job.respond(outcome);
}

/// Per-unique-request preparation (phase 1) output for packable jobs.
/// Jobs that share a sample cloud (the server interns identical uploads,
/// so equality is pointer equality) and a target grid coalesce into one
/// prep: one feature extraction, one set of forward rows, the answer
/// fanned out to every requester.
struct Prep {
    job_idxs: Vec<usize>,
    out: Vec<f32>,
    queries: Vec<usize>,
    features: Matrix<f32>,
}

/// One slice of a packed forward chunk: (prep index, row start within
/// that prep's feature matrix, row count).
type Segment = (usize, usize, usize);

/// The model path for one group. Returns one result per job, in order.
fn run_group_model(
    entry: &Arc<ModelEntry>,
    jobs: &[ReconJob],
    ws: &mut BatchWorkspace,
) -> Result<Vec<ModelResult>, fillvoid_core::CoreError> {
    let pipeline = &entry.pipeline;
    let batch_rows = pipeline.prediction_batch();
    let width = pipeline.feature_config().input_width();

    let mut results: Vec<ModelResult> = Vec::with_capacity(jobs.len());
    for _ in jobs {
        results.push(ModelResult::Expired); // placeholder, overwritten below
    }

    // Split: small jobs pack into shared passes; oversized ones run
    // individually (they already fill whole prediction batches alone).
    // Small jobs with the same interned cloud and target grid coalesce
    // into one unit of work — under a thundering herd of identical
    // requests (many dashboards watching one dataset) a flush costs one
    // reconstruction, not N.
    let mut small: Vec<(usize, Grid3, Vec<usize>)> = Vec::new();
    let mut large: Vec<(usize, &ReconJob)> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        if job.ctx.stop_reason().is_some() {
            continue; // stays Expired
        }
        if job.rows > batch_rows {
            large.push((i, job));
        } else {
            let key = Arc::as_ptr(&job.cloud) as usize;
            match small
                .iter_mut()
                .find(|(k, t, _)| *k == key && *t == job.target)
            {
                Some((_, _, idxs)) => {
                    TM_DEDUP.incr();
                    idxs.push(i);
                }
                None => small.push((key, job.target, vec![i])),
            }
        }
    }

    // Phase 1 — parallel per-unique-request prep. Feature rows are
    // per-query independent, so extracting a request's rows in one call
    // is bitwise-identical to the direct path's prediction_batch-sized
    // chunks.
    let mut preps: Vec<Prep> = small
        .par_iter()
        .map(|(_, target, job_idxs)| {
            let job = &jobs[job_idxs[0]];
            let frame = CoordFrame::of_grid(target);
            let extractor = FeatureExtractor::new(&job.cloud, *pipeline.feature_config());
            let mut out = vec![0f32; target.num_points()];
            let queries: Vec<usize> = if job.cloud.grid() == target {
                for (pos, &idx) in job.cloud.indices().iter().enumerate() {
                    out[idx] = job.cloud.values()[pos];
                }
                job.cloud.void_indices()
            } else {
                (0..target.num_points()).collect()
            };
            let features =
                extractor.features_for(target, &frame, pipeline.value_norm(), &queries);
            Prep {
                job_idxs: job_idxs.clone(),
                out,
                queries,
                features,
            }
        })
        .collect();

    // Phase 2 — pack rows across requests into shared forward passes
    // through the one reused InferWorkspace. Chunks never exceed the
    // model's prediction batch.
    let mut chunk: Vec<Segment> = Vec::new();
    let mut chunk_rows = 0usize;
    let mut plan: Vec<(Vec<Segment>, usize)> = Vec::new();
    for (pi, prep) in preps.iter().enumerate() {
        let mut row = 0;
        while row < prep.queries.len() {
            let take = (batch_rows - chunk_rows).min(prep.queries.len() - row);
            chunk.push((pi, row, take));
            chunk_rows += take;
            row += take;
            if chunk_rows == batch_rows {
                plan.push((std::mem::take(&mut chunk), chunk_rows));
                chunk_rows = 0;
            }
        }
    }
    if chunk_rows > 0 {
        plan.push((chunk, chunk_rows));
    }

    for (segments, rows) in plan {
        ws.packed.resize(rows, width);
        let mut cursor = 0;
        for &(pi, start, n) in &segments {
            for r in 0..n {
                ws.packed
                    .row_mut(cursor + r)
                    .copy_from_slice(preps[pi].features.row(start + r));
            }
            cursor += n;
        }
        chaos::point("serve.infer");
        let _span = TM_INFER.span();
        let pred = pipeline.mlp().forward_with(&ws.packed, &mut ws.infer)?;
        let mut cursor = 0;
        for &(pi, start, n) in &segments {
            for r in 0..n {
                let q = preps[pi].queries[start + r];
                preps[pi].out[q] = pipeline.value_norm().denormalize(pred[(cursor + r, 0)]);
            }
            cursor += n;
        }
    }

    for prep in &mut preps {
        // Post-inference corruption site: models silent corruption of the
        // response buffer; injected NaNs are caught by the finite scan
        // below and demote the request instead of shipping garbage.
        chaos::corrupt_f32("serve.infer", &mut prep.out);
        let finite = prep.out.iter().all(|v| v.is_finite());
        let out = std::mem::take(&mut prep.out);
        let (last, rest) = prep.job_idxs.split_last().expect("non-empty dedup group");
        for &job_idx in rest {
            results[job_idx] = if finite {
                ModelResult::Done(out.clone())
            } else {
                ModelResult::NonFinite
            };
        }
        results[*last] = if finite {
            ModelResult::Done(out)
        } else {
            ModelResult::NonFinite
        };
    }

    // Oversized jobs: individual passes through the same reused recon
    // workspace, under each job's own ExecCtx deadline.
    for (job_idx, job) in large {
        chaos::point("serve.infer");
        let _span = TM_INFER.span();
        let (field, status) =
            pipeline.reconstruct_with_ctx(&job.cloud, &job.target, &mut ws.recon, &job.ctx)?;
        results[job_idx] = if status.interrupted.is_some() {
            ModelResult::Expired
        } else {
            let mut out = field.into_values();
            chaos::corrupt_f32("serve.infer", &mut out);
            if out.iter().all(|v| v.is_finite()) {
                ModelResult::Done(out)
            } else {
                ModelResult::NonFinite
            }
        };
    }

    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use crate::session::SessionManager;
    use fillvoid_core::{FcnnPipeline, PipelineConfig};
    use fv_field::{Grid3, ScalarField};
    use fv_sampling::{FieldSampler, RandomSampler};

    fn fixture() -> (Arc<ModelEntry>, Arc<PointCloud>, ScalarField) {
        let g = Grid3::new([10, 10, 6]).unwrap();
        let f = ScalarField::from_world_fn(g, |p| {
            ((p[0] * 0.4).sin() + 0.3 * p[1] + (p[2] * 0.6).cos()) as f32
        });
        let mut cfg = PipelineConfig::small_for_tests();
        cfg.trainer.epochs = 4;
        let pipeline = FcnnPipeline::train(&f, &cfg, 7).unwrap();
        let entry = ModelRegistry::new(64 << 20)
            .insert("hurricane", 0, pipeline)
            .unwrap();
        let cloud = Arc::new(RandomSampler.sample(&f, 0.05, 11));
        (entry, cloud, f)
    }

    fn submit(
        batcher: &MicroBatcher,
        sessions: &SessionManager,
        entry: &Arc<ModelEntry>,
        cloud: &Arc<PointCloud>,
        target: Grid3,
        ctx: ExecCtx,
    ) -> std::sync::mpsc::Receiver<ReconOutcome> {
        let tenant = sessions.tenant("t");
        let guard = sessions.try_admit(&tenant).expect("slot");
        let (tx, rx) = sync_channel(1);
        let rows = if cloud.grid() == &target {
            target.num_points() - cloud.len()
        } else {
            target.num_points()
        };
        batcher
            .try_submit(Box::new(ReconJob {
                entry: entry.clone(),
                cloud: cloud.clone(),
                target,
                ctx,
                tenant,
                guard,
                rows,
                resp: tx,
            }))
            .expect("queue has room");
        rx
    }

    #[test]
    fn batched_results_match_direct_reconstruct_bitwise() {
        let (entry, cloud, f) = fixture();
        let direct = entry.pipeline.reconstruct(&cloud, f.grid()).unwrap();
        let sessions = SessionManager::new(64);
        // Long flush window + large row cap: all 8 requests coalesce into
        // one flush.
        let batcher = MicroBatcher::start(BatchConfig {
            flush_after: Duration::from_millis(50),
            ..BatchConfig::default()
        });
        let rxs: Vec<_> = (0..8)
            .map(|_| {
                submit(
                    &batcher,
                    &sessions,
                    &entry,
                    &cloud,
                    *f.grid(),
                    ExecCtx::unbounded(),
                )
            })
            .collect();
        for rx in rxs {
            match rx.recv().unwrap() {
                ReconOutcome::Ok(values) => {
                    assert_eq!(values.len(), direct.values().len());
                    assert!(
                        values
                            .iter()
                            .zip(direct.values())
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "batched result diverged from direct reconstruct"
                    );
                }
                other => panic!("expected Ok, got {other:?}"),
            }
        }
        assert!(
            batcher.flushes() < 8,
            "8 concurrent requests must coalesce, got {} flushes",
            batcher.flushes()
        );
    }

    #[test]
    fn batch_size_one_mode_still_bitwise_identical() {
        let (entry, cloud, f) = fixture();
        let direct = entry.pipeline.reconstruct(&cloud, f.grid()).unwrap();
        let sessions = SessionManager::new(64);
        let batcher = MicroBatcher::start(BatchConfig {
            batch: false,
            ..BatchConfig::default()
        });
        let rx = submit(
            &batcher,
            &sessions,
            &entry,
            &cloud,
            *f.grid(),
            ExecCtx::unbounded(),
        );
        match rx.recv().unwrap() {
            ReconOutcome::Ok(values) => assert!(values
                .iter()
                .zip(direct.values())
                .all(|(a, b)| a.to_bits() == b.to_bits())),
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn tiny_prediction_batch_packs_across_requests_bitwise() {
        // Force many shared chunks: prediction_batch smaller than one
        // request's rows exercises the cross-request packing seams. The
        // clouds are DISTINCT Arcs with distinct samples, so request
        // coalescing cannot collapse them — every request really packs
        // its own rows into the shared passes.
        let g = Grid3::new([8, 8, 4]).unwrap();
        let f = ScalarField::from_world_fn(g, |p| (p[0] * 0.5).sin() as f32 + p[1] as f32 * 0.2);
        let mut cfg = PipelineConfig::small_for_tests();
        cfg.trainer.epochs = 3;
        cfg.prediction_batch = 37; // deliberately odd
        let pipeline = FcnnPipeline::train(&f, &cfg, 5).unwrap();
        let clouds: Vec<Arc<PointCloud>> = (0..5)
            .map(|s| Arc::new(RandomSampler.sample(&f, 0.10, 3 + s)))
            .collect();
        let directs: Vec<_> = clouds
            .iter()
            .map(|c| pipeline.reconstruct(c, f.grid()).unwrap())
            .collect();
        let entry = ModelRegistry::new(64 << 20).insert("d", 0, pipeline).unwrap();

        let sessions = SessionManager::new(64);
        let batcher = MicroBatcher::start(BatchConfig {
            flush_after: Duration::from_millis(50),
            max_rows: 10_000,
            ..BatchConfig::default()
        });
        let rxs: Vec<_> = clouds
            .iter()
            .map(|c| submit(&batcher, &sessions, &entry, c, g, ExecCtx::unbounded()))
            .collect();
        for (rx, direct) in rxs.into_iter().zip(&directs) {
            match rx.recv().unwrap() {
                ReconOutcome::Ok(values) => assert!(values
                    .iter()
                    .zip(direct.values())
                    .all(|(a, b)| a.to_bits() == b.to_bits())),
                other => panic!("expected Ok, got {other:?}"),
            }
        }
    }

    #[test]
    fn identical_requests_coalesce_to_one_unit_of_work() {
        // Same cloud Arc + same target ⇒ one prep, one set of forward
        // rows, every requester answered with identical bits.
        let (entry, cloud, f) = fixture();
        let direct = entry.pipeline.reconstruct(&cloud, f.grid()).unwrap();
        let sessions = SessionManager::new(64);
        let batcher = MicroBatcher::start(BatchConfig {
            flush_after: Duration::from_millis(50),
            ..BatchConfig::default()
        });
        let rxs: Vec<_> = (0..6)
            .map(|_| submit(&batcher, &sessions, &entry, &cloud, *f.grid(), ExecCtx::unbounded()))
            .collect();
        for rx in rxs {
            match rx.recv().unwrap() {
                ReconOutcome::Ok(values) => assert!(values
                    .iter()
                    .zip(direct.values())
                    .all(|(a, b)| a.to_bits() == b.to_bits())),
                other => panic!("expected Ok, got {other:?}"),
            }
        }
        // All six landed in at most two flushes (timing-dependent), far
        // fewer than one per request.
        assert!(batcher.flushes() <= 2, "flushes = {}", batcher.flushes());
    }

    #[test]
    fn expired_deadline_yields_typed_rejection() {
        let (entry, cloud, f) = fixture();
        let sessions = SessionManager::new(64);
        let batcher = MicroBatcher::start(BatchConfig::default());
        let ctx = ExecCtx::unbounded()
            .with_deadline(fv_runtime::Deadline::after(Duration::ZERO));
        let rx = submit(&batcher, &sessions, &entry, &cloud, *f.grid(), ctx);
        match rx.recv().unwrap() {
            ReconOutcome::Rejected(code, _) => assert_eq!(code, ErrorCode::DeadlineExceeded),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_answers_queued_jobs_and_releases_slots() {
        let (entry, cloud, f) = fixture();
        let sessions = SessionManager::new(64);
        let batcher = MicroBatcher::start(BatchConfig {
            // Batch-everything window long enough that jobs are still
            // pending when shutdown lands behind them.
            flush_after: Duration::from_secs(5),
            ..BatchConfig::default()
        });
        let rxs: Vec<_> = (0..4)
            .map(|_| {
                submit(
                    &batcher,
                    &sessions,
                    &entry,
                    &cloud,
                    *f.grid(),
                    ExecCtx::unbounded(),
                )
            })
            .collect();
        batcher.shutdown();
        let mut executed = 0;
        let mut shut = 0;
        for rx in rxs {
            match rx.recv().unwrap() {
                ReconOutcome::Ok(_) | ReconOutcome::Degraded(..) => executed += 1,
                ReconOutcome::Shutdown => shut += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(executed + shut, 4, "every job must be answered");
        let tenant = sessions.tenant("t");
        assert_eq!(
            tenant.inflight.load(Ordering::Relaxed),
            0,
            "all slots released after shutdown"
        );
    }

    #[test]
    fn breaker_demotes_to_degraded_and_recovers() {
        let (entry, cloud, f) = fixture();
        let sessions = SessionManager::new(64);
        let batcher = MicroBatcher::start(BatchConfig {
            batch: false,
            ..BatchConfig::default()
        });
        // Trip the breaker directly (the chaos-injected path is covered by
        // the serialized tests/chaos.rs sweeps; installing a process-global
        // chaos plan here would leak panics into sibling unit tests).
        for _ in 0..3 {
            entry.breaker_record(false);
        }
        assert!(entry.breaker_opens() >= 1, "breaker should have tripped");
        let rx = submit(
            &batcher,
            &sessions,
            &entry,
            &cloud,
            *f.grid(),
            ExecCtx::unbounded(),
        );
        match rx.recv().unwrap() {
            ReconOutcome::Degraded(values, reason) => {
                assert_eq!(values.len(), f.len());
                assert!(values.iter().all(|v| v.is_finite()));
                assert!(reason.contains("breaker"), "reason: {reason}");
            }
            other => panic!("expected Degraded while open, got {other:?}"),
        }
        // Clean probes eventually close the breaker and full fidelity
        // returns.
        let direct = entry.pipeline.reconstruct(&cloud, f.grid()).unwrap();
        let mut recovered = false;
        for _ in 0..20 {
            let rx = submit(
                &batcher,
                &sessions,
                &entry,
                &cloud,
                *f.grid(),
                ExecCtx::unbounded(),
            );
            if let ReconOutcome::Ok(values) = rx.recv().unwrap() {
                assert!(values
                    .iter()
                    .zip(direct.values())
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
                recovered = true;
                break;
            }
        }
        assert!(recovered, "breaker must close after clean probes");
    }
}
