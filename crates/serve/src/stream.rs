//! Streaming brick reconstruction: the scheduler behind the
//! `ReconstructBricked` op.
//!
//! ## Why a separate lane
//!
//! The micro-batcher answers a request with *one* dense frame, which caps
//! a response at [`crate::proto::MAX_GRID_POINTS`]. Volumes past that cap
//! stream instead: the server computes the target brick by brick (through
//! [`fillvoid_core::BrickStreamer`], the same kernel path as the
//! checkpointed in-process runner, so payloads are bitwise-identical) and
//! ships each brick as its own CRC'd frame, never materializing the dense
//! volume server-side.
//!
//! ## Fairness
//!
//! One worker thread drains all tenants' streams **round-robin, one brick
//! per turn**: a tenant streaming a giant volume yields to every other
//! tenant's stream after each brick, so no stream monopolizes the compute
//! pool for longer than one brick. Per tenant, at most
//! `FV_SERVE_BRICK_QUEUE` streams may be queued (`Busy` past that), and
//! each stream's un-acked bytes are capped by
//! `FV_SERVE_BRICK_INFLIGHT_MB`: a client that stops reading blocks only
//! its own stream's compute, never the worker.
//!
//! ## Resume
//!
//! Brick order is deterministic (ascending layout index), so a torn
//! stream resumes idempotently: the client re-sends the same
//! `request_id` with `start_brick` set to its contiguous delivered
//! prefix, and the server computes *only* the bricks at and above it —
//! nothing below is recomputed and nothing is served from a cache, so a
//! resume can never disagree with the original stream.
//!
//! The server side of a tear is the `client_gone` flag: the connection
//! thread sets it on *every* exit from the streaming handler. The worker
//! checks it before the back-pressure gate, because a dead client's
//! undrained bricks hold the in-flight window at its budget forever — a
//! disconnect observed only at `try_send` would never be observed at
//! all for a budget-blocked stream, which would then requeue as a
//! permanent zombie (queue slot, in-flight guard, and model pin leaked).
//!
//! Chaos sites: `serve.brick.submit` (admission), `serve.brick.compute`
//! (per-brick compute; panics fail only their own stream, corruption is
//! caught by the non-finite scan), `serve.brick.write` (response path, in
//! `server.rs`).

use crate::proto::{ErrorCode, Status};
use crate::registry::ModelEntry;
use crate::session::{InflightGuard, TenantStats};
use fillvoid_core::{BrickReconConfig, BrickStreamer};
use fv_field::Grid3;
use fv_runtime::{chaos, telemetry, ExecCtx};
use fv_sampling::PointCloud;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

static TM_STREAMS: telemetry::Counter = telemetry::Counter::new("serve.stream.started");
static TM_BRICKS: telemetry::Counter = telemetry::Counter::new("serve.stream.bricks");
static TM_DONE: telemetry::Counter = telemetry::Counter::new("serve.stream.completed");
static TM_FAIL: telemetry::Counter = telemetry::Counter::new("serve.stream.failed");
static TM_BUSY: telemetry::Counter = telemetry::Counter::new("serve.stream.reject.busy");

/// Scheduler tuning (all `FV_SERVE_BRICK_*` knobs).
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Queued + running streams allowed per tenant before `Busy`.
    pub queue_per_tenant: usize,
    /// Computed-but-unacknowledged bytes allowed per stream before its
    /// compute pauses (the back-pressure window).
    pub inflight_budget: usize,
    /// Initial ghost-gather halo, in cloud-grid cells (doubles on kNN
    /// certificate misses; never changes the result).
    pub halo: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            queue_per_tenant: 2,
            inflight_budget: 8 << 20,
            halo: 2,
        }
    }
}

/// What the scheduler sends the connection thread.
#[derive(Debug)]
pub enum StreamMsg {
    /// One reconstructed brick (x-fastest local order).
    Brick {
        /// Brick index in layout order.
        index: u64,
        /// Inclusive lower corner in target-grid ijk.
        start: [u64; 3],
        /// Brick extent (clipped at the grid boundary).
        dims: [u64; 3],
        /// Dense payload.
        values: Vec<f32>,
    },
    /// Stream finished; terminal.
    Done {
        /// Bricks in the full decomposition.
        total: u64,
        /// Bricks computed and sent this pass.
        sent: u64,
        /// Bricks below `start_brick`, skipped on resume.
        skipped: u64,
        /// Largest halo any brick needed.
        max_halo: u64,
    },
    /// Stream failed; terminal.
    Fail {
        /// Response status (`Error` or `ShuttingDown`).
        status: Status,
        /// Typed error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// One admitted streaming request.
pub struct StreamJob {
    /// Model the session is pinned to.
    pub entry: Arc<ModelEntry>,
    /// The session's uploaded sample cloud.
    pub cloud: Arc<PointCloud>,
    /// Target grid (may exceed the dense frame cap).
    pub target: Grid3,
    /// Voxels per brick along each axis (validated by the handler).
    pub brick_dims: [usize; 3],
    /// First brick to compute (resume watermark; 0 = full stream).
    pub start_brick: u64,
    /// Deadline context; an expired deadline fails the stream mid-flight.
    pub ctx: ExecCtx,
    /// Owning tenant (fairness key and counters).
    pub tenant: Arc<TenantStats>,
    /// In-flight admission slot. Released (taken and dropped) just
    /// *before* the terminal message is queued, so a client that reads
    /// its summary and immediately asks for `Stats` can never observe
    /// its own completed stream still counted in flight.
    pub guard: Option<InflightGuard>,
    /// Channel to the connection thread.
    pub resp: SyncSender<StreamMsg>,
    /// Un-acked payload bytes: incremented here per computed brick,
    /// decremented by the connection thread after each write (who then
    /// calls [`BrickScheduler::notify`]).
    pub inflight_bytes: Arc<AtomicUsize>,
    /// Set by the connection thread when it abandons the stream (any
    /// handler exit: summary written, typed failure, torn socket). The
    /// worker drops the stream at its next turn — bytes stranded in the
    /// response channel can never be drained once the receiver is gone,
    /// so the back-pressure gate alone would block such a stream forever.
    pub client_gone: Arc<AtomicBool>,
}

struct ActiveStream {
    job: StreamJob,
    streamer: Option<BrickStreamer>,
    next: u64,
    total: u64,
    sent: u64,
    pending: Option<StreamMsg>,
    finished: bool,
}

enum Step {
    /// Computed a brick or queued a message — worth picking again soon.
    Progress,
    /// Budget- or channel-blocked: requeue, but don't spin on it.
    Blocked,
    /// Terminal message delivered (or client gone): drop the stream.
    Finished,
}

struct SchedState {
    queues: HashMap<String, VecDeque<ActiveStream>>,
    /// Streams admitted and not yet finished, per tenant. This — not the
    /// queue length — is what admission caps against: a stream the
    /// worker has popped for a step is absent from its queue, and
    /// judging capacity by `queues` alone would let a racing submit
    /// admit one stream over the cap during that window.
    live: HashMap<String, usize>,
    /// Round-robin cursor over tenant names (sorted per pick so the
    /// rotation is deterministic regardless of hash order).
    cursor: usize,
}

impl SchedState {
    fn new() -> Self {
        Self {
            queues: HashMap::new(),
            live: HashMap::new(),
            cursor: 0,
        }
    }
}

struct Inner {
    cfg: StreamConfig,
    state: Mutex<SchedState>,
    cv: Condvar,
    shutdown: AtomicBool,
    started: AtomicU64,
    bricks: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    resumed_bricks: AtomicU64,
}

/// The streaming-lane scheduler: one worker thread, per-tenant bounded
/// queues, brick-granular round-robin.
pub struct BrickScheduler {
    inner: Arc<Inner>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for BrickScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrickScheduler")
            .field("queued", &self.queued())
            .finish()
    }
}

impl BrickScheduler {
    /// Start the worker thread.
    pub fn start(cfg: StreamConfig) -> Self {
        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(SchedState::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            started: AtomicU64::new(0),
            bricks: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            resumed_bricks: AtomicU64::new(0),
        });
        let worker = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("fv-serve-bricks".into())
                .spawn(move || worker_loop(&inner))
                .expect("spawn brick scheduler")
        };
        Self {
            inner,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Admit a stream. `Err(true)` means shutting down, `Err(false)`
    /// means the tenant's stream queue is full (`Busy`). The job rides
    /// back boxed so the rejected path stays cheap to return.
    pub fn submit(&self, job: StreamJob) -> Result<(), (Box<StreamJob>, bool)> {
        let r = admit(&self.inner, job);
        if r.is_ok() {
            self.inner.cv.notify_all();
        }
        r
    }

    /// Wake the worker (connection threads call this after draining
    /// bytes from a stream's in-flight window).
    pub fn notify(&self) {
        self.inner.cv.notify_all();
    }

    /// Streams currently queued or running (admitted, not yet finished —
    /// including one the worker holds mid-step).
    pub fn queued(&self) -> usize {
        let st = self.inner.state.lock().expect("stream queues");
        st.live.values().sum()
    }

    /// Hand-rolled JSON for the `Stats` op.
    pub fn stats_json(&self) -> String {
        format!(
            "{{\"started\": {}, \"bricks\": {}, \"completed\": {}, \"failed\": {}, \"resumed_bricks\": {}, \"queued\": {}}}",
            self.inner.started.load(Ordering::Relaxed),
            self.inner.bricks.load(Ordering::Relaxed),
            self.inner.completed.load(Ordering::Relaxed),
            self.inner.failed.load(Ordering::Relaxed),
            self.inner.resumed_bricks.load(Ordering::Relaxed),
            self.queued(),
        )
    }

    /// Stop the worker: queued streams get a `ShuttingDown` terminal
    /// message (best effort), the thread is joined. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.cv.notify_all();
        if let Some(h) = self.worker.lock().expect("worker handle").take() {
            let _ = h.join();
        }
    }
}

impl Drop for BrickScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    let mut blocked_streak = 0usize;
    loop {
        let mut s = {
            let mut st = inner.state.lock().expect("stream queues");
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    drain_shutdown(&mut st);
                    return;
                }
                if let Some(s) = pick(&mut st) {
                    break s;
                }
                blocked_streak = 0;
                // Empty: sleep until a submit or shutdown. Bounded wait
                // so a lost notify can never wedge the worker.
                st = inner
                    .cv
                    .wait_timeout(st, Duration::from_millis(50))
                    .expect("stream queues")
                    .0;
            }
        };
        match step(inner, &mut s) {
            Step::Finished => {
                blocked_streak = 0;
                let mut st = inner.state.lock().expect("stream queues");
                release_slot(&mut st, &s.job.tenant.name);
            }
            outcome => {
                let mut st = inner.state.lock().expect("stream queues");
                // Front, not back: a stream keeps its queue slot; the
                // cursor rotation is what moves between tenants.
                st.queues
                    .entry(s.job.tenant.name.clone())
                    .or_default()
                    .push_front(s);
                if matches!(outcome, Step::Blocked) {
                    blocked_streak += 1;
                    // A whole rotation of blocked streams means nothing
                    // is runnable until a client drains bytes: sleep on
                    // the condvar instead of spinning.
                    let queued: usize = st.queues.values().map(|q| q.len()).sum();
                    if blocked_streak >= queued {
                        let _ = inner
                            .cv
                            .wait_timeout(st, Duration::from_millis(10))
                            .expect("stream queues");
                        blocked_streak = 0;
                    }
                } else {
                    blocked_streak = 0;
                }
            }
        }
    }
}

/// Pop the next stream in tenant round-robin order: one brick per tenant
/// per rotation, names visited in sorted order for determinism.
fn pick(st: &mut SchedState) -> Option<ActiveStream> {
    let mut names: Vec<String> = st.queues.keys().cloned().collect();
    if names.is_empty() {
        return None;
    }
    names.sort();
    let n = names.len();
    for off in 0..n {
        let name = &names[(st.cursor + off) % n];
        if let Some(q) = st.queues.get_mut(name) {
            if let Some(s) = q.pop_front() {
                if q.is_empty() {
                    st.queues.remove(name);
                }
                // Start the next pick at this tenant's successor.
                st.cursor = (st.cursor + off + 1) % n;
                return Some(s);
            }
        }
    }
    None
}

/// Admission, capped against the tenant's live count (see
/// [`SchedState::live`]). The watermark is *not* validated here — that
/// needs the brick layout, built lazily on the stream's first turn — so
/// nothing watermark-derived (e.g. the resumed-bricks stat) may be
/// recorded at admission either.
fn admit(inner: &Inner, job: StreamJob) -> Result<(), (Box<StreamJob>, bool)> {
    if inner.shutdown.load(Ordering::Acquire) {
        return Err((Box::new(job), true));
    }
    if let Some(e) = chaos::io_error("serve.brick.submit") {
        let _ = e; // modeled as transient queue pressure
        TM_BUSY.incr();
        return Err((Box::new(job), false));
    }
    chaos::point("serve.brick.submit");
    let mut st = inner.state.lock().expect("stream queues");
    let live = st.live.get(&job.tenant.name).copied().unwrap_or(0);
    if live >= inner.cfg.queue_per_tenant {
        TM_BUSY.incr();
        drop(st);
        return Err((Box::new(job), false));
    }
    st.live.insert(job.tenant.name.clone(), live + 1);
    st.queues
        .entry(job.tenant.name.clone())
        .or_default()
        .push_back(ActiveStream {
            job,
            streamer: None,
            next: 0,
            total: 0,
            sent: 0,
            pending: None,
            finished: false,
        });
    TM_STREAMS.incr();
    inner.started.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Release a finished stream's admission slot.
fn release_slot(st: &mut SchedState, tenant: &str) {
    if let Some(c) = st.live.get_mut(tenant) {
        *c = c.saturating_sub(1);
        if *c == 0 {
            st.live.remove(tenant);
        }
    }
}

fn drain_shutdown(st: &mut SchedState) {
    st.live.clear();
    for (_, q) in st.queues.drain() {
        for s in q {
            let _ = s.job.resp.try_send(StreamMsg::Fail {
                status: Status::ShuttingDown,
                code: ErrorCode::Internal,
                message: "server shut down mid-stream".into(),
            });
        }
    }
}

/// Queue a terminal message, stashing it if the channel is full so it is
/// retried on the stream's next turn.
fn finish(s: &mut ActiveStream, msg: StreamMsg) -> Step {
    s.finished = true;
    // The slot frees before the terminal message is observable.
    drop(s.job.guard.take());
    match s.job.resp.try_send(msg) {
        Ok(()) => Step::Finished,
        Err(TrySendError::Full(m)) => {
            s.pending = Some(m);
            Step::Progress
        }
        Err(TrySendError::Disconnected(_)) => Step::Finished,
    }
}

fn fail(inner: &Inner, s: &mut ActiveStream, code: ErrorCode, message: String) -> Step {
    TM_FAIL.incr();
    inner.failed.fetch_add(1, Ordering::Relaxed);
    s.job.tenant.errors.fetch_add(1, Ordering::Relaxed);
    finish(
        s,
        StreamMsg::Fail {
            status: Status::Error,
            code,
            message,
        },
    )
}

/// One scheduler turn for one stream: flush any stashed message, then
/// compute at most one brick.
fn step(inner: &Inner, s: &mut ActiveStream) -> Step {
    // Checked before the back-pressure gate, deliberately: a dead
    // client's undrained bricks hold `inflight_bytes` at the budget with
    // no one left to subtract them, so a stream gated only on the budget
    // would return `Blocked` forever without ever reaching a `try_send`
    // that could observe the disconnect.
    if s.job.client_gone.load(Ordering::Acquire) {
        return Step::Finished;
    }
    if let Some(msg) = s.pending.take() {
        match s.job.resp.try_send(msg) {
            Ok(()) => {}
            Err(TrySendError::Full(m)) => {
                s.pending = Some(m);
                return Step::Blocked;
            }
            Err(TrySendError::Disconnected(_)) => return Step::Finished,
        }
    }
    if s.finished {
        // The stash above was the terminal message; it is delivered now.
        return Step::Finished;
    }
    // Back-pressure: the client hasn't drained its window. Computing
    // ahead would buffer unbounded bricks server-side.
    if s.job.inflight_bytes.load(Ordering::Acquire) >= inner.cfg.inflight_budget {
        return Step::Blocked;
    }
    if s.streamer.is_none() {
        let cfg = BrickReconConfig {
            brick_dims: s.job.brick_dims,
            halo: inner.cfg.halo,
            ..Default::default()
        };
        match BrickStreamer::new(&s.job.cloud, &s.job.target, &cfg) {
            Ok(streamer) => {
                s.total = streamer.num_bricks() as u64;
                if s.job.start_brick > s.total {
                    return fail(
                        inner,
                        s,
                        ErrorCode::BadRequest,
                        format!(
                            "start_brick {} past the {}-brick layout",
                            s.job.start_brick, s.total
                        ),
                    );
                }
                s.next = s.job.start_brick;
                // The stat counts only here — once the watermark has
                // been validated against a successfully built layout —
                // so a rejected resume cannot inflate it.
                inner
                    .resumed_bricks
                    .fetch_add(s.job.start_brick, Ordering::Relaxed);
                s.streamer = Some(streamer);
            }
            Err(e) => return fail(inner, s, ErrorCode::BadRequest, e.to_string()),
        }
    }
    if s.next >= s.total {
        TM_DONE.incr();
        inner.completed.fetch_add(1, Ordering::Relaxed);
        let max_halo = s.streamer.as_ref().map_or(0, |st| st.max_halo() as u64);
        return finish(
            s,
            StreamMsg::Done {
                total: s.total,
                sent: s.sent,
                skipped: s.job.start_brick,
                max_halo,
            },
        );
    }
    let b = s.next as usize;
    let streamer = s.streamer.as_mut().expect("streamer built above");
    // A chaos panic (or a kernel bug) must cost this stream only, never
    // the scheduler thread that every other tenant shares.
    let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        chaos::point("serve.brick.compute");
        let mut values = streamer.recon(&s.job.entry.pipeline, &s.job.cloud, b, &s.job.ctx)?;
        if let Some(v) = values.as_mut() {
            chaos::corrupt_f32("serve.brick.compute", v);
        }
        Ok::<_, fillvoid_core::CoreError>(values)
    }));
    let values = match computed {
        Err(_) => {
            return fail(
                inner,
                s,
                ErrorCode::Internal,
                format!("brick {b} worker panicked"),
            )
        }
        Ok(Err(e)) => return fail(inner, s, ErrorCode::Internal, format!("brick {b}: {e}")),
        Ok(Ok(None)) => {
            return fail(
                inner,
                s,
                ErrorCode::DeadlineExceeded,
                format!("deadline exceeded at brick {b}/{}", s.total),
            )
        }
        Ok(Ok(Some(v))) => v,
    };
    // Never ship a poisoned payload: corruption (injected or real) is a
    // typed failure, not silently-wrong voxels.
    if values.iter().any(|v| !v.is_finite()) {
        return fail(
            inner,
            s,
            ErrorCode::Internal,
            format!("brick {b} produced non-finite values"),
        );
    }
    let (lo, hi) = streamer.layout().brick_range(b);
    let msg = StreamMsg::Brick {
        index: s.next,
        start: [lo[0] as u64, lo[1] as u64, lo[2] as u64],
        dims: [
            (hi[0] - lo[0]) as u64,
            (hi[1] - lo[1]) as u64,
            (hi[2] - lo[2]) as u64,
        ],
        values,
    };
    if let StreamMsg::Brick { ref values, .. } = msg {
        s.job
            .inflight_bytes
            .fetch_add(values.len() * 4, Ordering::AcqRel);
    }
    TM_BRICKS.incr();
    inner.bricks.fetch_add(1, Ordering::Relaxed);
    s.sent += 1;
    s.next += 1;
    match s.job.resp.try_send(msg) {
        Ok(()) => Step::Progress,
        Err(TrySendError::Full(m)) => {
            s.pending = Some(m);
            Step::Progress // the brick was computed; only delivery waits
        }
        Err(TrySendError::Disconnected(_)) => Step::Finished,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use crate::session::SessionManager;
    use fillvoid_core::{FcnnPipeline, PipelineConfig};
    use fv_field::ScalarField;
    use std::sync::mpsc::{sync_channel, Receiver};
    use std::sync::OnceLock;
    use std::time::Instant;

    /// One tiny trained model + cloud + 8×8×4 target, shared across
    /// tests (training dominates test time even at the small config).
    fn fixture() -> &'static (Arc<ModelEntry>, Arc<PointCloud>, Grid3) {
        static CELL: OnceLock<(Arc<ModelEntry>, Arc<PointCloud>, Grid3)> = OnceLock::new();
        CELL.get_or_init(|| {
            let g = Grid3::new([8, 8, 4]).unwrap();
            let f = ScalarField::from_world_fn(g, |p| (p[0] * 0.3).sin() as f32);
            let mut cfg = PipelineConfig::small_for_tests();
            cfg.trainer.epochs = 1;
            let p = FcnnPipeline::train(&f, &cfg, 1).unwrap();
            let entry = ModelRegistry::new(64 << 20).insert("t", 0, p).unwrap();
            let idx: Vec<usize> = (0..g.num_points()).step_by(3).collect();
            let cloud = Arc::new(PointCloud::from_indices(&f, idx));
            (entry, cloud, g)
        })
    }

    #[allow(clippy::type_complexity)]
    fn mk_job(
        tenant: &Arc<TenantStats>,
        start_brick: u64,
    ) -> (
        StreamJob,
        Receiver<StreamMsg>,
        Arc<AtomicUsize>,
        Arc<AtomicBool>,
    ) {
        let (entry, cloud, g) = fixture();
        let (tx, rx) = sync_channel(64);
        let inflight = Arc::new(AtomicUsize::new(0));
        let gone = Arc::new(AtomicBool::new(false));
        let job = StreamJob {
            entry: entry.clone(),
            cloud: cloud.clone(),
            target: *g,
            brick_dims: [4, 4, 2],
            start_brick,
            ctx: ExecCtx::unbounded(),
            tenant: tenant.clone(),
            guard: None,
            resp: tx,
            inflight_bytes: inflight.clone(),
            client_gone: gone.clone(),
        };
        (job, rx, inflight, gone)
    }

    fn bare_inner(cfg: StreamConfig) -> Inner {
        Inner {
            cfg,
            state: Mutex::new(SchedState::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            started: AtomicU64::new(0),
            bricks: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            resumed_bricks: AtomicU64::new(0),
        }
    }

    /// Regression: a torn connection whose computed bricks still sit in
    /// the response channel leaves `inflight_bytes` at the budget with
    /// nobody left to drain it. The worker must observe the client-gone
    /// flag and drop the stream; gating only on the budget requeued it
    /// as `Blocked` forever — leaking the tenant's queue slot and
    /// in-flight guard and pinning the model entry.
    #[test]
    fn abandoned_budget_blocked_stream_is_dropped() {
        let mgr = SessionManager::new(4);
        let tenant = mgr.tenant("zombie");
        let sched = BrickScheduler::start(StreamConfig {
            queue_per_tenant: 1,
            inflight_budget: 1, // any undrained brick saturates the window
            halo: 2,
        });
        let (mut job, rx, inflight, gone) = mk_job(&tenant, 0);
        job.guard = mgr.try_admit(&tenant);
        // The connection died with one brick's bytes still charged.
        inflight.store(1, Ordering::Release);
        assert!(sched.submit(job).is_ok(), "admitted");
        drop(rx);
        // What the connection thread's exit guard does on every path.
        gone.store(true, Ordering::Release);
        sched.notify();
        let t0 = Instant::now();
        while sched.queued() != 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "abandoned stream still queued: permanent zombie"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Give the dropped job's guard a beat to run its Drop.
        let t0 = Instant::now();
        while tenant.inflight.load(Ordering::Acquire) != 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "in-flight guard leaked with the zombie stream"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // The freed slot admits the tenant's next stream.
        let (job2, _rx2, _, _) = mk_job(&tenant, 0);
        assert!(
            sched.submit(job2).is_ok(),
            "queue slot must free with the stream"
        );
    }

    /// A stream the worker holds mid-step is absent from its tenant's
    /// queue; admission must still count it against the cap, or a racing
    /// submit lands `queue_per_tenant + 1` streams.
    #[test]
    fn worker_held_stream_counts_toward_cap() {
        let tenant = SessionManager::new(4).tenant("cap");
        let inner = bare_inner(StreamConfig {
            queue_per_tenant: 1,
            ..Default::default()
        });
        let (j1, _rx1, _, _) = mk_job(&tenant, 0);
        assert!(admit(&inner, j1).is_ok(), "first stream fits the cap");
        // Simulate the worker popping the stream for a step: the queue
        // momentarily reads empty for this tenant.
        let held = pick(&mut inner.state.lock().unwrap()).expect("stream queued");
        let (j2, _rx2, _, _) = mk_job(&tenant, 0);
        assert!(
            matches!(admit(&inner, j2), Err((_, false))),
            "the held stream must still occupy the tenant's only slot"
        );
        // Finishing the stream is what releases the slot.
        release_slot(&mut inner.state.lock().unwrap(), &held.job.tenant.name);
        drop(held);
        let (j3, _rx3, _, _) = mk_job(&tenant, 0);
        assert!(admit(&inner, j3).is_ok(), "slot released on finish");
    }

    /// `resumed_bricks` must count a resume's skipped prefix only after
    /// the watermark is validated against a built layout: a stream
    /// rejected for `start_brick` past the layout contributes nothing.
    #[test]
    fn resumed_bricks_counts_only_validated_resumes() {
        let tenant = SessionManager::new(4).tenant("resume");
        let inner = bare_inner(StreamConfig::default());

        let (bad, rx, _, _) = mk_job(&tenant, u64::MAX);
        assert!(admit(&inner, bad).is_ok(), "admission is watermark-blind");
        assert_eq!(
            inner.resumed_bricks.load(Ordering::Relaxed),
            0,
            "admission must not count the watermark"
        );
        let mut s = pick(&mut inner.state.lock().unwrap()).unwrap();
        assert!(matches!(step(&inner, &mut s), Step::Finished));
        assert!(matches!(
            rx.try_recv(),
            Ok(StreamMsg::Fail {
                code: ErrorCode::BadRequest,
                ..
            })
        ));
        assert_eq!(
            inner.resumed_bricks.load(Ordering::Relaxed),
            0,
            "a rejected resume must not inflate the stat"
        );

        // A valid watermark counts exactly once, on the first turn.
        let (good, _rx2, _, _) = mk_job(&tenant, 2);
        assert!(admit(&inner, good).is_ok());
        let mut s = pick(&mut inner.state.lock().unwrap()).unwrap();
        let _ = step(&inner, &mut s);
        assert_eq!(inner.resumed_bricks.load(Ordering::Relaxed), 2);
        let _ = step(&inner, &mut s);
        assert_eq!(
            inner.resumed_bricks.load(Ordering::Relaxed),
            2,
            "later turns must not recount"
        );
    }
}
