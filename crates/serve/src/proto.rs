//! The FVS1 wire protocol: CRC'd length-prefixed binary frames.
//!
//! Every message — request or response — is one frame:
//!
//! | offset | size | field                                  |
//! |--------|------|----------------------------------------|
//! | 0      | 4    | magic `"FVS1"`                         |
//! | 4      | 2    | protocol version (u16 LE, currently 2) |
//! | 6      | 1    | op code ([`Op`])                       |
//! | 7      | 1    | status ([`Status`]; 0 in requests)     |
//! | 8      | 4    | payload length (u32 LE)                |
//! | 12     | n    | payload                                |
//! | 12+n   | 4    | CRC-32 of the payload (u32 LE)         |
//!
//! The same framing discipline as the FVF2/FVCK on-disk formats: a fixed
//! magic so a misdirected byte stream is rejected on the first read, an
//! explicit declared length so a reader never trusts the peer for its
//! allocation size (lengths above [`MAX_PAYLOAD`] are rejected *before*
//! any buffer is reserved), and a trailing CRC so a flipped bit anywhere
//! in the payload surfaces as a typed [`FrameError::BadCrc`] instead of a
//! garbage reconstruction. Responses echo the request's op code; the
//! status byte distinguishes full-fidelity results from breaker-demoted
//! [`Status::Degraded`] ones and from typed errors.

use fv_field::checksum::crc32;
use std::io::{Read, Write};

/// Frame magic: "FVS1" (FillVoid Serve, wire format 1).
pub const MAGIC: [u8; 4] = *b"FVS1";
/// Protocol version carried in every frame. Version 2 added the model
/// lifecycle surface: `SwapModel`, idempotent `request_id`s on
/// `Reconstruct`, and the versioned `OpenSession` response. Bodies
/// changed shape, so version-1 frames are rejected outright rather than
/// half-understood.
pub const VERSION: u16 = 2;
/// `OpenSessionReq::version` sentinel meaning "whatever version is
/// currently promoted for this dataset". The server resolves it at open
/// time and echoes the concrete version back in [`OpenSessionResp`];
/// the session stays pinned to that version even if a newer one is
/// promoted later.
pub const VERSION_ACTIVE: u32 = u32::MAX;
/// Upper bound on a declared payload length (64 MiB). A frame announcing
/// more is rejected before any allocation happens.
pub const MAX_PAYLOAD: u32 = 64 << 20;
/// Largest grid a request may name. A dense reconstruction response
/// carries 4 bytes per point plus codec overhead (row count, demotion
/// reason), and the whole payload must fit under [`MAX_PAYLOAD`] — so the
/// bound is enforced at decode time, *before* any point-count-sized
/// allocation, with checked arithmetic (a huge-dims request must neither
/// OOM the server nor produce a frame every compliant reader rejects as
/// oversized).
pub const MAX_GRID_POINTS: u64 = (MAX_PAYLOAD as u64 - 4096) / 4;
/// Largest grid a *streamed* (`ReconstructBricked`) request may name.
/// Streamed responses never materialize the dense volume, so the bound is
/// not the frame cap — it only has to keep the point count inside checked
/// `usize` arithmetic with comfortable headroom. 2⁴² points is a 16 TiB
/// dense volume: far beyond anything the paper's campaigns produce, and
/// small enough that every derived product (bytes, brick counts) stays
/// exact on 64-bit hosts.
pub const MAX_STREAM_POINTS: u64 = 1 << 42;
/// Fixed frame header size (everything before the payload).
pub const HEADER_LEN: usize = 12;

/// Operation codes. Responses echo the request's op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Liveness probe; empty payload both ways.
    Ping = 1,
    /// Open a tenant session bound to a `(dataset, model_version)` model.
    OpenSession = 2,
    /// Close a session, releasing its slot and sample cloud.
    CloseSession = 3,
    /// Upload the session's sample cloud (grid geometry + indices + values).
    PutCloud = 4,
    /// Reconstruct a dense field on a target grid from the session's cloud.
    Reconstruct = 5,
    /// Scrape the server: telemetry snapshot + per-tenant counters (JSON).
    Stats = 6,
    /// Ask the server to shut down gracefully.
    Shutdown = 7,
    /// Promote a new model version for a dataset: canary-validate it,
    /// route new sessions to it, drain and retire the old version.
    SwapModel = 8,
    /// Reconstruct a target grid as a stream of brick frames. One request
    /// frame; the server answers with any number of [`BrickMsg::Brick`]
    /// frames (ascending brick index) terminated by a single
    /// [`BrickMsg::Summary`] frame — or a [`Status::Error`] frame, which
    /// also terminates the stream.
    ReconstructBricked = 9,
}

impl Op {
    /// Decode an op byte; `None` for unknown codes.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => Op::Ping,
            2 => Op::OpenSession,
            3 => Op::CloseSession,
            4 => Op::PutCloud,
            5 => Op::Reconstruct,
            6 => Op::Stats,
            7 => Op::Shutdown,
            8 => Op::SwapModel,
            9 => Op::ReconstructBricked,
            _ => return None,
        })
    }
}

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Full-fidelity result.
    Ok = 0,
    /// The model path was demoted (circuit breaker open, model panic, or
    /// non-finite output); the payload holds the classical-interpolation
    /// fallback instead of an error.
    Degraded = 1,
    /// Typed error; payload is an [`ErrorBody`].
    Error = 2,
    /// The server is shutting down; the request was not executed.
    ShuttingDown = 3,
}

impl Status {
    /// Decode a status byte; `None` for unknown codes.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Status::Ok,
            1 => Status::Degraded,
            2 => Status::Error,
            3 => Status::ShuttingDown,
            _ => return None,
        })
    }
}

/// Typed error codes carried in [`ErrorBody`] payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame itself was malformed (bad magic/version/CRC/length); the
    /// connection is dropped after this response since the stream can no
    /// longer be trusted.
    BadFrame = 1,
    /// Unknown op byte.
    UnknownOp = 2,
    /// Known op, malformed or semantically invalid payload.
    BadRequest = 3,
    /// No session with that id.
    UnknownSession = 4,
    /// The registry has no model under that `(dataset, version)` key.
    UnknownModel = 5,
    /// The micro-batcher queue is full; retry with backoff.
    Busy = 6,
    /// The tenant is at its in-flight cap; retry after a response arrives.
    TooManyInFlight = 7,
    /// The request's deadline expired before its batch ran.
    DeadlineExceeded = 8,
    /// Internal server failure.
    Internal = 9,
    /// The op exists but this server refuses it (e.g. the remote
    /// `Shutdown` op on a multi-tenant deployment that has not enabled
    /// it).
    Forbidden = 10,
    /// A `SwapModel` promotion was refused: the candidate failed its
    /// canary reconstruction (non-finite output, fingerprint mismatch,
    /// or below the SNR floor), was not newer than the active version,
    /// or could not be admitted. The previously active version keeps
    /// serving unchanged.
    SwapRejected = 11,
}

impl ErrorCode {
    /// Decode an error code; `None` for unknown values.
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnknownOp,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::UnknownSession,
            5 => ErrorCode::UnknownModel,
            6 => ErrorCode::Busy,
            7 => ErrorCode::TooManyInFlight,
            8 => ErrorCode::DeadlineExceeded,
            9 => ErrorCode::Internal,
            10 => ErrorCode::Forbidden,
            11 => ErrorCode::SwapRejected,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Raw op byte (validated by the dispatcher so unknown ops get a typed
    /// response instead of a dropped connection).
    pub op: u8,
    /// Raw status byte (0 in requests).
    pub status: u8,
    /// Payload bytes (CRC already verified).
    pub payload: Vec<u8>,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end-of-stream at a frame boundary (peer closed the
    /// connection; not an error).
    Eof,
    /// Stream ended mid-frame.
    Truncated,
    /// First four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u16),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Payload CRC mismatch.
    BadCrc { expect: u32, got: u32 },
    /// Underlying transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::Oversized(n) => {
                write!(f, "declared payload {n} exceeds cap {MAX_PAYLOAD}")
            }
            FrameError::BadCrc { expect, got } => {
                write!(f, "payload crc mismatch: stored {expect:#010x}, computed {got:#010x}")
            }
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// Encode a frame into a byte vector (header + payload + CRC).
pub fn encode_frame(op: u8, status: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(op);
    buf.push(status);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf
}

/// Fill `buf` completely from `r`, retrying [`ErrorKind::Interrupted`]
/// and short reads explicitly. Semantically `read_exact`, but spelled
/// out so the EINTR/short-read contract is local, auditable, and
/// testable rather than inherited: a stray signal on a healthy socket
/// must never kill the connection. `Ok(0)` mid-fill is a truncation
/// (`UnexpectedEof`); a read timeout (`WouldBlock`/`TimedOut`) is
/// surfaced to the caller — the watchdog decides what a stall means.
///
/// [`ErrorKind::Interrupted`]: std::io::ErrorKind::Interrupted
pub fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Write all of `buf` to `w`, retrying [`ErrorKind::Interrupted`] and
/// short writes explicitly (the write-side twin of [`read_full`]). A
/// zero-byte write on a non-empty buffer is reported as `WriteZero`; a
/// write timeout propagates so the server can classify the peer as a
/// slow client.
///
/// [`ErrorKind::Interrupted`]: std::io::ErrorKind::Interrupted
pub fn write_full<W: Write>(w: &mut W, buf: &[u8]) -> std::io::Result<()> {
    let mut written = 0usize;
    while written < buf.len() {
        match w.write(&buf[written..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "peer accepted zero bytes",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Write one frame. A payload over [`MAX_PAYLOAD`] is a hard error:
/// emitting it would produce a frame every compliant reader (including
/// our own [`read_frame`]) rejects as `Oversized`, so it must never
/// reach the wire.
pub fn write_frame<W: Write>(
    w: &mut W,
    op: u8,
    status: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    if payload.len() as u64 > MAX_PAYLOAD as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("payload {} exceeds frame cap {MAX_PAYLOAD}", payload.len()),
        ));
    }
    write_full(w, &encode_frame(op, status, payload))?;
    w.flush()
}

/// Read one frame, verifying magic, version, declared length and CRC.
///
/// A connection closed *between* frames reads as [`FrameError::Eof`]; one
/// closed *inside* a frame reads as [`FrameError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
    // First byte separately: zero bytes here is a clean close, not a
    // truncation.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    read_frame_rest(r, first[0])
}

/// Read the remainder of a frame whose first byte has already been
/// consumed. Split out so the server's watchdog loop can wait for the
/// first byte under an idle-TTL tick and then read the rest of the
/// frame under the (stricter) per-frame I/O deadline.
pub fn read_frame_rest<R: Read>(r: &mut R, first: u8) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    read_full(r, &mut header[1..])?;

    let magic = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let op = header[6];
    let status = header[7];
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload)?;
    let mut crc_buf = [0u8; 4];
    read_full(r, &mut crc_buf)?;
    let expect = u32::from_le_bytes(crc_buf);
    let got = crc32(&payload);
    if expect != got {
        return Err(FrameError::BadCrc { expect, got });
    }
    Ok(Frame {
        op,
        status,
        payload,
    })
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

/// Payload decode failure (maps to [`ErrorCode::BadRequest`] server-side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed payload: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Cursor over a received payload.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError(format!("need {n} bytes at offset {}", self.pos)))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError("non-utf8 string".into()))
    }

    fn f32_vec(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.u32()? as usize;
        let b = self.take(n.checked_mul(4).ok_or_else(|| WireError("f32 count overflow".into()))?)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn bytes_vec(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.u32()? as usize;
        let b = self.take(n.checked_mul(8).ok_or_else(|| WireError("u64 count overflow".into()))?)?;
        Ok(b.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Append a u16-length-prefixed string, rejecting strings that do not fit
/// the prefix. The old `debug_assert!`-only guard silently wrapped
/// `s.len() as u16` in release builds, emitting a frame whose declared
/// string length disagreed with its bytes — trailing-garbage decode
/// failure at best, a truncated name aliasing another tenant at worst.
/// Identifier-carrying encoders (tenant, dataset) must use this and
/// surface the error; never truncate an identifier.
fn try_put_str(buf: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    if s.len() > u16::MAX as usize {
        return Err(WireError(format!(
            "string of {} bytes exceeds the u16 wire prefix ({} max)",
            s.len(),
            u16::MAX
        )));
    }
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Append a u16-length-prefixed string, truncating pathological inputs on
/// a char boundary. Only for *descriptive* text (demotion reasons, error
/// messages) where losing the tail is harmless; identifiers go through
/// [`try_put_str`]. The cut must land on a char boundary: these strings
/// can embed client-controlled text, and slicing mid-char would panic the
/// connection handler on a crafted multi-byte message.
fn put_str_trunc(buf: &mut Vec<u8>, s: &str) {
    let mut cut = s.len().min(u16::MAX as usize);
    while cut > 0 && !s.is_char_boundary(cut) {
        cut -= 1;
    }
    buf.extend_from_slice(&(cut as u16).to_le_bytes());
    buf.extend_from_slice(&s.as_bytes()[..cut]);
}

/// Wire form of a [`fv_field::Grid3`]: dims + physical origin + spacing
/// (all three are needed to rebuild the geometry exactly — transfer to a
/// refined or translated grid is Experiment 3's whole point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridWire {
    /// Grid dimensions.
    pub dims: [u64; 3],
    /// Physical origin.
    pub origin: [f64; 3],
    /// Physical spacing.
    pub spacing: [f64; 3],
}

impl GridWire {
    /// Capture a grid for the wire.
    pub fn from_grid(g: &fv_field::Grid3) -> Self {
        let d = g.dims();
        Self {
            dims: [d[0] as u64, d[1] as u64, d[2] as u64],
            origin: g.origin(),
            spacing: g.spacing(),
        }
    }

    /// Rebuild the grid (validates dims/spacing like any constructor).
    pub fn to_grid(&self) -> Result<fv_field::Grid3, WireError> {
        fv_field::Grid3::with_geometry(
            [
                self.dims[0] as usize,
                self.dims[1] as usize,
                self.dims[2] as usize,
            ],
            self.origin,
            self.spacing,
        )
        .map_err(|e| WireError(format!("bad grid: {e}")))
    }

    /// Rebuild the grid, rejecting any whose point count does not fit a
    /// served response ([`MAX_GRID_POINTS`]). The product is computed
    /// with `checked_mul` over the wire's `u64` dims *before* the `usize`
    /// casts, so a hostile request can neither wrap the count nor drive a
    /// point-count-sized allocation. Server-side decode paths must use
    /// this instead of [`Self::to_grid`].
    pub fn to_grid_bounded(&self) -> Result<fv_field::Grid3, WireError> {
        let points = self
            .dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d))
            .filter(|&n| n <= MAX_GRID_POINTS)
            .ok_or_else(|| {
                WireError(format!(
                    "grid {:?} exceeds the served-size cap of {MAX_GRID_POINTS} points",
                    self.dims
                ))
            })?;
        debug_assert!(points <= usize::MAX as u64);
        self.to_grid()
    }

    /// Rebuild the grid for a *streamed* reconstruction, whose dense size
    /// is allowed to exceed the per-frame cap (responses are per-brick).
    /// Still checked: the point product is computed with `checked_mul`
    /// over the wire's `u64` dims and bounded by [`MAX_STREAM_POINTS`],
    /// so a hostile request can neither wrap the count nor overflow any
    /// byte-size arithmetic derived from it. Nothing proportional to the
    /// point count is ever allocated on this path.
    pub fn to_grid_streamed(&self) -> Result<fv_field::Grid3, WireError> {
        self.dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d))
            .filter(|&n| n <= MAX_STREAM_POINTS)
            .ok_or_else(|| {
                WireError(format!(
                    "grid {:?} exceeds the streamed-size cap of {MAX_STREAM_POINTS} points",
                    self.dims
                ))
            })?;
        self.to_grid()
    }

    fn put(&self, buf: &mut Vec<u8>) {
        for d in self.dims {
            buf.extend_from_slice(&d.to_le_bytes());
        }
        for o in self.origin {
            buf.extend_from_slice(&o.to_bits().to_le_bytes());
        }
        for s in self.spacing {
            buf.extend_from_slice(&s.to_bits().to_le_bytes());
        }
    }

    fn get(r: &mut Rd<'_>) -> Result<Self, WireError> {
        let mut g = GridWire {
            dims: [0; 3],
            origin: [0.0; 3],
            spacing: [0.0; 3],
        };
        for d in &mut g.dims {
            *d = r.u64()?;
        }
        for o in &mut g.origin {
            *o = r.f64()?;
        }
        for s in &mut g.spacing {
            *s = r.f64()?;
        }
        Ok(g)
    }
}

/// `OpenSession` request body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenSessionReq {
    /// Tenant name (admission control and telemetry are per tenant).
    pub tenant: String,
    /// Dataset key of the model to bind.
    pub dataset: String,
    /// Model version (pretrained = 0, fine-tuned snapshots count up).
    pub version: u32,
}

impl OpenSessionReq {
    /// Encode to payload bytes. Fails (rather than corrupting the frame)
    /// when a tenant or dataset name exceeds the u16 wire prefix.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = Vec::new();
        try_put_str(&mut buf, &self.tenant)?;
        try_put_str(&mut buf, &self.dataset)?;
        buf.extend_from_slice(&self.version.to_le_bytes());
        Ok(buf)
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Result<Self, WireError> {
        let mut r = Rd::new(b);
        let v = Self {
            tenant: r.string()?,
            dataset: r.string()?,
            version: r.u32()?,
        };
        r.finish()?;
        Ok(v)
    }
}

/// `PutCloud` request body: the sample cloud as grid geometry + sorted
/// linear indices + values.
#[derive(Debug, Clone, PartialEq)]
pub struct PutCloudReq {
    /// Session to attach the cloud to.
    pub session: u64,
    /// Source grid the indices refer to.
    pub grid: GridWire,
    /// Linear indices of the sampled nodes.
    pub indices: Vec<u64>,
    /// Sampled values, aligned with `indices`.
    pub values: Vec<f32>,
}

impl PutCloudReq {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.session.to_le_bytes());
        self.grid.put(&mut buf);
        buf.extend_from_slice(&(self.indices.len() as u32).to_le_bytes());
        for i in &self.indices {
            buf.extend_from_slice(&i.to_le_bytes());
        }
        buf.extend_from_slice(&(self.values.len() as u32).to_le_bytes());
        for v in &self.values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Result<Self, WireError> {
        let mut r = Rd::new(b);
        let v = Self {
            session: r.u64()?,
            grid: GridWire::get(&mut r)?,
            indices: r.u64_vec()?,
            values: r.f32_vec()?,
        };
        r.finish()?;
        Ok(v)
    }
}

/// `Reconstruct` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconstructReq {
    /// Session whose cloud and model to use.
    pub session: u64,
    /// Target grid to densify onto.
    pub target: GridWire,
    /// Per-request deadline in milliseconds (0 = unbounded).
    pub deadline_ms: u32,
    /// Idempotency key (0 = none). A nonzero id lets the server replay
    /// the original reply from its short-lived per-tenant cache when a
    /// client retries after a mid-reply disconnect, instead of
    /// recomputing the reconstruction or double-counting the request.
    pub request_id: u64,
}

impl ReconstructReq {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.session.to_le_bytes());
        self.target.put(&mut buf);
        buf.extend_from_slice(&self.deadline_ms.to_le_bytes());
        buf.extend_from_slice(&self.request_id.to_le_bytes());
        buf
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Result<Self, WireError> {
        let mut r = Rd::new(b);
        let v = Self {
            session: r.u64()?,
            target: GridWire::get(&mut r)?,
            deadline_ms: r.u32()?,
            request_id: r.u64()?,
        };
        r.finish()?;
        Ok(v)
    }
}

/// `ReconstructBricked` request body: reconstruct `target` from the
/// session's cloud as a stream of per-brick frames.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconstructBrickedReq {
    /// Session whose cloud and model to use.
    pub session: u64,
    /// Target grid to densify onto. May exceed [`MAX_GRID_POINTS`] (the
    /// dense-response cap); bounded by [`MAX_STREAM_POINTS`] instead.
    pub target: GridWire,
    /// Voxels per brick along each axis. Every component must be nonzero
    /// and the brick's dense payload must fit one frame
    /// (`product · 4 B ≤ ` [`MAX_GRID_POINTS`]` · 4 B`).
    pub brick_dims: [u32; 3],
    /// Per-request deadline in milliseconds (0 = unbounded). Applies to
    /// the whole stream.
    pub deadline_ms: u32,
    /// Idempotency key for the stream (0 = none). Echoed in every brick
    /// and summary frame so a healed client can pair frames with the
    /// stream it is resuming.
    pub request_id: u64,
    /// First brick index to compute and send. A fresh stream asks for 0;
    /// a client resuming a torn stream asks for its first *uncommitted*
    /// brick, and the server recomputes nothing below it. Brick values
    /// are pure functions of `(model, cloud, target, index)`, so a resumed
    /// stream is bitwise-identical to an uninterrupted one.
    pub start_brick: u64,
}

impl ReconstructBrickedReq {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.session.to_le_bytes());
        self.target.put(&mut buf);
        for d in self.brick_dims {
            buf.extend_from_slice(&d.to_le_bytes());
        }
        buf.extend_from_slice(&self.deadline_ms.to_le_bytes());
        buf.extend_from_slice(&self.request_id.to_le_bytes());
        buf.extend_from_slice(&self.start_brick.to_le_bytes());
        buf
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Result<Self, WireError> {
        let mut r = Rd::new(b);
        let session = r.u64()?;
        let target = GridWire::get(&mut r)?;
        let mut brick_dims = [0u32; 3];
        for d in &mut brick_dims {
            *d = r.u32()?;
        }
        let v = Self {
            session,
            target,
            brick_dims,
            deadline_ms: r.u32()?,
            request_id: r.u64()?,
            start_brick: r.u64()?,
        };
        r.finish()?;
        Ok(v)
    }
}

/// One frame of a `ReconstructBricked` response stream.
///
/// Brick frames arrive in ascending brick-index order starting at the
/// request's `start_brick`; a single summary frame terminates the stream.
/// Every frame is independently CRC'd by the frame layer, so a flipped
/// bit in any brick surfaces as a typed [`FrameError::BadCrc`] on exactly
/// that frame.
#[derive(Debug, Clone, PartialEq)]
pub enum BrickMsg {
    /// One reconstructed brick.
    Brick(BrickFrame),
    /// End of stream: what the server computed and skipped.
    Summary(BrickSummary),
}

/// A reconstructed brick: its index, extent in the target grid, and dense
/// payload in the brick's x-fastest local order.
#[derive(Debug, Clone, PartialEq)]
pub struct BrickFrame {
    /// Echo of the request's idempotency key.
    pub request_id: u64,
    /// Brick index in the layout's x-fastest brick order.
    pub index: u64,
    /// Inclusive low voxel corner of the brick in the target grid.
    pub start: [u64; 3],
    /// Brick extent in voxels along each axis.
    pub dims: [u64; 3],
    /// Dense values, x-fastest within the brick; length is the dims
    /// product.
    pub values: Vec<f32>,
}

/// Terminal frame of a brick stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrickSummary {
    /// Echo of the request's idempotency key.
    pub request_id: u64,
    /// Bricks in the full decomposition.
    pub total_bricks: u64,
    /// Bricks computed and sent by *this* stream.
    pub sent: u64,
    /// Bricks below `start_brick`, skipped on resume (never recomputed).
    pub skipped: u64,
    /// Largest halo any brick needed before its kNN certificate held.
    pub max_halo: u64,
}

const BRICK_KIND_BRICK: u8 = 0;
const BRICK_KIND_SUMMARY: u8 = 1;

impl BrickMsg {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            BrickMsg::Brick(b) => {
                let mut buf = Vec::with_capacity(69 + b.values.len() * 4);
                buf.push(BRICK_KIND_BRICK);
                buf.extend_from_slice(&b.request_id.to_le_bytes());
                buf.extend_from_slice(&b.index.to_le_bytes());
                for d in b.start {
                    buf.extend_from_slice(&d.to_le_bytes());
                }
                for d in b.dims {
                    buf.extend_from_slice(&d.to_le_bytes());
                }
                buf.extend_from_slice(&(b.values.len() as u32).to_le_bytes());
                for v in &b.values {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                buf
            }
            BrickMsg::Summary(s) => {
                let mut buf = Vec::with_capacity(41);
                buf.push(BRICK_KIND_SUMMARY);
                buf.extend_from_slice(&s.request_id.to_le_bytes());
                buf.extend_from_slice(&s.total_bricks.to_le_bytes());
                buf.extend_from_slice(&s.sent.to_le_bytes());
                buf.extend_from_slice(&s.skipped.to_le_bytes());
                buf.extend_from_slice(&s.max_halo.to_le_bytes());
                buf
            }
        }
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Result<Self, WireError> {
        let mut r = Rd::new(b);
        let kind = r.take(1)?[0];
        let v = match kind {
            BRICK_KIND_BRICK => {
                let request_id = r.u64()?;
                let index = r.u64()?;
                let mut start = [0u64; 3];
                for d in &mut start {
                    *d = r.u64()?;
                }
                let mut dims = [0u64; 3];
                for d in &mut dims {
                    *d = r.u64()?;
                }
                let values = r.f32_vec()?;
                let expect = dims
                    .iter()
                    .try_fold(1u64, |acc, &d| acc.checked_mul(d))
                    .ok_or_else(|| WireError("brick dims overflow".into()))?;
                if values.len() as u64 != expect {
                    return Err(WireError(format!(
                        "brick payload has {} values, extent {:?} needs {expect}",
                        values.len(),
                        dims
                    )));
                }
                BrickMsg::Brick(BrickFrame {
                    request_id,
                    index,
                    start,
                    dims,
                    values,
                })
            }
            BRICK_KIND_SUMMARY => BrickMsg::Summary(BrickSummary {
                request_id: r.u64()?,
                total_bricks: r.u64()?,
                sent: r.u64()?,
                skipped: r.u64()?,
                max_halo: r.u64()?,
            }),
            k => return Err(WireError(format!("unknown brick frame kind {k}"))),
        };
        r.finish()?;
        Ok(v)
    }
}

/// `SwapModel` request body: the candidate pipeline, serialized in the
/// FVPL checkpoint format, to be canary-validated and promoted as the
/// dataset's new active version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapModelReq {
    /// Dataset whose active version to advance.
    pub dataset: String,
    /// Candidate version; must be strictly newer than the active one.
    pub version: u32,
    /// FVPL bytes of the candidate pipeline.
    pub pipeline: Vec<u8>,
}

impl SwapModelReq {
    /// Encode to payload bytes. Fails (rather than corrupting the frame)
    /// when the dataset name exceeds the u16 wire prefix.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = Vec::with_capacity(8 + self.dataset.len() + self.pipeline.len());
        try_put_str(&mut buf, &self.dataset)?;
        buf.extend_from_slice(&self.version.to_le_bytes());
        buf.extend_from_slice(&(self.pipeline.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.pipeline);
        Ok(buf)
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Result<Self, WireError> {
        let mut r = Rd::new(b);
        let v = Self {
            dataset: r.string()?,
            version: r.u32()?,
            pipeline: r.bytes_vec()?,
        };
        r.finish()?;
        Ok(v)
    }
}

/// `Reconstruct` response body: the dense field values plus (for
/// [`Status::Degraded`]) a human-readable demotion reason.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconstructResp {
    /// Reconstructed values in linear grid order.
    pub values: Vec<f32>,
    /// Why the model path was demoted; empty for full-fidelity responses.
    pub reason: String,
}

impl ReconstructResp {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + self.values.len() * 4 + self.reason.len());
        buf.extend_from_slice(&(self.values.len() as u32).to_le_bytes());
        for v in &self.values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        // The reason is server-generated prose; truncation is harmless.
        put_str_trunc(&mut buf, &self.reason);
        buf
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Result<Self, WireError> {
        let mut r = Rd::new(b);
        let v = Self {
            values: r.f32_vec()?,
            reason: r.string()?,
        };
        r.finish()?;
        Ok(v)
    }
}

/// Body of every [`Status::Error`] / [`Status::ShuttingDown`] response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// Typed error code.
    pub code: u16,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorBody {
    /// Build from a typed code.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code: code as u16,
            message: message.into(),
        }
    }

    /// The typed code, if recognized.
    pub fn error_code(&self) -> Option<ErrorCode> {
        ErrorCode::from_u16(self.code)
    }

    /// Encode to payload bytes. Pathological messages are truncated on a
    /// char boundary rather than rejected.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.code.to_le_bytes());
        put_str_trunc(&mut buf, &self.message);
        buf
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Result<Self, WireError> {
        let mut r = Rd::new(b);
        let v = Self {
            code: r.u16()?,
            message: r.string()?,
        };
        r.finish()?;
        Ok(v)
    }
}

/// `OpenSession` response body: the allocated session id plus the
/// concrete model version the session was pinned to (meaningful when
/// the request asked for [`VERSION_ACTIVE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenSessionResp {
    /// Allocated session id.
    pub session: u64,
    /// Resolved model version the session is pinned to.
    pub version: u32,
}

impl OpenSessionResp {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(12);
        buf.extend_from_slice(&self.session.to_le_bytes());
        buf.extend_from_slice(&self.version.to_le_bytes());
        buf
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Result<Self, WireError> {
        let mut r = Rd::new(b);
        let v = Self {
            session: r.u64()?,
            version: r.u32()?,
        };
        r.finish()?;
        Ok(v)
    }
}

/// `CloseSession` request body: the bare session id.
pub fn encode_session_id(id: u64) -> Vec<u8> {
    id.to_le_bytes().to_vec()
}

/// Decode a bare-session-id body.
pub fn decode_session_id(b: &[u8]) -> Result<u64, WireError> {
    let mut r = Rd::new(b);
    let id = r.u64()?;
    r.finish()?;
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = b"hello serve".to_vec();
        let bytes = encode_frame(Op::Ping as u8, Status::Ok as u8, &payload);
        let f = read_frame(&mut bytes.as_slice()).unwrap();
        assert_eq!(f.op, Op::Ping as u8);
        assert_eq!(f.status, Status::Ok as u8);
        assert_eq!(f.payload, payload);
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut { empty }),
            Err(FrameError::Eof)
        ));
    }

    #[test]
    fn truncated_header_and_payload() {
        let bytes = encode_frame(1, 0, b"payload");
        for cut in 1..bytes.len() {
            let mut part = &bytes[..cut];
            assert!(
                matches!(read_frame(&mut part), Err(FrameError::Truncated)),
                "cut at {cut} must read as truncation"
            );
        }
    }

    #[test]
    fn bad_magic_version_crc_oversized() {
        let mut bytes = encode_frame(1, 0, b"x");
        bytes[0] = b'Z';
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(FrameError::BadMagic(_))
        ));

        let mut bytes = encode_frame(1, 0, b"x");
        bytes[4] = 0xFF;
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(FrameError::BadVersion(_))
        ));

        let mut bytes = encode_frame(1, 0, b"abcd");
        let n = bytes.len();
        bytes[n - 6] ^= 0x40; // flip a payload bit; stored CRC now disagrees
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(FrameError::BadCrc { .. })
        ));

        let mut bytes = encode_frame(1, 0, b"x");
        bytes[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn body_roundtrips() {
        let open = OpenSessionReq {
            tenant: "acme".into(),
            dataset: "hurricane".into(),
            version: 3,
        };
        assert_eq!(
            OpenSessionReq::decode(&open.encode().unwrap()).unwrap(),
            open
        );

        let g = fv_field::Grid3::with_geometry([4, 5, 6], [1.0, -2.0, 0.5], [0.1, 0.2, 0.3])
            .unwrap();
        let wire = GridWire::from_grid(&g);
        assert_eq!(wire.to_grid().unwrap(), g);

        let put = PutCloudReq {
            session: 7,
            grid: wire,
            indices: vec![0, 5, 9],
            values: vec![1.0, -2.5, 3.25],
        };
        assert_eq!(PutCloudReq::decode(&put.encode()).unwrap(), put);

        let rec = ReconstructReq {
            session: 7,
            target: wire,
            deadline_ms: 250,
            request_id: 0xDEAD_BEEF_CAFE_F00D,
        };
        assert_eq!(ReconstructReq::decode(&rec.encode()).unwrap(), rec);

        let open_resp = OpenSessionResp {
            session: 0x1122_3344_5566_7788,
            version: 42,
        };
        assert_eq!(OpenSessionResp::decode(&open_resp.encode()).unwrap(), open_resp);

        let swap = SwapModelReq {
            dataset: "hurricane".into(),
            version: 9,
            pipeline: vec![0xF0, 0x9F, 0x00, 0x7F],
        };
        assert_eq!(SwapModelReq::decode(&swap.encode().unwrap()).unwrap(), swap);

        let bricked = ReconstructBrickedReq {
            session: 7,
            target: wire,
            brick_dims: [16, 8, 4],
            deadline_ms: 250,
            request_id: 0xDEAD_BEEF_CAFE_F00D,
            start_brick: 42,
        };
        assert_eq!(
            ReconstructBrickedReq::decode(&bricked.encode()).unwrap(),
            bricked
        );

        let brick = BrickMsg::Brick(BrickFrame {
            request_id: 99,
            index: 3,
            start: [4, 0, 8],
            dims: [2, 1, 2],
            values: vec![1.0, -2.5, f32::MIN_POSITIVE, 0.0],
        });
        assert_eq!(BrickMsg::decode(&brick.encode()).unwrap(), brick);

        let summary = BrickMsg::Summary(BrickSummary {
            request_id: 99,
            total_bricks: 64,
            sent: 60,
            skipped: 4,
            max_halo: 8,
        });
        assert_eq!(BrickMsg::decode(&summary.encode()).unwrap(), summary);

        let resp = ReconstructResp {
            values: vec![0.0, f32::MIN_POSITIVE, -1.0],
            reason: "breaker open".into(),
        };
        assert_eq!(ReconstructResp::decode(&resp.encode()).unwrap(), resp);

        let err = ErrorBody::new(ErrorCode::Busy, "queue full");
        let back = ErrorBody::decode(&err.encode()).unwrap();
        assert_eq!(back.error_code(), Some(ErrorCode::Busy));
        assert_eq!(back.message, "queue full");
    }

    #[test]
    fn oversized_error_message_truncates_on_char_boundary() {
        // 65534 ASCII bytes, then a 3-byte char straddling offset 65535:
        // a naive byte slice at u16::MAX panics mid-char.
        let mut msg = "a".repeat(u16::MAX as usize - 1);
        msg.push('日');
        let body = ErrorBody::new(ErrorCode::Internal, msg);
        let back = ErrorBody::decode(&body.encode()).expect("decode truncated");
        assert_eq!(back.message.len(), u16::MAX as usize - 1);
        assert!(back.message.bytes().all(|b| b == b'a'));

        // Short messages pass through untouched, multi-byte or not.
        let body = ErrorBody::new(ErrorCode::Internal, "日本語");
        assert_eq!(ErrorBody::decode(&body.encode()).unwrap().message, "日本語");
    }

    #[test]
    fn write_frame_refuses_oversized_payload() {
        let huge = vec![0u8; MAX_PAYLOAD as usize + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, 1, 0, &huge).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(sink.is_empty(), "nothing may reach the wire");
    }

    #[test]
    fn grid_bound_rejects_huge_and_wrapping_dims() {
        let ok = GridWire {
            dims: [8, 8, 4],
            origin: [0.0; 3],
            spacing: [1.0; 3],
        };
        assert!(ok.to_grid_bounded().is_ok());

        // Over the cap but far from u64 overflow.
        let big = GridWire {
            dims: [100_000, 100_000, 100_000],
            ..ok
        };
        assert!(big.to_grid_bounded().is_err());

        // Product wraps u64: must be caught by checked_mul, not wrapped.
        let wrap = GridWire {
            dims: [u64::MAX, u64::MAX, u64::MAX],
            ..ok
        };
        assert!(wrap.to_grid_bounded().is_err());

        // Exactly at the cap: the dims themselves are legal.
        let edge = GridWire {
            dims: [MAX_GRID_POINTS, 1, 1],
            ..ok
        };
        assert!(edge.to_grid_bounded().is_ok());
        let over = GridWire {
            dims: [MAX_GRID_POINTS + 1, 1, 1],
            ..ok
        };
        assert!(over.to_grid_bounded().is_err());
    }

    /// A reader that delivers at most one byte per call and returns
    /// `Interrupted` before every other delivery — the worst-case
    /// signal-storm transport a healthy frame must still survive.
    struct InterruptedReader<'a> {
        data: &'a [u8],
        pos: usize,
        calls: usize,
    }

    impl std::io::Read for InterruptedReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.calls += 1;
            if self.calls % 2 == 1 {
                return Err(std::io::Error::from(std::io::ErrorKind::Interrupted));
            }
            if self.pos == self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    /// A writer that accepts at most one byte per call and interleaves
    /// `Interrupted` errors between accepts.
    struct InterruptedWriter {
        out: Vec<u8>,
        calls: usize,
    }

    impl std::io::Write for InterruptedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls += 1;
            if self.calls % 2 == 1 {
                return Err(std::io::Error::from(std::io::ErrorKind::Interrupted));
            }
            self.out.push(buf[0]);
            Ok(1)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn eintr_and_short_io_do_not_kill_a_healthy_frame() {
        let payload = b"signal storm".to_vec();
        let bytes = encode_frame(Op::Reconstruct as u8, Status::Ok as u8, &payload);

        let mut r = InterruptedReader {
            data: &bytes,
            pos: 0,
            calls: 0,
        };
        let f = read_frame(&mut r).expect("EINTR + 1-byte reads must still decode");
        assert_eq!(f.payload, payload);

        let mut w = InterruptedWriter {
            out: Vec::new(),
            calls: 0,
        };
        write_frame(&mut w, Op::Ping as u8, 0, &payload).expect("EINTR + 1-byte writes");
        let f = read_frame(&mut w.out.as_slice()).unwrap();
        assert_eq!(f.payload, payload);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut b = OpenSessionReq {
            tenant: "t".into(),
            dataset: "d".into(),
            version: 0,
        }
        .encode()
        .unwrap();
        b.push(0);
        assert!(OpenSessionReq::decode(&b).is_err());

        let mut b = BrickMsg::Summary(BrickSummary {
            request_id: 1,
            total_bricks: 2,
            sent: 2,
            skipped: 0,
            max_halo: 2,
        })
        .encode();
        b.push(0);
        assert!(BrickMsg::decode(&b).is_err());
    }

    /// Regression for the release-mode `put_str` wrap: a >64 KiB tenant
    /// name must be a typed encode error, never a frame whose u16 length
    /// prefix silently wrapped. (The old code debug_assert!'d, so release
    /// builds emitted a prefix of `len % 65536` followed by the full
    /// bytes — trailing-garbage decode failure at best, and at worst a
    /// truncated name that aliases another tenant.)
    #[test]
    fn oversized_identifier_is_a_typed_encode_error() {
        let huge = "t".repeat(u16::MAX as usize + 1);
        let open = OpenSessionReq {
            tenant: huge.clone(),
            dataset: "d".into(),
            version: 0,
        };
        let err = open.encode().expect_err("oversized tenant must not encode");
        assert!(err.0.contains("u16 wire prefix"), "got: {err}");

        let swap = SwapModelReq {
            dataset: huge.clone(),
            version: 1,
            pipeline: vec![],
        };
        assert!(swap.encode().is_err(), "oversized dataset must not encode");

        // Exactly at the prefix limit still round-trips losslessly.
        let edge = OpenSessionReq {
            tenant: "t".repeat(u16::MAX as usize),
            dataset: "d".into(),
            version: 0,
        };
        let back = OpenSessionReq::decode(&edge.encode().unwrap()).unwrap();
        assert_eq!(back, edge);
    }

    #[test]
    fn brick_msg_rejects_malformed_payloads() {
        // Unknown kind byte.
        assert!(BrickMsg::decode(&[7]).is_err());

        // Value count disagreeing with the declared extent.
        let mut frame = BrickFrame {
            request_id: 1,
            index: 0,
            start: [0; 3],
            dims: [2, 2, 1],
            values: vec![0.0; 4],
        };
        frame.values.pop();
        assert!(BrickMsg::decode(&BrickMsg::Brick(frame).encode()).is_err());
    }

    #[test]
    fn streamed_grid_bound_admits_beyond_frame_cap_but_stays_checked() {
        let base = GridWire {
            dims: [8, 8, 4],
            origin: [0.0; 3],
            spacing: [1.0; 3],
        };
        // Larger than the dense cap, fine for streaming.
        let big = GridWire {
            dims: [MAX_GRID_POINTS + 1, 1, 1],
            ..base
        };
        assert!(big.to_grid_bounded().is_err());
        assert!(big.to_grid_streamed().is_ok());

        // Beyond the stream cap or wrapping u64: rejected.
        let over = GridWire {
            dims: [MAX_STREAM_POINTS + 1, 1, 1],
            ..base
        };
        assert!(over.to_grid_streamed().is_err());
        let wrap = GridWire {
            dims: [u64::MAX, u64::MAX, u64::MAX],
            ..base
        };
        assert!(wrap.to_grid_streamed().is_err());
    }
}
