//! Slice kernels: dot products, axpy, norms, reductions.
//!
//! These free functions are the innermost loops of the matrix kernels and of
//! the neural-network forward/backward passes, so they are written to
//! auto-vectorize: equal-length slices, no bounds checks in the hot loop, and
//! a four-way unrolled accumulator for the dot product (which also gives a
//! fixed, deterministic summation order).

use crate::scalar::Scalar;

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ; in release builds the
/// shorter length wins (standard `zip` semantics) — callers in this workspace
/// always pass equal lengths.
#[inline]
pub fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let mut acc0 = T::ZERO;
    let mut acc1 = T::ZERO;
    let mut acc2 = T::ZERO;
    let mut acc3 = T::ZERO;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc0 += a[j] * b[j];
        acc1 += a[j + 1] * b[j + 1];
        acc2 += a[j + 2] * b[j + 2];
        acc3 += a[j + 3] * b[j + 3];
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for i in chunks * 4..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// `y += alpha * x` over equal-length slices.
#[inline]
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2<T: Scalar>(a: &[T]) -> T {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn dist2_sq<T: Scalar>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = T::ZERO;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Arithmetic mean; zero for an empty slice.
#[inline]
pub fn mean<T: Scalar>(a: &[T]) -> T {
    if a.is_empty() {
        return T::ZERO;
    }
    let sum = a.iter().fold(T::ZERO, |acc, &v| acc + v);
    sum / T::from_usize(a.len())
}

/// Population variance (divides by `n`); zero for slices shorter than 2.
#[inline]
pub fn variance<T: Scalar>(a: &[T]) -> T {
    if a.len() < 2 {
        return T::ZERO;
    }
    let m = mean(a);
    let ss = a.iter().fold(T::ZERO, |acc, &v| {
        let d = v - m;
        acc + d * d
    });
    ss / T::from_usize(a.len())
}

/// Population standard deviation.
#[inline]
pub fn std_dev<T: Scalar>(a: &[T]) -> T {
    variance(a).sqrt()
}

/// Element-wise scale in place.
#[inline]
pub fn scale<T: Scalar>(a: &mut [T], alpha: T) {
    for v in a {
        *v *= alpha;
    }
}

/// `(min, max)` of a slice, ignoring non-finite values; `None` if no finite
/// value exists.
pub fn finite_min_max<T: Scalar>(a: &[T]) -> Option<(T, T)> {
    let mut it = a.iter().copied().filter(|v| v.is_finite());
    let first = it.next()?;
    let mut lo = first;
    let mut hi = first;
    for v in it {
        lo = Scalar::min(lo, v);
        hi = Scalar::max(hi, v);
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..23).map(|i| i as f64 * 0.5 - 3.0).collect();
        let b: Vec<f64> = (0..23).map(|i| (i * i) as f64 * 0.1).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-9);
    }

    #[test]
    fn dot_short_slices() {
        assert_eq!(dot::<f32>(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0f32], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0f64, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn norms_and_distances() {
        assert_eq!(norm2(&[3.0f64, 4.0]), 5.0);
        assert_eq!(dist2_sq(&[0.0f64, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn statistics() {
        let a = [2.0f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&a) - 5.0).abs() < 1e-12);
        assert!((variance(&a) - 4.0).abs() < 1e-12);
        assert!((std_dev(&a) - 2.0).abs() < 1e-12);
        assert_eq!(mean::<f32>(&[]), 0.0);
        assert_eq!(variance(&[1.0f32]), 0.0);
    }

    #[test]
    fn min_max_ignores_non_finite() {
        let a = [f64::NAN, 3.0, -1.0, f64::INFINITY, 2.0];
        assert_eq!(finite_min_max(&a), Some((-1.0, 3.0)));
        assert_eq!(finite_min_max::<f32>(&[f32::NAN]), None);
        assert_eq!(finite_min_max::<f32>(&[]), None);
    }

    #[test]
    fn scale_in_place() {
        let mut a = [1.0f32, -2.0, 4.0];
        scale(&mut a, -0.5);
        assert_eq!(a, [-0.5, 1.0, -2.0]);
    }
}
