//! Error type for the linear-algebra kernels.

use std::fmt;

/// Errors produced by decompositions and solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left-hand side shape `(rows, cols)`.
        lhs: (usize, usize),
        /// Right-hand side shape `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) at the given pivot.
    Singular {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// Cholesky failed: the matrix is not positive definite at the given row.
    NotPositiveDefinite {
        /// Index of the failing diagonal entry.
        row: usize,
    },
    /// A square matrix was required.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { row } => {
                write!(f, "matrix is not positive definite at row {row}")
            }
            LinalgError::NotSquare { shape } => {
                write!(f, "expected a square matrix, got {}x{}", shape.0, shape.1)
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(LinalgError::Singular { pivot: 3 }.to_string().contains("3"));
        assert!(LinalgError::NotPositiveDefinite { row: 1 }
            .to_string()
            .contains("positive definite"));
        assert!(LinalgError::NotSquare { shape: (2, 3) }
            .to_string()
            .contains("2x3"));
    }
}
