//! Floating-point scalar abstraction.
//!
//! The workspace only ever computes with `f32` (network weights, fields) and
//! `f64` (geometric predicates, small dense solves), so instead of depending
//! on `num-traits` we define the minimal trait surface those kernels need.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point scalar usable in the dense kernels of this crate.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + PartialEq
    + PartialOrd
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon for the type.
    const EPSILON: Self;
    /// Packed-GEMM register-tile height (rows per A micro-panel).
    const GEMM_MR: usize;
    /// Packed-GEMM register-tile width (columns per B micro-panel).
    const GEMM_NR: usize;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Raise to an integer power.
    fn powi(self, n: i32) -> Self;
    /// Maximum of two values (NaN-propagating like `f64::max` is not; uses IEEE max).
    fn max(self, other: Self) -> Self;
    /// Minimum of two values.
    fn min(self, other: Self) -> Self;
    /// `true` if the value is finite.
    fn is_finite(self) -> bool;
    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Lossy conversion from `usize`.
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
    /// Native (SIMD) GEMM microkernels compiled for this target, in
    /// preference order; runtime dispatch takes the first whose CPU check
    /// passes. Empty on targets with no native kernel.
    fn gemm_native_kernels() -> &'static [crate::kernel::NativeKernel<Self>];
}

macro_rules! impl_scalar {
    ($t:ty, $mr:expr, $nr:expr, $native:ident) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const GEMM_MR: usize = $mr;
            const GEMM_NR: usize = $nr;

            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn gemm_native_kernels() -> &'static [crate::kernel::NativeKernel<Self>] {
                &crate::kernel::$native
            }
        }
    };
}

// Tile geometry: 6x16 f32 / 6x8 f64 fills the 16-register SIMD file of
// AVX2 and NEON (12 accumulators + operand temporaries); the portable
// kernel shares the geometry so packing is kernel-independent.
impl_scalar!(f32, 6, 16, F32_NATIVE);
impl_scalar!(f64, 6, 8, F64_NATIVE);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_primitives() {
        assert_eq!(f32::ZERO, 0.0f32);
        assert_eq!(f64::ONE, 1.0f64);
        assert_eq!(<f32 as Scalar>::EPSILON, f32::EPSILON);
    }

    #[test]
    fn conversions_round_trip() {
        let x = 3.25f64;
        assert_eq!(f64::from_f64(x).to_f64(), x);
        assert_eq!(f32::from_f64(0.5).to_f64(), 0.5);
        assert_eq!(f32::from_usize(7), 7.0);
    }

    #[test]
    fn basic_ops_dispatch() {
        assert_eq!((-2.0f32).abs(), 2.0);
        assert_eq!(9.0f64.sqrt(), 3.0);
        assert_eq!(2.0f32.powi(3), 8.0);
        assert!(1.0f64.is_finite());
        assert!(!(f64::INFINITY).is_finite());
        assert_eq!(Scalar::max(1.0f32, 2.0), 2.0);
        assert_eq!(Scalar::min(1.0f64, 2.0), 1.0);
    }
}
