//! # fv-linalg
//!
//! A small, dependency-light dense linear-algebra substrate used by the
//! `fillvoid` workspace.
//!
//! The neural-network stack (`fv-nn`) needs fast `f32` matrix products and
//! element-wise kernels; the local radial-basis-function reconstructor
//! (`fv-interp`) needs robust `f64` solves of small dense systems. Rather
//! than pulling a large BLAS/LAPACK binding into an offline build, this crate
//! implements exactly the kernels the workspace needs:
//!
//! * [`Matrix`] — a row-major dense matrix generic over [`Scalar`]
//!   (`f32`/`f64`), with blocked and Rayon-parallel matrix multiplication.
//! * [`lu::LuDecomposition`] — LU with partial pivoting, solve and
//!   determinant.
//! * [`cholesky::Cholesky`] — Cholesky factorization for symmetric positive
//!   definite systems.
//! * [`vector`] — slice kernels (dot, axpy, norms) shared by the other
//!   modules.
//!
//! All kernels are deterministic: parallel reductions accumulate fixed-size
//! partials that are combined in a fixed order, independent of thread count.
//!
//! Hot-path kernels come in `_into` form (`matmul_into`,
//! `matmul_transpose_b_into`, `transpose_a_matmul_into`, `col_sums_into`,
//! `matmul_bias_act_into`) writing caller-provided buffers, so steady-state
//! callers (the `fv-nn` workspaces) allocate nothing per step. Whether a
//! kernel fans out to the pool is decided per call by the min-work
//! [`granularity`] policy — dispatch changes where the fixed chunk geometry
//! runs, never what it computes.

pub mod cholesky;
pub mod error;
pub mod kernel;
pub mod lu;
pub mod matrix;
pub mod scalar;
pub mod vector;

/// Re-export of the runtime's min-work dispatch policy, so downstream crates
/// (`fv-nn`, `fv-core`) can declare [`granularity::OpCounter`]s for their own
/// kernels without a direct `fv-runtime` dependency.
pub use fv_runtime::granularity;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use kernel::{active_kernel_name, detected_kernels, force_kernel, ForcedKernel, GemmScratch};
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use scalar::Scalar;
