//! # fv-linalg
//!
//! A small, dependency-light dense linear-algebra substrate used by the
//! `fillvoid` workspace.
//!
//! The neural-network stack (`fv-nn`) needs fast `f32` matrix products and
//! element-wise kernels; the local radial-basis-function reconstructor
//! (`fv-interp`) needs robust `f64` solves of small dense systems. Rather
//! than pulling a large BLAS/LAPACK binding into an offline build, this crate
//! implements exactly the kernels the workspace needs:
//!
//! * [`Matrix`] — a row-major dense matrix generic over [`Scalar`]
//!   (`f32`/`f64`), with blocked and Rayon-parallel matrix multiplication.
//! * [`lu::LuDecomposition`] — LU with partial pivoting, solve and
//!   determinant.
//! * [`cholesky::Cholesky`] — Cholesky factorization for symmetric positive
//!   definite systems.
//! * [`vector`] — slice kernels (dot, axpy, norms) shared by the other
//!   modules.
//!
//! All kernels are deterministic: parallel reductions accumulate per-thread
//! partials that are combined in a fixed order.

pub mod cholesky;
pub mod error;
pub mod lu;
pub mod matrix;
pub mod scalar;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use scalar::Scalar;
