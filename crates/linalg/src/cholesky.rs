//! Cholesky factorization for symmetric positive-definite systems.
//!
//! Used where the workspace solves SPD systems (e.g. Gaussian RBF Gram
//! matrices with ridge regularization); roughly twice as fast as LU and a
//! useful positive-definiteness check in itself.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Lower-triangular factor `L` with `A = L * L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky<T: Scalar> {
    l: Matrix<T>,
}

impl<T: Scalar> Cholesky<T> {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed, not
    /// checked. Returns [`LinalgError::NotPositiveDefinite`] when a diagonal
    /// pivot is non-positive.
    pub fn new(a: &Matrix<T>) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    let lik = l[(i, k)];
                    let ljk = l[(j, k)];
                    sum -= lik * ljk;
                }
                if i == j {
                    if sum <= T::ZERO || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { row: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    let d = l[(j, j)];
                    l[(i, j)] = sum / d;
                }
            }
        }
        Ok(Self { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor.
    pub fn factor(&self) -> &Matrix<T> {
        &self.l
    }

    /// Solve `A x = b` via forward then backward substitution.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L y = b
        let mut x = b.to_vec();
        for i in 0..n {
            for j in 0..i {
                let l = self.l[(i, j)];
                let xj = x[j];
                x[i] -= l * xj;
            }
            x[i] /= self.l[(i, i)];
        }
        // L^T x = y
        for i in (0..n).rev() {
            for j in i + 1..n {
                let l = self.l[(j, i)];
                let xj = x[j];
                x[i] -= l * xj;
            }
            x[i] /= self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of the original matrix: `2 * sum(ln L_ii)`.
    pub fn log_determinant(&self) -> T {
        let mut acc = T::ZERO;
        for i in 0..self.dim() {
            acc += self.l[(i, i)].ln();
        }
        acc + acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix<f64> {
        Matrix::from_vec(
            3,
            3,
            vec![4.0, 12.0, -16.0, 12.0, 37.0, -43.0, -16.0, -43.0, 98.0],
        )
        .unwrap()
    }

    #[test]
    fn factors_classic_example() {
        // Known factor: L = [[2,0,0],[6,1,0],[-8,5,3]]
        let ch = Cholesky::new(&spd3()).unwrap();
        let l = ch.factor();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_bad_rhs() {
        assert!(Cholesky::new(&Matrix::<f64>::zeros(2, 3)).is_err());
        let ch = Cholesky::new(&Matrix::<f64>::identity(2)).unwrap();
        assert!(ch.solve(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn log_determinant_matches_lu() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let det = crate::lu::LuDecomposition::new(&a).unwrap().determinant();
        assert!((ch.log_determinant() - det.ln()).abs() < 1e-9);
    }
}
