//! Panel packing for the GEMM layer.
//!
//! The driver never hands a microkernel a strided or transposed operand:
//! both inputs are first repacked into dense panels whose layout is exactly
//! the order the register tile consumes them in. Packing is also where the
//! two transposed variants (`A^T * B`, `A * B^T`) are absorbed — the
//! microkernel itself only ever sees one layout.
//!
//! Layouts (`MR`/`NR` are the scalar type's tile geometry):
//!
//! * **A panels** — `MR`-row slabs. Panel `t` lives at offset `t * MR * k`
//!   and stores `buf[p * MR + i] = A[t*MR + i][p]`: at reduction step `p`
//!   the `MR` left-hand values are adjacent, ready for broadcast loads.
//! * **B panels** — `NR`-column slabs. Panel `u` lives at `u * NR * k` and
//!   stores `buf[p * NR + j] = B[p][u*NR + j]`: at step `p` the `NR`
//!   right-hand values are one contiguous vector load.
//!
//! Ragged edges are zero-padded to full `MR`/`NR`. Padding is harmless to
//! the numerics: a padded row/column only ever contributes to accumulator
//! lanes that are never written back, and a real element's `k`-chain never
//! contains a padded term (the reduction dimension is never padded). The
//! buffers are `clear()`ed and re-`resize()`d with zeros on every pack, so
//! stale values from a previous (larger) shape can never leak into the
//! padding lanes.

use super::Operand;
use crate::scalar::Scalar;

/// Pack the logical `m x k` left operand into `MR`-row panels.
pub(crate) fn pack_a<T: Scalar>(buf: &mut Vec<T>, a: Operand<'_, T>, m: usize, k: usize, mr: usize) {
    let panels = m.div_ceil(mr);
    buf.clear();
    buf.resize(panels * mr * k, T::ZERO);
    for t in 0..panels {
        let i0 = t * mr;
        let mv = mr.min(m - i0);
        let dst = &mut buf[t * mr * k..(t + 1) * mr * k];
        if a.trans {
            // Source is k x m row-major (`A[i][p] = data[p*ld + i]`): each
            // reduction step reads a contiguous run of `mv` values.
            for p in 0..k {
                let src = &a.data[p * a.ld + i0..p * a.ld + i0 + mv];
                dst[p * mr..p * mr + mv].copy_from_slice(src);
            }
        } else {
            // Source is m x k row-major: walk each row once, scattering into
            // the `MR`-strided panel (the panel stays cache-resident).
            for ii in 0..mv {
                let src = &a.data[(i0 + ii) * a.ld..(i0 + ii) * a.ld + k];
                for (p, &v) in src.iter().enumerate() {
                    dst[p * mr + ii] = v;
                }
            }
        }
    }
}

/// Pack the logical `k x n` right operand into `NR`-column panels.
pub(crate) fn pack_b<T: Scalar>(buf: &mut Vec<T>, b: Operand<'_, T>, n: usize, k: usize, nr: usize) {
    let panels = n.div_ceil(nr);
    buf.clear();
    buf.resize(panels * nr * k, T::ZERO);
    for u in 0..panels {
        let j0 = u * nr;
        let nv = nr.min(n - j0);
        let dst = &mut buf[u * nr * k..(u + 1) * nr * k];
        if b.trans {
            // Source is n x k row-major (`B[p][j] = data[j*ld + p]`): read
            // each source row once, scatter into the `NR`-strided panel.
            for jj in 0..nv {
                let src = &b.data[(j0 + jj) * b.ld..(j0 + jj) * b.ld + k];
                for (p, &v) in src.iter().enumerate() {
                    dst[p * nr + jj] = v;
                }
            }
        } else {
            // Source is k x n row-major: each reduction step is one memcpy.
            for p in 0..k {
                let src = &b.data[p * b.ld + j0..p * b.ld + j0 + nv];
                dst[p * nr..p * nr + nv].copy_from_slice(src);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_layouts_agree_and_pad_with_zeros() {
        // Logical A is 5x3: A[i][p] = (i*10 + p) as f32.
        let m = 5usize;
        let k = 3usize;
        let mr = 4usize;
        let normal: Vec<f32> = (0..m * k).map(|x| ((x / k) * 10 + x % k) as f32).collect();
        let transposed: Vec<f32> = (0..k * m).map(|x| ((x % m) * 10 + x / m) as f32).collect();
        let mut buf_n = vec![7.0f32; 128]; // poisoned: packing must overwrite
        let mut buf_t = vec![7.0f32; 1];
        pack_a(&mut buf_n, Operand::normal(&normal, k), m, k, mr);
        pack_a(&mut buf_t, Operand::transposed(&transposed, m), m, k, mr);
        assert_eq!(buf_n, buf_t);
        assert_eq!(buf_n.len(), 2 * mr * k);
        // Panel 0, step p=1 holds rows 0..4 of column 1.
        assert_eq!(&buf_n[mr..2 * mr], &[1.0, 11.0, 21.0, 31.0]);
        // Panel 1 holds row 4 then three zero-padded rows at every step.
        assert_eq!(&buf_n[mr * k..mr * k + mr], &[40.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_b_layouts_agree_and_pad_with_zeros() {
        // Logical B is 3x6: B[p][j] = (p*100 + j) as f32.
        let k = 3usize;
        let n = 6usize;
        let nr = 4usize;
        let normal: Vec<f32> = (0..k * n).map(|x| ((x / n) * 100 + x % n) as f32).collect();
        let transposed: Vec<f32> = (0..n * k).map(|x| ((x % k) * 100 + x / k) as f32).collect();
        let mut buf_n = Vec::new();
        let mut buf_t = vec![9.0f32; 256];
        pack_b(&mut buf_n, Operand::normal(&normal, n), n, k, nr);
        pack_b(&mut buf_t, Operand::transposed(&transposed, k), n, k, nr);
        assert_eq!(buf_n, buf_t);
        assert_eq!(buf_n.len(), 2 * nr * k);
        // Panel 0, step p=2: columns 0..4 of row 2.
        assert_eq!(&buf_n[2 * nr..3 * nr], &[200.0, 201.0, 202.0, 203.0]);
        // Panel 1, step p=0: columns 4,5 then zero padding.
        assert_eq!(&buf_n[nr * k..nr * k + nr], &[4.0, 5.0, 0.0, 0.0]);
    }
}
