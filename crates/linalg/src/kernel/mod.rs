//! Packed-GEMM execution layer: panel packing, register-blocked
//! microkernels, and runtime ISA dispatch.
//!
//! Every matrix-product entry point on [`crate::Matrix`] (`matmul_into`,
//! `matmul_transpose_b_into`, `transpose_a_matmul_into`,
//! `matmul_bias_act_into` and the allocating wrappers) routes through the
//! one driver in this module. The driver packs both operands into dense
//! panels (the `pack` submodule), runs an `MR x NR` register-tile microkernel over
//! them, and applies the epilogue (plain store, or fused bias+activation)
//! during tile write-back.
//!
//! ## Determinism contract
//!
//! Every output element accumulates its `k` product terms in strictly
//! ascending reduction order into a single accumulator, with an *unfused*
//! multiply-then-add at each step. That per-element chain is the entire
//! contract: it does not mention tiles, panels, chunk sizes, or thread
//! counts, so results are bitwise-identical across
//!
//! * microkernels (portable / AVX2 / NEON — the SIMD kernels evaluate the
//!   same chains lane-parallel and avoid FMA precisely so they round
//!   identically),
//! * the packed path and the small-shape fallback paths,
//! * `FV_GEMM_KERNEL` settings, and
//! * thread widths (parallelism only ever splits output *rows*; a row's
//!   chain is never split, so there is no reduction combining step at
//!   all — even with `FV_DETERMINISTIC=0`).
//!
//! There is deliberately no k-blocking: a tile traverses the whole `k`
//! extent with register accumulators, which is what keeps the chain-order
//! argument trivial (no partial-sum recombination order to reason about).
//!
//! ## Dispatch
//!
//! `FV_GEMM_KERNEL` selects the microkernel: `auto` (default) picks the
//! first native kernel whose CPU check passes, falling back to `portable`;
//! `portable` forces the scalar reference; a kernel name (`avx2`, `neon`)
//! forces that kernel when available and silently degrades to `auto` order
//! otherwise. Because all kernels are bitwise-identical this only ever
//! changes speed, never values — which is also why the in-process
//! [`force_kernel`] test hook is sound.

pub(crate) mod pack;
mod portable;
#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

use crate::scalar::Scalar;
use fv_runtime::telemetry;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

static TM_PACK: telemetry::Site = telemetry::Site::new("linalg.gemm.pack", None);
static TM_KERNEL: telemetry::Site = telemetry::Site::new("linalg.gemm.kernel", None);
static TM_PACK_BYTES: telemetry::Counter = telemetry::Counter::new("linalg.gemm.pack_bytes");

/// A microkernel: computes one full `MR x NR` tile, `acc = Apanel * Bpanel`,
/// overwriting `acc`. `a` points at a packed A panel (`k * MR` values,
/// layout `p*MR + i`), `b` at a packed B panel (`k * NR`, layout
/// `p*NR + j`), `acc` at an `MR * NR` row-major tile.
pub type MicroFn<T> = unsafe fn(k: usize, a: *const T, b: *const T, acc: *mut T);

/// One native (SIMD) microkernel with its runtime availability check.
/// [`Scalar::gemm_native_kernels`] exposes the per-type table; `auto`
/// dispatch takes the first entry whose `detect` passes.
pub struct NativeKernel<T: 'static> {
    /// Name matched against `FV_GEMM_KERNEL` (e.g. `avx2`, `neon`).
    pub name: &'static str,
    /// Runtime CPU-capability check.
    pub detect: fn() -> bool,
    /// The kernel entry point.
    pub micro: MicroFn<T>,
}

/// Upper bound on `MR * NR` across all scalar types, sizing the one
/// stack-allocated tile buffer the driver reuses for every panel pair.
pub(crate) const MAX_TILE: usize = 96;

#[cfg(target_arch = "x86_64")]
pub(crate) static F32_NATIVE: [NativeKernel<f32>; 1] = [NativeKernel {
    name: "avx2",
    detect: x86::have_avx2,
    micro: x86::micro_f32,
}];
#[cfg(target_arch = "x86_64")]
pub(crate) static F64_NATIVE: [NativeKernel<f64>; 1] = [NativeKernel {
    name: "avx2",
    detect: x86::have_avx2,
    micro: x86::micro_f64,
}];

#[cfg(target_arch = "aarch64")]
pub(crate) static F32_NATIVE: [NativeKernel<f32>; 1] = [NativeKernel {
    name: "neon",
    detect: neon::have_neon,
    micro: neon::micro_f32,
}];
#[cfg(target_arch = "aarch64")]
pub(crate) static F64_NATIVE: [NativeKernel<f64>; 1] = [NativeKernel {
    name: "neon",
    detect: neon::have_neon,
    micro: neon::micro_f64,
}];

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub(crate) static F32_NATIVE: [NativeKernel<f32>; 0] = [];
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub(crate) static F64_NATIVE: [NativeKernel<f64>; 0] = [];

/// `FV_GEMM_KERNEL`, read once, lower-cased.
fn env_choice() -> &'static str {
    static RAW: OnceLock<String> = OnceLock::new();
    RAW.get_or_init(|| {
        std::env::var("FV_GEMM_KERNEL")
            .unwrap_or_default()
            .trim()
            .to_ascii_lowercase()
    })
}

/// In-process kernel override for tests and benchmarks (environment
/// variables are awkward to vary within one process). `None` restores
/// `FV_GEMM_KERNEL`/auto behavior.
///
/// Sound to flip at any time from any thread *because* all kernels are
/// bitwise-identical: concurrent GEMMs may pick different kernels but
/// never different values.
pub fn force_kernel(choice: Option<ForcedKernel>) {
    let v = match choice {
        None => 0,
        Some(ForcedKernel::Portable) => 1,
        Some(ForcedKernel::Native) => 2,
    };
    FORCE.store(v, Ordering::SeqCst);
}

/// Argument to [`force_kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForcedKernel {
    /// The scalar reference kernel.
    Portable,
    /// The first available native kernel (falls back to portable when the
    /// target has none).
    Native,
}

static FORCE: AtomicU8 = AtomicU8::new(0);

fn first_native<T: Scalar>() -> Option<(&'static str, MicroFn<T>)> {
    T::gemm_native_kernels()
        .iter()
        .find(|nk| (nk.detect)())
        .map(|nk| (nk.name, nk.micro))
}

/// Resolve the active `(name, microkernel)` pair for `T`.
fn select<T: Scalar>() -> (&'static str, MicroFn<T>) {
    let portable: (&'static str, MicroFn<T>) = ("portable", portable::micro::<T>);
    match FORCE.load(Ordering::SeqCst) {
        1 => return portable,
        2 => return first_native::<T>().unwrap_or(portable),
        _ => {}
    }
    match env_choice() {
        "portable" => portable,
        "" | "auto" => first_native::<T>().unwrap_or(portable),
        name => T::gemm_native_kernels()
            .iter()
            .find(|nk| nk.name == name && (nk.detect)())
            .map(|nk| (nk.name, nk.micro))
            .unwrap_or_else(|| first_native::<T>().unwrap_or(portable)),
    }
}

/// Name of the kernel the dispatcher would run for `T` right now
/// (`"portable"`, `"avx2"`, `"neon"`). Benchmarks report this as the
/// chosen ISA.
pub fn active_kernel_name<T: Scalar>() -> &'static str {
    select::<T>().0
}

/// Names of every kernel usable for `T` on this host: each native kernel
/// whose CPU check passes, then `"portable"`.
pub fn detected_kernels<T: Scalar>() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = T::gemm_native_kernels()
        .iter()
        .filter(|nk| (nk.detect)())
        .map(|nk| nk.name)
        .collect();
    names.push("portable");
    names
}

/// Reusable pack-buffer workspace. Hot-path callers (the fv-nn
/// workspaces) hold one per training/inference loop so steady-state GEMMs
/// allocate nothing: `pack_a`/`pack_b` are `resize`d each call but only
/// grow capacity the first time a shape is seen.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch<T: Scalar> {
    pack_a: Vec<T>,
    pack_b: Vec<T>,
    calls: u64,
    grows: u64,
}

impl<T: Scalar> GemmScratch<T> {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packed GEMM calls driven through this scratch.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Calls that had to grow a pack buffer's capacity.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Calls served entirely from already-sized buffers — the pack-buffer
    /// reuse count benchmarks report.
    pub fn reuses(&self) -> u64 {
        self.calls - self.grows
    }
}

/// A borrowed GEMM operand: logical matrix view over a row-major slice.
///
/// * `trans == false`: logical `(r, c)` element is `data[r * ld + c]`.
/// * `trans == true`: the logical matrix is the transpose of the stored
///   one — logical `(r, c)` is `data[c * ld + r]`.
#[derive(Clone, Copy)]
pub(crate) struct Operand<'a, T> {
    pub(crate) data: &'a [T],
    pub(crate) ld: usize,
    pub(crate) trans: bool,
}

impl<'a, T> Operand<'a, T> {
    /// View `data` as stored: row-major with row stride `ld`.
    pub(crate) fn normal(data: &'a [T], ld: usize) -> Self {
        Self { data, ld, trans: false }
    }

    /// View `data` as the transpose of the stored row-major matrix.
    pub(crate) fn transposed(data: &'a [T], ld: usize) -> Self {
        Self { data, ld, trans: true }
    }
}

/// Fused bias+activation epilogue arguments.
struct BiasActArgs<'a, T, F> {
    bias: &'a [T],
    act: &'a F,
}

impl<T, F> Clone for BiasActArgs<'_, T, F> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T, F> Copy for BiasActArgs<'_, T, F> {}

/// Shapes below this go straight to the unpacked fallback paths: packing
/// two operands costs more than it saves when the tile grid is ragged or
/// the reduction is short. Pure function of the shape, so path choice is
/// deterministic.
fn use_packed(m: usize, n: usize, k: usize) -> bool {
    m >= 4 && n >= 8 && k >= 8 && m * n * k >= 4096
}

/// Plain product: `C (m x n) = A (m x k) * B (k x n)`, epilogue-free.
/// `parallel` fans the fixed row-chunk geometry out to the pool.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: Operand<'_, T>,
    b: Operand<'_, T>,
    c: &mut [T],
    scratch: &mut GemmScratch<T>,
    parallel: bool,
) {
    run::<T, fn(T) -> T>(m, n, k, a, b, c, None, None, scratch, parallel);
}

/// Product with fused epilogue: `Z = A * B + bias` (bias broadcast across
/// rows), then activation. With `act_out = Some(aux)`, `c` receives the
/// pre-activation `Z` and `aux` receives `act(Z)` (training needs both);
/// with `None`, `c` receives `act(Z)` directly (inference).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_bias_act<T: Scalar, F: Fn(T) -> T + Sync>(
    m: usize,
    n: usize,
    k: usize,
    a: Operand<'_, T>,
    b: Operand<'_, T>,
    bias: &[T],
    act: &F,
    c: &mut [T],
    act_out: Option<&mut [T]>,
    scratch: &mut GemmScratch<T>,
    parallel: bool,
) {
    debug_assert_eq!(bias.len(), n);
    run(m, n, k, a, b, c, act_out, Some(BiasActArgs { bias, act }), scratch, parallel);
}

#[allow(clippy::too_many_arguments)]
fn run<T: Scalar, F: Fn(T) -> T + Sync>(
    m: usize,
    n: usize,
    k: usize,
    a: Operand<'_, T>,
    b: Operand<'_, T>,
    c: &mut [T],
    aux: Option<&mut [T]>,
    fuse: Option<BiasActArgs<'_, T, F>>,
    scratch: &mut GemmScratch<T>,
    parallel: bool,
) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert!(!(a.trans && b.trans), "A^T * B^T is never emitted");
    if let Some(aux) = &aux {
        debug_assert_eq!(aux.len(), m * n);
    }
    if m == 0 || n == 0 {
        return;
    }
    if use_packed(m, n, k) {
        run_packed(m, n, k, a, b, c, aux, fuse, scratch, parallel);
    } else {
        run_fallback(m, n, k, a, b, c, aux, fuse, parallel);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_packed<T: Scalar, F: Fn(T) -> T + Sync>(
    m: usize,
    n: usize,
    k: usize,
    a: Operand<'_, T>,
    b: Operand<'_, T>,
    c: &mut [T],
    aux: Option<&mut [T]>,
    fuse: Option<BiasActArgs<'_, T, F>>,
    scratch: &mut GemmScratch<T>,
    parallel: bool,
) {
    let mr = T::GEMM_MR;
    let nr = T::GEMM_NR;
    debug_assert!(mr * nr <= MAX_TILE);
    let (_name, micro) = select::<T>();

    scratch.calls += 1;
    {
        let _pack_span = TM_PACK.span();
        let need_a = m.div_ceil(mr) * mr * k;
        let need_b = n.div_ceil(nr) * nr * k;
        if need_a > scratch.pack_a.capacity() || need_b > scratch.pack_b.capacity() {
            scratch.grows += 1;
        }
        pack::pack_a(&mut scratch.pack_a, a, m, k, mr);
        pack::pack_b(&mut scratch.pack_b, b, n, k, nr);
        TM_PACK_BYTES.add(((need_a + need_b) * std::mem::size_of::<T>()) as u64);
    }

    let _kernel_span = TM_KERNEL.span();
    let pa: &[T] = &scratch.pack_a;
    let pb: &[T] = &scratch.pack_b;
    let rows_chunk = fv_runtime::granularity::panel_rows(m, mr);
    let block = |bi: usize, cb: &mut [T], ab: Option<&mut [T]>| {
        let first_panel = bi * rows_chunk / mr;
        compute_block(cb, ab, first_panel, pa, pb, n, k, mr, nr, micro, fuse);
    };
    drive(c, aux, n, rows_chunk, parallel, &block);
}

/// A row-chunk worker: `(chunk_index, c_chunk, aux_chunk)`.
type BlockFn<'a, T> = &'a (dyn Fn(usize, &mut [T], Option<&mut [T]>) + Sync);

/// Run `block(chunk_index, c_chunk, aux_chunk)` over row chunks of
/// `rows_chunk` rows, inline or on the pool. The chunk geometry is
/// identical either way; only *where* chunks execute changes.
fn drive<T: Scalar>(
    c: &mut [T],
    aux: Option<&mut [T]>,
    n: usize,
    rows_chunk: usize,
    parallel: bool,
    block: BlockFn<'_, T>,
) {
    let chunk = rows_chunk * n;
    match (parallel, aux) {
        (true, Some(aux)) => c
            .par_chunks_mut(chunk)
            .zip(aux.par_chunks_mut(chunk))
            .enumerate()
            .for_each(|(bi, (cb, ab))| block(bi, cb, Some(ab))),
        (true, None) => c
            .par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(bi, cb)| block(bi, cb, None)),
        (false, Some(aux)) => c
            .chunks_mut(chunk)
            .zip(aux.chunks_mut(chunk))
            .enumerate()
            .for_each(|(bi, (cb, ab))| block(bi, cb, Some(ab))),
        (false, None) => c
            .chunks_mut(chunk)
            .enumerate()
            .for_each(|(bi, cb)| block(bi, cb, None)),
    }
}

/// Compute one row-chunk of C from packed panels: loop over the chunk's
/// A panels x all B panels, microkernel per tile, epilogue at write-back.
#[allow(clippy::too_many_arguments)]
fn compute_block<T: Scalar, F: Fn(T) -> T>(
    cb: &mut [T],
    mut ab: Option<&mut [T]>,
    first_panel: usize,
    pa: &[T],
    pb: &[T],
    n: usize,
    k: usize,
    mr: usize,
    nr: usize,
    micro: MicroFn<T>,
    fuse: Option<BiasActArgs<'_, T, F>>,
) {
    let rows_in = cb.len() / n;
    let col_panels = n.div_ceil(nr);
    let mut acc = [T::ZERO; MAX_TILE];
    for lp in 0..rows_in.div_ceil(mr) {
        let i0 = lp * mr;
        let mv = mr.min(rows_in - i0);
        let pa_off = (first_panel + lp) * mr * k;
        for u in 0..col_panels {
            let j0 = u * nr;
            let nv = nr.min(n - j0);
            // SAFETY: panel offsets are in bounds by construction (pack_a/
            // pack_b sized the buffers for exactly these panel counts) and
            // `acc` holds MAX_TILE >= mr*nr elements.
            unsafe {
                micro(
                    k,
                    pa.as_ptr().add(pa_off),
                    pb.as_ptr().add(u * nr * k),
                    acc.as_mut_ptr(),
                )
            };
            for ii in 0..mv {
                let row0 = (i0 + ii) * n + j0;
                let tile = &acc[ii * nr..ii * nr + nv];
                match fuse {
                    None => cb[row0..row0 + nv].copy_from_slice(tile),
                    Some(f) => {
                        let bias = &f.bias[j0..j0 + nv];
                        match ab.as_deref_mut() {
                            Some(aux) => {
                                for x in 0..nv {
                                    let z = tile[x] + bias[x];
                                    cb[row0 + x] = z;
                                    aux[row0 + x] = (f.act)(z);
                                }
                            }
                            None => {
                                for x in 0..nv {
                                    cb[row0 + x] = (f.act)(tile[x] + bias[x]);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_fallback<T: Scalar, F: Fn(T) -> T + Sync>(
    m: usize,
    n: usize,
    k: usize,
    a: Operand<'_, T>,
    b: Operand<'_, T>,
    c: &mut [T],
    aux: Option<&mut [T]>,
    fuse: Option<BiasActArgs<'_, T, F>>,
    parallel: bool,
) {
    let _kernel_span = TM_KERNEL.span();
    let rows_chunk = fv_runtime::granularity::panel_rows(m, T::GEMM_MR);
    let block = |bi: usize, cb: &mut [T], ab: Option<&mut [T]>| {
        fallback_product(cb, bi * rows_chunk, a, b, n, k);
        if let Some(f) = fuse {
            epilogue_rows(cb, ab, n, f);
        }
    };
    drive(c, aux, n, rows_chunk, parallel, &block);
}

/// Unpacked product for small shapes. Each variant walks the reduction in
/// ascending order with one accumulator chain per element — the same
/// canonical order the microkernels compute, so both paths are bitwise
/// interchangeable.
fn fallback_product<T: Scalar>(
    cb: &mut [T],
    r0: usize,
    a: Operand<'_, T>,
    b: Operand<'_, T>,
    n: usize,
    k: usize,
) {
    let rows_in = cb.len() / n;
    if a.trans {
        // C = A^T_stored * B: rank-1 updates, p ascending.
        cb.fill(T::ZERO);
        for p in 0..k {
            let arow = &a.data[p * a.ld + r0..p * a.ld + r0 + rows_in];
            let brow = &b.data[p * b.ld..p * b.ld + n];
            for (i, &av) in arow.iter().enumerate() {
                crate::vector::axpy(av, brow, &mut cb[i * n..(i + 1) * n]);
            }
        }
    } else if b.trans {
        // C = A * B^T_stored: per-element dot chains, four independent
        // output columns in flight to hide FP latency (each element still
        // owns exactly one chain).
        for i in 0..rows_in {
            let arow = &a.data[(r0 + i) * a.ld..(r0 + i) * a.ld + k];
            let crow = &mut cb[i * n..(i + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                let b0 = &b.data[j * b.ld..j * b.ld + k];
                let b1 = &b.data[(j + 1) * b.ld..(j + 1) * b.ld + k];
                let b2 = &b.data[(j + 2) * b.ld..(j + 2) * b.ld + k];
                let b3 = &b.data[(j + 3) * b.ld..(j + 3) * b.ld + k];
                let (mut s0, mut s1, mut s2, mut s3) = (T::ZERO, T::ZERO, T::ZERO, T::ZERO);
                for (p, &av) in arow.iter().enumerate() {
                    s0 += av * b0[p];
                    s1 += av * b1[p];
                    s2 += av * b2[p];
                    s3 += av * b3[p];
                }
                crow[j] = s0;
                crow[j + 1] = s1;
                crow[j + 2] = s2;
                crow[j + 3] = s3;
                j += 4;
            }
            for (jj, cv) in crow.iter_mut().enumerate().skip(j) {
                let brow = &b.data[jj * b.ld..jj * b.ld + k];
                let mut s = T::ZERO;
                for (p, &av) in arow.iter().enumerate() {
                    s += av * brow[p];
                }
                *cv = s;
            }
        }
    } else {
        // C = A * B: row-times-matrix as axpy sweeps, p ascending.
        cb.fill(T::ZERO);
        for i in 0..rows_in {
            let arow = &a.data[(r0 + i) * a.ld..(r0 + i) * a.ld + k];
            let crow = &mut cb[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                crate::vector::axpy(av, &b.data[p * b.ld..p * b.ld + n], crow);
            }
        }
    }
}

/// Bias+activation pass for the fallback path (the packed path fuses this
/// into tile write-back; values are identical: full product, then `+bias`,
/// then `act`).
fn epilogue_rows<T: Scalar, F: Fn(T) -> T>(
    cb: &mut [T],
    ab: Option<&mut [T]>,
    n: usize,
    f: BiasActArgs<'_, T, F>,
) {
    match ab {
        Some(aux) => {
            for (crow, arow) in cb.chunks_mut(n).zip(aux.chunks_mut(n)) {
                for ((cv, av), &bv) in crow.iter_mut().zip(arow.iter_mut()).zip(f.bias) {
                    let z = *cv + bv;
                    *cv = z;
                    *av = (f.act)(z);
                }
            }
        }
        None => {
            for crow in cb.chunks_mut(n) {
                for (cv, &bv) in crow.iter_mut().zip(f.bias) {
                    *cv = (f.act)(*cv + bv);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: single chain per element, ascending p — the
    /// canonical order.
    fn reference(m: usize, n: usize, k: usize, av: &[f32], bv: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += av[i * k + p] * bv[p * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Deterministic, fully exercising mantissa bits.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn packed_matches_reference_bitwise_for_every_kernel() {
        let (m, n, k) = (13, 21, 17);
        let av = fill(m * k, 1);
        let bv = fill(k * n, 2);
        let want = reference(m, n, k, &av, &bv);
        for forced in [ForcedKernel::Portable, ForcedKernel::Native] {
            force_kernel(Some(forced));
            let mut c = vec![f32::NAN; m * n];
            let mut scratch = GemmScratch::default();
            gemm(
                m,
                n,
                k,
                Operand::normal(&av, k),
                Operand::normal(&bv, n),
                &mut c,
                &mut scratch,
                false,
            );
            assert_eq!(c, want, "kernel {forced:?} diverged from canonical order");
        }
        force_kernel(None);
    }

    #[test]
    fn fallback_paths_match_packed_bitwise() {
        // A shape the packed gate accepts...
        let (m, n, k) = (16, 32, 16);
        let av = fill(m * k, 3);
        let bv = fill(k * n, 4);
        assert!(use_packed(m, n, k));
        let mut packed = vec![0.0f32; m * n];
        let mut scratch = GemmScratch::default();
        gemm(
            m,
            n,
            k,
            Operand::normal(&av, k),
            Operand::normal(&bv, n),
            &mut packed,
            &mut scratch,
            false,
        );
        // ...computed again by the fallback path directly.
        let mut fb = vec![0.0f32; m * n];
        run_fallback::<f32, fn(f32) -> f32>(
            m,
            n,
            k,
            Operand::normal(&av, k),
            Operand::normal(&bv, n),
            &mut fb,
            None,
            None,
            false,
        );
        assert_eq!(packed, fb);
    }

    #[test]
    fn scratch_reuse_counts_grows_once_per_shape() {
        let (m, n, k) = (16, 32, 16);
        assert!(use_packed(m, n, k));
        let av = fill(m * k, 5);
        let bv = fill(k * n, 6);
        let mut c = vec![0.0f32; m * n];
        let mut scratch = GemmScratch::default();
        for _ in 0..5 {
            gemm(
                m,
                n,
                k,
                Operand::normal(&av, k),
                Operand::normal(&bv, n),
                &mut c,
                &mut scratch,
                false,
            );
        }
        assert_eq!(scratch.calls(), 5);
        assert_eq!(scratch.grows(), 1);
        assert_eq!(scratch.reuses(), 4);
    }

    #[test]
    fn dispatch_reports_a_kernel_and_detected_list_ends_portable() {
        let name = active_kernel_name::<f32>();
        assert!(!name.is_empty());
        let detected = detected_kernels::<f32>();
        assert_eq!(*detected.last().unwrap(), "portable");
        assert!(detected.contains(&name));
    }
}
