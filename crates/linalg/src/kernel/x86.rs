//! AVX2 microkernels (x86_64).
//!
//! Geometry: `f32` 6x16 (twelve 8-lane `__m256` accumulators), `f64` 6x8
//! (twelve 4-lane `__m256d`). Both deliberately use `_mm256_mul_*` followed
//! by `_mm256_add_*` rather than FMA: the determinism contract requires the
//! exact two-rounding mul-then-add chain the portable kernel computes, and
//! a fused multiply-add rounds once. The cost is at most 2x peak FLOPs on
//! FMA hardware — still far ahead of the SSE2 baseline the portable kernel
//! autovectorizes to, and bitwise identity across `FV_GEMM_KERNEL` settings
//! is what the parity suite and CI gate assert.
//!
//! The `#[target_feature(enable = "avx2")]` inner functions are wrapped in
//! plain `unsafe fn`s so they coerce to [`super::MicroFn`] pointers on any
//! compile target; `have_avx2` gates dispatch at runtime.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::*;

/// Runtime CPUID check used by the dispatch table.
pub(crate) fn have_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[target_feature(enable = "avx2")]
unsafe fn micro_f32_avx2(k: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    let mut c = [_mm256_setzero_ps(); 12];
    for p in 0..k {
        let bp = b.add(p * 16);
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        let ap = a.add(p * 6);
        for ii in 0..6 {
            let av = _mm256_set1_ps(*ap.add(ii));
            c[2 * ii] = _mm256_add_ps(c[2 * ii], _mm256_mul_ps(av, b0));
            c[2 * ii + 1] = _mm256_add_ps(c[2 * ii + 1], _mm256_mul_ps(av, b1));
        }
    }
    for ii in 0..6 {
        _mm256_storeu_ps(acc.add(ii * 16), c[2 * ii]);
        _mm256_storeu_ps(acc.add(ii * 16 + 8), c[2 * ii + 1]);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn micro_f64_avx2(k: usize, a: *const f64, b: *const f64, acc: *mut f64) {
    let mut c = [_mm256_setzero_pd(); 12];
    for p in 0..k {
        let bp = b.add(p * 8);
        let b0 = _mm256_loadu_pd(bp);
        let b1 = _mm256_loadu_pd(bp.add(4));
        let ap = a.add(p * 6);
        for ii in 0..6 {
            let av = _mm256_set1_pd(*ap.add(ii));
            c[2 * ii] = _mm256_add_pd(c[2 * ii], _mm256_mul_pd(av, b0));
            c[2 * ii + 1] = _mm256_add_pd(c[2 * ii + 1], _mm256_mul_pd(av, b1));
        }
    }
    for ii in 0..6 {
        _mm256_storeu_pd(acc.add(ii * 8), c[2 * ii]);
        _mm256_storeu_pd(acc.add(ii * 8 + 4), c[2 * ii + 1]);
    }
}

/// 6x16 `f32` tile. See [`super::portable::micro`] for the panel contract.
///
/// # Safety
///
/// Same panel/tile validity requirements as the portable kernel, plus the
/// CPU must support AVX2 (callers go through the dispatch table, which
/// checks [`have_avx2`]).
pub(crate) unsafe fn micro_f32(k: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    micro_f32_avx2(k, a, b, acc)
}

/// 6x8 `f64` tile. See [`super::portable::micro`] for the panel contract.
///
/// # Safety
///
/// Same requirements as [`micro_f32`].
pub(crate) unsafe fn micro_f64(k: usize, a: *const f64, b: *const f64, acc: *mut f64) {
    micro_f64_avx2(k, a, b, acc)
}
