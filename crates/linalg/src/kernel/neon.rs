//! NEON microkernels (aarch64).
//!
//! Same geometry as the AVX2 kernels (`f32` 6x16, `f64` 6x8) spread across
//! 128-bit `q` registers: 24 accumulators each. Uses `vmulq`/`vaddq`, not
//! the fused `vfmaq`, for the same reason the x86 kernels avoid FMA — the
//! determinism contract pins every element to the portable kernel's
//! two-rounding mul-then-add chain.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::aarch64::*;

/// NEON is architecturally mandatory on aarch64; the hook exists so the
/// dispatch table has a uniform shape.
pub(crate) fn have_neon() -> bool {
    true
}

#[target_feature(enable = "neon")]
unsafe fn micro_f32_neon(k: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    let mut c = [vdupq_n_f32(0.0); 24];
    for p in 0..k {
        let bp = b.add(p * 16);
        let b0 = vld1q_f32(bp);
        let b1 = vld1q_f32(bp.add(4));
        let b2 = vld1q_f32(bp.add(8));
        let b3 = vld1q_f32(bp.add(12));
        let ap = a.add(p * 6);
        for ii in 0..6 {
            let av = vdupq_n_f32(*ap.add(ii));
            c[4 * ii] = vaddq_f32(c[4 * ii], vmulq_f32(av, b0));
            c[4 * ii + 1] = vaddq_f32(c[4 * ii + 1], vmulq_f32(av, b1));
            c[4 * ii + 2] = vaddq_f32(c[4 * ii + 2], vmulq_f32(av, b2));
            c[4 * ii + 3] = vaddq_f32(c[4 * ii + 3], vmulq_f32(av, b3));
        }
    }
    for ii in 0..6 {
        vst1q_f32(acc.add(ii * 16), c[4 * ii]);
        vst1q_f32(acc.add(ii * 16 + 4), c[4 * ii + 1]);
        vst1q_f32(acc.add(ii * 16 + 8), c[4 * ii + 2]);
        vst1q_f32(acc.add(ii * 16 + 12), c[4 * ii + 3]);
    }
}

#[target_feature(enable = "neon")]
unsafe fn micro_f64_neon(k: usize, a: *const f64, b: *const f64, acc: *mut f64) {
    let mut c = [vdupq_n_f64(0.0); 24];
    for p in 0..k {
        let bp = b.add(p * 8);
        let b0 = vld1q_f64(bp);
        let b1 = vld1q_f64(bp.add(2));
        let b2 = vld1q_f64(bp.add(4));
        let b3 = vld1q_f64(bp.add(6));
        let ap = a.add(p * 6);
        for ii in 0..6 {
            let av = vdupq_n_f64(*ap.add(ii));
            c[4 * ii] = vaddq_f64(c[4 * ii], vmulq_f64(av, b0));
            c[4 * ii + 1] = vaddq_f64(c[4 * ii + 1], vmulq_f64(av, b1));
            c[4 * ii + 2] = vaddq_f64(c[4 * ii + 2], vmulq_f64(av, b2));
            c[4 * ii + 3] = vaddq_f64(c[4 * ii + 3], vmulq_f64(av, b3));
        }
    }
    for ii in 0..6 {
        vst1q_f64(acc.add(ii * 8), c[4 * ii]);
        vst1q_f64(acc.add(ii * 8 + 2), c[4 * ii + 1]);
        vst1q_f64(acc.add(ii * 8 + 4), c[4 * ii + 2]);
        vst1q_f64(acc.add(ii * 8 + 6), c[4 * ii + 3]);
    }
}

/// 6x16 `f32` tile. See [`super::portable::micro`] for the panel contract.
///
/// # Safety
///
/// Same panel/tile validity requirements as the portable kernel.
pub(crate) unsafe fn micro_f32(k: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    micro_f32_neon(k, a, b, acc)
}

/// 6x8 `f64` tile. See [`super::portable::micro`] for the panel contract.
///
/// # Safety
///
/// Same requirements as [`micro_f32`].
pub(crate) unsafe fn micro_f64(k: usize, a: *const f64, b: *const f64, acc: *mut f64) {
    micro_f64_neon(k, a, b, acc)
}
