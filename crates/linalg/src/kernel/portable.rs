//! Portable (scalar) microkernel — the reference every SIMD kernel must
//! match bitwise.
//!
//! One register tile is `MR x NR` accumulators. For each reduction step
//! `p` (ascending) the kernel broadcasts `MR` packed left-hand values and
//! multiplies them against the `NR`-wide packed right-hand row, adding the
//! product into the tile with a separate (unfused) add. Every output
//! element therefore accumulates its `k` terms as one chain
//! `((a[0]*b[0]) + a[1]*b[1]) + ...` in ascending `p` order — the
//! workspace-wide canonical order (DESIGN.md §15). SIMD kernels evaluate
//! the same chains lane-parallel with unfused mul/add, so they round
//! identically.

use crate::scalar::Scalar;

/// Compute a full `MR x NR` tile: `acc = A_panel * B_panel`.
///
/// `a` is a packed A panel (`k * MR` values, layout `p*MR + i`), `b` a
/// packed B panel (`k * NR`, layout `p*NR + j`), `acc` an `MR * NR`
/// row-major tile that is overwritten (not accumulated into).
///
/// # Safety
///
/// `a` must be valid for `k * MR` reads, `b` for `k * NR` reads and `acc`
/// for `MR * NR` writes, where `MR`/`NR` are `T::GEMM_MR`/`T::GEMM_NR`.
pub unsafe fn micro<T: Scalar>(k: usize, a: *const T, b: *const T, acc: *mut T) {
    let mr = T::GEMM_MR;
    let nr = T::GEMM_NR;
    let a = std::slice::from_raw_parts(a, k * mr);
    let b = std::slice::from_raw_parts(b, k * nr);
    let acc = std::slice::from_raw_parts_mut(acc, mr * nr);
    acc.fill(T::ZERO);
    for p in 0..k {
        let arow = &a[p * mr..(p + 1) * mr];
        let brow = &b[p * nr..(p + 1) * nr];
        for (ii, &av) in arow.iter().enumerate() {
            let tile_row = &mut acc[ii * nr..(ii + 1) * nr];
            for (cv, &bv) in tile_row.iter_mut().zip(brow) {
                // Mul then add, never fused: FMA's single rounding would
                // diverge from this chain and break cross-kernel identity.
                *cv += av * bv;
            }
        }
    }
}
