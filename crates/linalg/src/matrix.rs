//! Row-major dense matrix with blocked and parallel multiplication kernels.

use crate::error::LinalgError;
use crate::scalar::Scalar;
use rayon::prelude::*;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Minimum number of rows in the output before `par_matmul` fans out to the
/// Rayon pool; below this the parallel overhead dominates.
const PAR_MIN_ROWS: usize = 32;

/// Row-block size for the blocked parallel kernels. Delegates to the
/// runtime's chunk geometry, which in deterministic mode depends only on the
/// row count — never the worker count — so `par_transpose_a_matmul`'s block
/// reduction sums the same partials in the same order at any `FV_THREADS`.
fn row_block(rows: usize) -> usize {
    fv_runtime::chunk_size(rows, 8, usize::MAX)
}

/// A dense, row-major matrix over an [`Scalar`] element type.
///
/// The layout is `data[r * cols + c]`; rows are contiguous, which is what the
/// inner `ikj` multiplication loop and the per-sample neural-network kernels
/// want.
#[derive(Clone, PartialEq)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Create a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the backing row-major storage.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the backing row-major storage.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the matrix, returning its row-major storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow row `r` as a contiguous slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[T] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a contiguous slice.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Return the transpose of this matrix.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(T) -> T + Sync) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self += other`, returning an error on shape mismatch.
    pub fn add_assign_mat(&mut self, other: &Self) -> Result<(), LinalgError> {
        self.zip_assign(other, "add_assign", |a, b| a + b)
    }

    /// `self -= other`, returning an error on shape mismatch.
    pub fn sub_assign_mat(&mut self, other: &Self) -> Result<(), LinalgError> {
        self.zip_assign(other, "sub_assign", |a, b| a - b)
    }

    /// `self += alpha * other` (matrix axpy).
    pub fn axpy(&mut self, alpha: T, other: &Self) -> Result<(), LinalgError> {
        self.zip_assign(other, "axpy", |a, b| a + alpha * b)
    }

    fn zip_assign(
        &mut self,
        other: &Self,
        op: &'static str,
        f: impl Fn(T, T) -> T,
    ) -> Result<(), LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = f(*a, b);
        }
        Ok(())
    }

    /// Multiply every element by `alpha`.
    pub fn scale(&mut self, alpha: T) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(T::ZERO);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        self.data
            .iter()
            .map(|&v| v * v)
            .fold(T::ZERO, |a, b| a + b)
            .sqrt()
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses a cache-friendly `ikj` loop over contiguous rows.
    pub fn matmul(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros(self.rows, rhs.cols);
        matmul_rows(
            out.data.as_mut_slice(),
            &self.data,
            &rhs.data,
            self.cols,
            rhs.cols,
        );
        Ok(out)
    }

    /// Parallel matrix product `self * rhs`, splitting output rows across the
    /// Rayon pool. Falls back to the sequential kernel for small outputs.
    pub fn par_matmul(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "par_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if self.rows < PAR_MIN_ROWS {
            return self.matmul(rhs);
        }
        let mut out = Self::zeros(self.rows, rhs.cols);
        let k = self.cols;
        let n = rhs.cols;
        let chunk = row_block(self.rows);
        out.data
            .par_chunks_mut(chunk * n)
            .zip(self.data.par_chunks(chunk * k))
            .for_each(|(out_rows, lhs_rows)| {
                matmul_rows(out_rows, lhs_rows, &rhs.data, k, n);
            });
        Ok(out)
    }

    /// Matrix product with the transpose of `rhs`: `self * rhs^T`.
    ///
    /// Both operands are walked along contiguous rows, which makes this the
    /// preferred kernel for the neural-network backward pass.
    pub fn matmul_transpose_b(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_transpose_b",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                *o = crate::vector::dot(a_row, b_row);
            }
        }
        Ok(out)
    }

    /// Parallel `self * rhs^T`, fanning output rows across the Rayon pool.
    /// Falls back to the sequential kernel for small batches.
    pub fn par_matmul_transpose_b(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "par_matmul_transpose_b",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if self.rows < PAR_MIN_ROWS {
            return self.matmul_transpose_b(rhs);
        }
        let mut out = Self::zeros(self.rows, rhs.rows);
        let k = self.cols;
        let n = rhs.rows;
        out.data
            .par_chunks_mut(n)
            .zip(self.data.par_chunks(k))
            .for_each(|(out_row, a_row)| {
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &rhs.data[j * k..(j + 1) * k];
                    *o = crate::vector::dot(a_row, b_row);
                }
            });
        Ok(out)
    }

    /// Parallel `self^T * rhs`: fixed-size row blocks are reduced through
    /// per-block accumulators summed in block order. Block geometry comes
    /// from [`row_block`], so in deterministic mode the result is bitwise
    /// identical at any thread count.
    pub fn par_transpose_a_matmul(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "par_transpose_a_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if self.rows < PAR_MIN_ROWS {
            return self.transpose_a_matmul(rhs);
        }
        let ka = self.cols;
        let kb = rhs.cols;
        let chunk = row_block(self.rows);
        let partials: Vec<Matrix<T>> = self
            .data
            .par_chunks(chunk * ka)
            .zip(rhs.data.par_chunks(chunk * kb))
            .map(|(a_rows, b_rows)| {
                let rows = a_rows.len() / ka.max(1);
                let mut local = Matrix::zeros(ka, kb);
                for i in 0..rows {
                    let a_row = &a_rows[i * ka..(i + 1) * ka];
                    let b_row = &b_rows[i * kb..(i + 1) * kb];
                    for (r, &a) in a_row.iter().enumerate() {
                        let out_row = &mut local.data[r * kb..(r + 1) * kb];
                        crate::vector::axpy(a, b_row, out_row);
                    }
                }
                local
            })
            .collect();
        let mut out = Matrix::zeros(ka, kb);
        for p in partials {
            out.add_assign_mat(&p)?;
        }
        Ok(out)
    }

    /// Matrix product with the transpose of `self`: `self^T * rhs`.
    pub fn transpose_a_matmul(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "transpose_a_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros(self.cols, rhs.cols);
        // Accumulate rank-1 updates row by row; each pass touches contiguous
        // memory in both inputs and the output.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let b_row = rhs.row(i);
            for (r, &a) in a_row.iter().enumerate() {
                let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
                crate::vector::axpy(a, b_row, out_row);
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[T]) -> Result<Vec<T>, LinalgError> {
        if self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok(self
            .rows_iter()
            .map(|row| crate::vector::dot(row, x))
            .collect())
    }

    /// Maximum absolute element, or zero for an empty matrix.
    pub fn max_abs(&self) -> T {
        self.data
            .iter()
            .fold(T::ZERO, |acc, &v| Scalar::max(acc, v.abs()))
    }
}

/// Multiply a block of `lhs` rows (`lhs_rows.len() / k` of them) by the full
/// `rhs` (`k x n`, row-major) into `out_rows`.
///
/// This is the shared sequential kernel behind [`Matrix::matmul`] and each
/// parallel chunk of [`Matrix::par_matmul`].
fn matmul_rows<T: Scalar>(out_rows: &mut [T], lhs_rows: &[T], rhs: &[T], k: usize, n: usize) {
    debug_assert_eq!(lhs_rows.len() % k.max(1), 0);
    debug_assert_eq!(rhs.len(), k * n);
    let m = lhs_rows.len().checked_div(k).unwrap_or(0);
    for i in 0..m {
        let a_row = &lhs_rows[i * k..(i + 1) * k];
        let out_row = &mut out_rows[i * n..(i + 1) * n];
        for (p, &a) in a_row.iter().enumerate() {
            let b_row = &rhs[p * n..(p + 1) * n];
            crate::vector::axpy(a, b_row, out_row);
        }
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:?} ", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, vals: &[f64]) -> Matrix<f64> {
        Matrix::from_vec(rows, cols, vals.to_vec()).unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::<f32>::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 0.0);

        let m = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 1)], 3.0);

        assert!(Matrix::<f32>::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::<f64>::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn par_matmul_matches_sequential() {
        let a = Matrix::from_fn(64, 37, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(37, 29, |r, c| ((r * 17 + c * 3) % 11) as f64 - 5.0);
        let seq = a.matmul(&b).unwrap();
        let par = a.par_matmul(&b).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 6, |r, c| (r as f64 - c as f64) * 0.5);
        let b = Matrix::from_fn(5, 6, |r, c| (r * c) as f64 * 0.25 + 1.0);
        let fast = a.matmul_transpose_b(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_a_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(6, 4, |r, c| (r + 2 * c) as f64);
        let b = Matrix::from_fn(6, 3, |r, c| (r as f64) * 0.5 - c as f64);
        let fast = a.transpose_a_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn par_matmul_transpose_b_matches_sequential() {
        let a = Matrix::from_fn(80, 23, |r, c| ((r * 13 + c * 5) % 9) as f32 - 4.0);
        let b = Matrix::from_fn(64, 23, |r, c| ((r * 7 + c * 11) % 5) as f32 * 0.5);
        let seq = a.matmul_transpose_b(&b).unwrap();
        let par = a.par_matmul_transpose_b(&b).unwrap();
        assert_eq!(seq, par);
        assert!(a.par_matmul_transpose_b(&Matrix::zeros(3, 7)).is_err());
    }

    #[test]
    fn par_transpose_a_matmul_matches_sequential() {
        let a = Matrix::from_fn(100, 16, |r, c| ((r + c * 3) % 7) as f64 - 3.0);
        let b = Matrix::from_fn(100, 12, |r, c| ((r * 2 + c) % 5) as f64 * 0.25);
        let seq = a.transpose_a_matmul(&b).unwrap();
        let par = a.par_transpose_a_matmul(&b).unwrap();
        for (s, p) in seq.as_slice().iter().zip(par.as_slice()) {
            assert!((s - p).abs() < 1e-9);
        }
        assert!(a.par_transpose_a_matmul(&Matrix::zeros(3, 7)).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = mat(2, 3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let x = vec![2.0, 1.0, 0.0];
        assert_eq!(a.matvec(&x).unwrap(), vec![2.0, 1.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let mut a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = mat(2, 2, &[10.0, 20.0, 30.0, 40.0]);
        a.add_assign_mat(&b).unwrap();
        assert_eq!(a.as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        a.sub_assign_mat(&b).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[6.0, 12.0, 18.0, 24.0]);
        a.scale(0.0);
        assert_eq!(a.max_abs(), 0.0);

        let c = mat(1, 1, &[0.0]);
        assert!(a.clone().add_assign_mat(&c).is_err());
    }

    #[test]
    fn norms() {
        let a = mat(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn map_and_fill() {
        let mut a = mat(2, 2, &[1.0, -2.0, 3.0, -4.0]);
        let b = a.map(|v| v.abs());
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        a.map_inplace(|v| v * 2.0);
        assert_eq!(a.as_slice(), &[2.0, -4.0, 6.0, -8.0]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn zero_sized_matmul() {
        let a = Matrix::<f64>::zeros(0, 3);
        let b = Matrix::<f64>::zeros(3, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (0, 2));
        let a = Matrix::<f64>::zeros(2, 0);
        let b = Matrix::<f64>::zeros(0, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[0.0; 4]);
    }
}
