//! Row-major dense matrix; every matrix product routes through the packed
//! GEMM layer in [`crate::kernel`].
//!
//! The methods here own shape checking, output sizing, and the granularity
//! decision (inline vs. pool); the kernel module owns packing, microkernel
//! dispatch (`FV_GEMM_KERNEL`), and epilogue fusion. All products share one
//! canonical accumulation order — each output element sums its `k` terms in
//! ascending reduction order through a single accumulator, unfused mul then
//! add — so results are bitwise-identical across kernels, thread widths,
//! and the packed/fallback path split (DESIGN.md §15).

use crate::error::LinalgError;
use crate::kernel::{self, GemmScratch, Operand};
use crate::scalar::Scalar;
use fv_runtime::granularity::{go_parallel, OpCounter};
use rayon::prelude::*;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Minimum number of rows in the output before a product fans out to the
/// Rayon pool; below this the parallel overhead dominates.
const PAR_MIN_ROWS: usize = 32;

static OP_MATMUL: OpCounter = OpCounter::new("linalg.matmul");
static OP_MATMUL_TB: OpCounter = OpCounter::new("linalg.matmul_transpose_b");
static OP_TA_MATMUL: OpCounter = OpCounter::new("linalg.transpose_a_matmul");
static OP_COL_SUMS: OpCounter = OpCounter::new("linalg.col_sums");
static OP_BIAS_ACT: OpCounter = OpCounter::new("linalg.bias_act");
static OP_ELEMENTWISE: OpCounter = OpCounter::new("linalg.elementwise");

/// Record the dispatch decision for a kernel call and return whether it
/// should fan out to the pool. `rows < PAR_MIN_ROWS` always stays inline
/// (and is recorded as sequential work); larger calls go parallel when their
/// estimated scalar-op count clears the global min-work threshold.
#[inline]
fn par_dispatch(counter: &'static OpCounter, rows: usize, work: usize) -> bool {
    let big = rows >= PAR_MIN_ROWS;
    go_parallel(counter, if big { work } else { 0 }) && big
}

/// A dense, row-major matrix over an [`Scalar`] element type.
///
/// The layout is `data[r * cols + c]`; rows are contiguous, which is what the
/// inner `ikj` multiplication loop and the per-sample neural-network kernels
/// want.
#[derive(Clone, PartialEq)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Create a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the backing row-major storage.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the backing row-major storage.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the matrix, returning its row-major storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow row `r` as a contiguous slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[T] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a contiguous slice.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Return the transpose of this matrix.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(T) -> T + Sync) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self += other`, returning an error on shape mismatch.
    pub fn add_assign_mat(&mut self, other: &Self) -> Result<(), LinalgError> {
        self.zip_assign(other, "add_assign", |a, b| a + b)
    }

    /// `self -= other`, returning an error on shape mismatch.
    pub fn sub_assign_mat(&mut self, other: &Self) -> Result<(), LinalgError> {
        self.zip_assign(other, "sub_assign", |a, b| a - b)
    }

    /// `self += alpha * other` (matrix axpy).
    pub fn axpy(&mut self, alpha: T, other: &Self) -> Result<(), LinalgError> {
        self.zip_assign(other, "axpy", |a, b| a + alpha * b)
    }

    fn zip_assign(
        &mut self,
        other: &Self,
        op: &'static str,
        f: impl Fn(T, T) -> T,
    ) -> Result<(), LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = f(*a, b);
        }
        Ok(())
    }

    /// Multiply every element by `alpha`.
    pub fn scale(&mut self, alpha: T) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(T::ZERO);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        self.data
            .iter()
            .map(|&v| v * v)
            .fold(T::ZERO, |a, b| a + b)
            .sqrt()
    }

    /// Matrix product `self * rhs`.
    ///
    /// Allocating wrapper over [`Self::matmul_into`]; same packed-GEMM
    /// route, same bitwise result.
    pub fn matmul(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros(0, 0);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Parallel matrix product `self * rhs`, splitting output rows across the
    /// Rayon pool. Falls back to the sequential kernel for small outputs.
    pub fn par_matmul(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "par_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros(0, 0);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product with the transpose of `rhs`: `self * rhs^T`.
    ///
    /// Allocating wrapper over [`Self::matmul_transpose_b_into`]. The
    /// transposition is absorbed during panel packing; the microkernel only
    /// ever sees one layout.
    pub fn matmul_transpose_b(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_transpose_b",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros(0, 0);
        self.matmul_transpose_b_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Parallel `self * rhs^T`, fanning output rows across the Rayon pool.
    /// Falls back to the sequential kernel for small batches.
    pub fn par_matmul_transpose_b(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "par_matmul_transpose_b",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros(0, 0);
        self.matmul_transpose_b_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Parallel `self^T * rhs`. Allocating wrapper over
    /// [`Self::transpose_a_matmul_into`]; parallelism only ever splits
    /// output rows (never the reduction), so the result is bitwise
    /// identical at any thread count.
    pub fn par_transpose_a_matmul(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "par_transpose_a_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros(0, 0);
        let mut scratch = GemmScratch::default();
        self.transpose_a_matmul_into(rhs, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Matrix product with the transpose of `self`: `self^T * rhs`.
    /// Allocating wrapper over [`Self::transpose_a_matmul_into`].
    pub fn transpose_a_matmul(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "transpose_a_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros(0, 0);
        let mut scratch = GemmScratch::default();
        self.transpose_a_matmul_into(rhs, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Matrix-vector product `out = self * x`, reusing `out`'s allocation.
    ///
    /// Deliberately *not* routed through the GEMM seam: an `n = 1` product
    /// would pack `k` right-hand values to feed one lane of every tile,
    /// pure overhead. The historical 4-lane [`crate::vector::dot`] kernel
    /// is already optimal for this shape and keeps `matvec`'s accumulation
    /// order unchanged.
    pub fn matvec_into(&self, x: &[T], out: &mut Vec<T>) -> Result<(), LinalgError> {
        if self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        out.clear();
        out.extend(self.rows_iter().map(|row| crate::vector::dot(row, x)));
        Ok(())
    }

    /// Matrix-vector product `self * x`. Allocating wrapper over
    /// [`Self::matvec_into`].
    pub fn matvec(&self, x: &[T]) -> Result<Vec<T>, LinalgError> {
        let mut out = Vec::new();
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// Maximum absolute element, or zero for an empty matrix.
    pub fn max_abs(&self) -> T {
        self.data
            .iter()
            .fold(T::ZERO, |acc, &v| Scalar::max(acc, v.abs()))
    }

    /// Reshape in place, reusing the backing allocation (the capacity only
    /// grows). When `cols` is unchanged, existing rows keep their contents
    /// and new rows are zero; when `cols` changes, element positions are not
    /// preserved and the caller must overwrite the matrix fully. This is the
    /// primitive the workspace layer uses to adapt persistent buffers to a
    /// ragged final batch without heap traffic.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, T::ZERO);
    }

    /// `out = self * rhs`, reusing `out`'s allocation. Allocates a
    /// throwaway pack workspace; hot-path callers use
    /// [`Self::matmul_into_with`] and hold a [`GemmScratch`].
    pub fn matmul_into(&self, rhs: &Self, out: &mut Self) -> Result<(), LinalgError> {
        self.matmul_into_with(rhs, out, &mut GemmScratch::default())
    }

    /// `out = self * rhs`, reusing `out`'s allocation and `scratch`'s pack
    /// buffers (zero allocations once both are warm).
    ///
    /// The per-element accumulation order is the canonical ascending-`k`
    /// chain, a pure function of the shapes — identical across
    /// [`Self::matmul`] / [`Self::par_matmul`], every `FV_GEMM_KERNEL`
    /// setting, and any thread count. The granularity policy only decides
    /// whether the fixed panel geometry runs inline or on the pool.
    pub fn matmul_into_with(
        &self,
        rhs: &Self,
        out: &mut Self,
        scratch: &mut GemmScratch<T>,
    ) -> Result<(), LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_into",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        out.resize(m, n);
        if m == 0 || n == 0 {
            return Ok(());
        }
        if k == 0 {
            out.fill_zero();
            return Ok(());
        }
        let parallel = par_dispatch(&OP_MATMUL, m, m * k * n);
        kernel::gemm(
            m,
            n,
            k,
            Operand::normal(&self.data, k),
            Operand::normal(&rhs.data, n),
            &mut out.data,
            scratch,
            parallel,
        );
        Ok(())
    }

    /// `out = self * rhs^T`, reusing `out`'s allocation. Allocates a
    /// throwaway pack workspace; hot-path callers use
    /// [`Self::matmul_transpose_b_into_with`].
    pub fn matmul_transpose_b_into(&self, rhs: &Self, out: &mut Self) -> Result<(), LinalgError> {
        self.matmul_transpose_b_into_with(rhs, out, &mut GemmScratch::default())
    }

    /// `out = self * rhs^T`, reusing `out` and `scratch`. The transposition
    /// is absorbed while packing `rhs` into column panels; accumulation
    /// order is the same canonical chain as every other product.
    pub fn matmul_transpose_b_into_with(
        &self,
        rhs: &Self,
        out: &mut Self,
        scratch: &mut GemmScratch<T>,
    ) -> Result<(), LinalgError> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_transpose_b_into",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        out.resize(m, n);
        if m == 0 || n == 0 {
            return Ok(());
        }
        if k == 0 {
            out.fill_zero();
            return Ok(());
        }
        let parallel = par_dispatch(&OP_MATMUL_TB, m, m * k * n);
        kernel::gemm(
            m,
            n,
            k,
            Operand::normal(&self.data, k),
            Operand::transposed(&rhs.data, k),
            &mut out.data,
            scratch,
            parallel,
        );
        Ok(())
    }

    /// Fused layer-forward kernel: `pre = self * rhs^T + bias` (bias
    /// broadcast across rows) and `out = act(pre)`, both into caller-provided
    /// buffers. Allocates a throwaway pack workspace; hot-path callers use
    /// [`Self::matmul_bias_act_into_with`].
    pub fn matmul_bias_act_into(
        &self,
        rhs: &Self,
        bias: &[T],
        act: impl Fn(T) -> T + Sync,
        pre: &mut Self,
        out: &mut Self,
    ) -> Result<(), LinalgError> {
        self.matmul_bias_act_into_with(rhs, bias, act, Some(pre), out, &mut GemmScratch::default())
    }

    /// Fused forward kernel with the bias+activation epilogue applied during
    /// GEMM tile write-back (one sweep over the batch, zero allocation once
    /// warm).
    ///
    /// With `pre = Some(p)`, `p` receives the pre-activation `self * rhs^T +
    /// bias` and `out` receives its activation — training keeps both. With
    /// `pre = None`, `out` receives the activation directly — the inference
    /// path, which previously needed a separate product plus an in-place
    /// bias/act sweep. Values are identical either way (and to the historic
    /// two-pass form): each element's product is fully summed in canonical
    /// order, then the bias is added, then the activation applied.
    pub fn matmul_bias_act_into_with(
        &self,
        rhs: &Self,
        bias: &[T],
        act: impl Fn(T) -> T + Sync,
        pre: Option<&mut Self>,
        out: &mut Self,
        scratch: &mut GemmScratch<T>,
    ) -> Result<(), LinalgError> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_bias_act",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if bias.len() != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_bias_act",
                lhs: rhs.shape(),
                rhs: (bias.len(), 1),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        out.resize(m, n);
        let (c, aux) = match pre {
            Some(p) => {
                p.resize(m, n);
                (&mut p.data[..], Some(&mut out.data[..]))
            }
            None => (&mut out.data[..], None),
        };
        if m == 0 || n == 0 {
            return Ok(());
        }
        let parallel = par_dispatch(&OP_BIAS_ACT, m, m * k * n);
        kernel::gemm_bias_act(
            m,
            n,
            k,
            Operand::normal(&self.data, k),
            Operand::transposed(&rhs.data, k),
            bias,
            &act,
            c,
            aux,
            scratch,
            parallel,
        );
        Ok(())
    }

    /// In-place tail of the fused forward for inference: `self[r][c] =
    /// act(self[r][c] + bias[c])`. Pair with [`Self::matmul_transpose_b_into`]
    /// when the pre-activation does not need to be kept.
    pub fn bias_act_inplace(
        &mut self,
        bias: &[T],
        act: impl Fn(T) -> T + Sync,
    ) -> Result<(), LinalgError> {
        if bias.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "bias_act_inplace",
                lhs: self.shape(),
                rhs: (bias.len(), 1),
            });
        }
        let (m, n) = self.shape();
        let fuse = |row: &mut [T]| {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v = act(*v + b);
            }
        };
        if par_dispatch(&OP_BIAS_ACT, m, m * n) {
            self.data.par_chunks_mut(n).for_each(fuse);
        } else {
            self.data.chunks_mut(n).for_each(fuse);
        }
        Ok(())
    }

    /// Elementwise `self[i] = f(self[i], other[i])` with granularity-aware
    /// dispatch. `f` must be a pure per-element function, which makes the
    /// result independent of how the elements are chunked.
    pub fn zip_apply(
        &mut self,
        other: &Self,
        f: impl Fn(T, T) -> T + Sync,
    ) -> Result<(), LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "zip_apply",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        if par_dispatch(&OP_ELEMENTWISE, self.rows, self.data.len()) {
            self.data
                .par_iter_mut()
                .zip(other.data.par_iter())
                .for_each(|(a, &b)| *a = f(*a, b));
        } else {
            for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
                *a = f(*a, b);
            }
        }
        Ok(())
    }

    /// `out = self^T * rhs`, reusing `out` and `scratch`'s pack buffers.
    ///
    /// The transposition is absorbed while packing `self` into row panels
    /// (the packed layout wants `A` column-major anyway, so this variant
    /// packs *faster* than the untransposed one). Unlike the historical
    /// blocked implementation there are no per-block partial products to
    /// recombine: every output element owns a single ascending-order chain
    /// over the reduction, and parallelism splits output rows only — so
    /// results are bitwise-identical to [`Self::par_transpose_a_matmul`] at
    /// any thread count and under every `FV_GEMM_KERNEL` setting.
    pub fn transpose_a_matmul_into(
        &self,
        rhs: &Self,
        out: &mut Self,
        scratch: &mut GemmScratch<T>,
    ) -> Result<(), LinalgError> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "transpose_a_matmul_into",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        out.resize(m, n);
        if m == 0 || n == 0 {
            return Ok(());
        }
        if k == 0 {
            out.fill_zero();
            return Ok(());
        }
        let parallel = par_dispatch(&OP_TA_MATMUL, m, m * k * n);
        kernel::gemm(
            m,
            n,
            k,
            Operand::transposed(&self.data, self.cols),
            Operand::normal(&rhs.data, n),
            &mut out.data,
            scratch,
            parallel,
        );
        Ok(())
    }

    /// Column sums (`out[c] = Σ_r self[r][c]`) into a caller-provided vector,
    /// using `scratch` for per-leaf partials.
    ///
    /// Replicates the runtime's deterministic reduction exactly: rows are cut
    /// into the same fixed leaves `fv_runtime::chunk_size` would produce,
    /// each leaf sums its rows in order, and `tree_combine` folds the
    /// leaves along the facade's split tree — so this is bitwise-identical
    /// to the historical `par_chunks(cols).fold(..).reduce(..)` bias
    /// gradient at any thread count, inline or on the pool.
    pub fn col_sums_into(&self, out: &mut Vec<T>, scratch: &mut Vec<T>) {
        let cols = self.cols;
        out.clear();
        out.resize(cols, T::ZERO);
        if self.rows == 0 || cols == 0 {
            return;
        }
        let chunk = fv_runtime::chunk_size(self.rows, 1, usize::MAX);
        let n_leaves = self.rows.div_ceil(chunk);
        scratch.clear();
        scratch.resize(n_leaves * cols, T::ZERO);
        let fill_leaf = |li: usize, acc: &mut [T]| {
            let r0 = li * chunk;
            let r1 = (r0 + chunk).min(self.rows);
            for row in self.data[r0 * cols..r1 * cols].chunks_exact(cols) {
                for (a, &v) in acc.iter_mut().zip(row) {
                    *a += v;
                }
            }
        };
        if par_dispatch(&OP_COL_SUMS, self.rows, self.rows * cols) {
            scratch
                .par_chunks_mut(cols)
                .enumerate()
                .for_each(|(li, acc)| fill_leaf(li, acc));
        } else {
            for (li, acc) in scratch.chunks_mut(cols).enumerate() {
                fill_leaf(li, acc);
            }
        }
        tree_combine(scratch, 0, n_leaves, cols);
        out.copy_from_slice(&scratch[..cols]);
    }
}

/// Combine per-leaf partial column sums along the same binary tree the
/// `rayon` facade's `drive_reduce` uses: a node over `n` leaves splits into
/// its first `n / 2` and remaining leaves, and the right child's result is
/// added element-wise into the left child's buffer. After the call the root
/// sum sits in leaf slot `lo`. Matching the facade's tree exactly is what
/// keeps [`Matrix::col_sums_into`] bitwise-identical to the historical
/// `par_chunks(width).fold(..).reduce(..)` bias-gradient reduction.
fn tree_combine<T: Scalar>(buf: &mut [T], lo: usize, n: usize, cols: usize) {
    if n <= 1 {
        return;
    }
    let nl = n / 2;
    tree_combine(buf, lo, nl, cols);
    tree_combine(buf, lo + nl, n - nl, cols);
    let (left, right) = buf.split_at_mut((lo + nl) * cols);
    let dst = &mut left[lo * cols..lo * cols + cols];
    let src = &right[..cols];
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:?} ", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, vals: &[f64]) -> Matrix<f64> {
        Matrix::from_vec(rows, cols, vals.to_vec()).unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::<f32>::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 0.0);

        let m = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 1)], 3.0);

        assert!(Matrix::<f32>::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::<f64>::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn par_matmul_matches_sequential() {
        let a = Matrix::from_fn(64, 37, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(37, 29, |r, c| ((r * 17 + c * 3) % 11) as f64 - 5.0);
        let seq = a.matmul(&b).unwrap();
        let par = a.par_matmul(&b).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 6, |r, c| (r as f64 - c as f64) * 0.5);
        let b = Matrix::from_fn(5, 6, |r, c| (r * c) as f64 * 0.25 + 1.0);
        let fast = a.matmul_transpose_b(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_a_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(6, 4, |r, c| (r + 2 * c) as f64);
        let b = Matrix::from_fn(6, 3, |r, c| (r as f64) * 0.5 - c as f64);
        let fast = a.transpose_a_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn par_matmul_transpose_b_matches_sequential() {
        let a = Matrix::from_fn(80, 23, |r, c| ((r * 13 + c * 5) % 9) as f32 - 4.0);
        let b = Matrix::from_fn(64, 23, |r, c| ((r * 7 + c * 11) % 5) as f32 * 0.5);
        let seq = a.matmul_transpose_b(&b).unwrap();
        let par = a.par_matmul_transpose_b(&b).unwrap();
        assert_eq!(seq, par);
        assert!(a.par_matmul_transpose_b(&Matrix::zeros(3, 7)).is_err());
    }

    #[test]
    fn par_transpose_a_matmul_matches_sequential() {
        let a = Matrix::from_fn(100, 16, |r, c| ((r + c * 3) % 7) as f64 - 3.0);
        let b = Matrix::from_fn(100, 12, |r, c| ((r * 2 + c) % 5) as f64 * 0.25);
        let seq = a.transpose_a_matmul(&b).unwrap();
        let par = a.par_transpose_a_matmul(&b).unwrap();
        for (s, p) in seq.as_slice().iter().zip(par.as_slice()) {
            assert!((s - p).abs() < 1e-9);
        }
        assert!(a.par_transpose_a_matmul(&Matrix::zeros(3, 7)).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = mat(2, 3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let x = vec![2.0, 1.0, 0.0];
        assert_eq!(a.matvec(&x).unwrap(), vec![2.0, 1.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let mut a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = mat(2, 2, &[10.0, 20.0, 30.0, 40.0]);
        a.add_assign_mat(&b).unwrap();
        assert_eq!(a.as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        a.sub_assign_mat(&b).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[6.0, 12.0, 18.0, 24.0]);
        a.scale(0.0);
        assert_eq!(a.max_abs(), 0.0);

        let c = mat(1, 1, &[0.0]);
        assert!(a.clone().add_assign_mat(&c).is_err());
    }

    #[test]
    fn norms() {
        let a = mat(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn map_and_fill() {
        let mut a = mat(2, 2, &[1.0, -2.0, 3.0, -4.0]);
        let b = a.map(|v| v.abs());
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        a.map_inplace(|v| v * 2.0);
        assert_eq!(a.as_slice(), &[2.0, -4.0, 6.0, -8.0]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn matmul_into_matches_matmul_and_reuses_buffer() {
        let a = Matrix::from_fn(40, 17, |r, c| ((r * 5 + c * 3) % 7) as f64 - 3.0);
        let b = Matrix::from_fn(17, 11, |r, c| ((r + c * 2) % 5) as f64 * 0.5);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        // A second, smaller product reuses the same buffer.
        let a2 = Matrix::from_fn(3, 17, |r, c| (r + c) as f64);
        a2.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a2.matmul(&b).unwrap());
        assert!(a.matmul_into(&Matrix::zeros(3, 3), &mut out).is_err());
    }

    #[test]
    fn matmul_transpose_b_into_matches_allocating_kernel() {
        let a = Matrix::from_fn(48, 23, |r, c| ((r * 13 + c * 5) % 9) as f32 - 4.0);
        let b = Matrix::from_fn(31, 23, |r, c| ((r * 7 + c * 11) % 5) as f32 * 0.5);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_transpose_b_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul_transpose_b(&b).unwrap());
    }

    #[test]
    fn transpose_a_matmul_into_is_bitwise_stable() {
        // Both above and below the PAR_MIN_ROWS geometry switch.
        for rows in [12usize, 100] {
            let a = Matrix::from_fn(rows, 16, |r, c| ((r + c * 3) % 7) as f32 / 3.0 - 0.4);
            let b = Matrix::from_fn(rows, 12, |r, c| ((r * 2 + c) % 5) as f32 * 0.25 - 0.3);
            let reference = a.par_transpose_a_matmul(&b).unwrap();
            let mut out = Matrix::zeros(0, 0);
            let mut scratch = GemmScratch::default();
            a.transpose_a_matmul_into(&b, &mut out, &mut scratch).unwrap();
            for (x, y) in out.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn col_sums_into_matches_facade_fold_reduce() {
        let m = Matrix::from_fn(137, 9, |r, c| ((r * 31 + c * 17) % 23) as f32 * 0.37 - 4.0);
        let w = m.cols();
        // The historical bias-gradient reduction this kernel replaces.
        let reference: Vec<f32> = m
            .as_slice()
            .par_chunks(w)
            .fold(
                || vec![0.0f32; w],
                |mut acc, row| {
                    for (a, &g) in acc.iter_mut().zip(row) {
                        *a += g;
                    }
                    acc
                },
            )
            .reduce(
                || vec![0.0f32; w],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        m.col_sums_into(&mut out, &mut scratch);
        assert_eq!(out.len(), w);
        for (x, y) in out.iter().zip(&reference) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_bias_act_fuses_three_passes() {
        let x = Matrix::from_fn(37, 8, |r, c| ((r * 3 + c) % 11) as f32 * 0.2 - 1.0);
        let w = Matrix::from_fn(6, 8, |r, c| ((r + c * 5) % 7) as f32 * 0.3 - 0.9);
        let bias: Vec<f32> = (0..6).map(|j| j as f32 * 0.1 - 0.2).collect();
        let act = |v: f32| if v > 0.0 { v } else { 0.01 * v };
        let mut pre = Matrix::zeros(0, 0);
        let mut out = Matrix::zeros(0, 0);
        x.matmul_bias_act_into(&w, &bias, act, &mut pre, &mut out)
            .unwrap();
        let mut want_pre = x.matmul_transpose_b(&w).unwrap();
        for r in 0..want_pre.rows() {
            for (v, &b) in want_pre.row_mut(r).iter_mut().zip(&bias) {
                *v += b;
            }
        }
        assert_eq!(pre, want_pre);
        assert_eq!(out, want_pre.map(act));
        // Inference variant: act(x·Wᵀ + b) in place.
        let mut inplace = Matrix::zeros(0, 0);
        x.matmul_transpose_b_into(&w, &mut inplace).unwrap();
        inplace.bias_act_inplace(&bias, act).unwrap();
        assert_eq!(inplace, out);
        assert!(x
            .matmul_bias_act_into(&w, &[0.0; 3], act, &mut pre, &mut out)
            .is_err());
    }

    #[test]
    fn zip_apply_is_elementwise() {
        let mut a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = mat(2, 2, &[10.0, 20.0, 30.0, 40.0]);
        a.zip_apply(&b, |x, y| x * y).unwrap();
        assert_eq!(a.as_slice(), &[10.0, 40.0, 90.0, 160.0]);
        assert!(a.zip_apply(&mat(1, 1, &[0.0]), |x, _| x).is_err());
    }

    #[test]
    fn resize_keeps_rows_when_cols_unchanged() {
        let mut m = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        m.resize(3, 3);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.0, 0.0, 0.0]);
        m.resize(1, 3);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn zero_sized_matmul() {
        let a = Matrix::<f64>::zeros(0, 3);
        let b = Matrix::<f64>::zeros(3, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (0, 2));
        let a = Matrix::<f64>::zeros(2, 0);
        let b = Matrix::<f64>::zeros(0, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[0.0; 4]);
    }
}
