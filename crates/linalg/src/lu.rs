//! LU decomposition with partial pivoting.
//!
//! Used by the local radial-basis-function reconstructor to solve small
//! (≲ 32×32) dense systems with polynomial augmentation — those systems are
//! symmetric but *not* positive definite, so Cholesky does not apply.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// A factorization `P * A = L * U` of a square matrix.
///
/// `L` is unit lower triangular, `U` upper triangular; both are packed into a
/// single matrix. `perm[i]` gives the original row of `A` that ended up in
/// factored row `i`.
#[derive(Debug, Clone)]
pub struct LuDecomposition<T: Scalar> {
    lu: Matrix<T>,
    perm: Vec<usize>,
    /// Sign of the permutation (+1 / -1), needed for the determinant.
    perm_sign: T,
}

impl<T: Scalar> LuDecomposition<T> {
    /// Factor `a`, consuming a copy of it.
    ///
    /// Returns [`LinalgError::Singular`] if a pivot column is numerically
    /// zero (max |entry| ≤ `n * EPSILON * max_abs(a)`).
    pub fn new(a: &Matrix<T>) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = T::ONE;
        let tol = T::from_usize(n.max(1)) * T::EPSILON * a.max_abs();

        for k in 0..n {
            // Partial pivot: pick the row with the largest |entry| in column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in k + 1..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= tol {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                swap_rows(&mut lu, k, pivot_row);
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for r in k + 1..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                for c in k + 1..n {
                    let u = lu[(k, c)];
                    lu[(r, c)] -= factor * u;
                }
            }
        }
        Ok(Self {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b` for a single right-hand side.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution with the permuted right-hand side (L y = P b).
        let mut x: Vec<T> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 0..n {
            for j in 0..i {
                let l = self.lu[(i, j)];
                let xj = x[j];
                x[i] -= l * xj;
            }
        }
        // Back substitution (U x = y).
        for i in (0..n).rev() {
            for j in i + 1..n {
                let u = self.lu[(i, j)];
                let xj = x[j];
                x[i] -= u * xj;
            }
            x[i] /= self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> T {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Invert the original matrix (column-by-column solve).
    pub fn inverse(&self) -> Result<Matrix<T>, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![T::ZERO; n];
        for c in 0..n {
            e[c] = T::ONE;
            let col = self.solve(&e)?;
            for (r, v) in col.into_iter().enumerate() {
                inv[(r, c)] = v;
            }
            e[c] = T::ZERO;
        }
        Ok(inv)
    }
}

fn swap_rows<T: Scalar>(m: &mut Matrix<T>, a: usize, b: usize) {
    if a == b {
        return;
    }
    let cols = m.cols();
    let data = m.as_mut_slice();
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let (head, tail) = data.split_at_mut(hi * cols);
    head[lo * cols..(lo + 1) * cols].swap_with_slice(&mut tail[..cols]);
}

/// Convenience: solve `A x = b` in one call.
pub fn solve<T: Scalar>(a: &Matrix<T>, b: &[T]) -> Result<Vec<T>, LinalgError> {
    LuDecomposition::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(n: usize, vals: &[f64]) -> Matrix<f64> {
        Matrix::from_vec(n, n, vals.to_vec()).unwrap()
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let a = mat(2, &[2.0, 1.0, 1.0, 3.0]);
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = mat(2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_rejects_wrong_rhs_len() {
        let a = mat(2, &[2.0, 0.0, 0.0, 2.0]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn determinant_with_pivoting() {
        // Requires a row swap: det = -2.
        let a = mat(2, &[0.0, 1.0, 2.0, 3.0]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_reconstructs_identity() {
        let a = mat(3, &[4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0]);
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((prod[(r, c)] - expect).abs() < 1e-10, "at ({r},{c})");
            }
        }
    }

    #[test]
    fn random_well_conditioned_systems_solve_accurately() {
        // Deterministic pseudo-random diagonally dominant systems.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n in [1usize, 2, 5, 12, 24] {
            let mut a = Matrix::<f64>::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    a[(r, c)] = next();
                }
                a[(r, r)] += n as f64; // diagonal dominance => well conditioned
            }
            let x_true: Vec<f64> = (0..n).map(|_| next()).collect();
            let b = a.matvec(&x_true).unwrap();
            let x = solve(&a, &b).unwrap();
            for i in 0..n {
                assert!((x[i] - x_true[i]).abs() < 1e-9, "n={n}, i={i}");
            }
        }
    }
}
