//! Machine-readable experiment output.
//!
//! The bench binaries print aligned text tables for humans; this module
//! writes the same rows as CSV so the paper's plots can be regenerated
//! with any external plotting tool (`exp_* --csv` flows through here).

use crate::experiment::{DepthRow, MethodRow, VariantSeries};
use crate::timesteps::ReplayRow;
use crate::upscale::UpscaleRow;
use std::io::{BufWriter, Write};

/// Serialize method-sweep rows (Figs. 9–10).
pub fn method_rows_csv<W: Write>(rows: &[MethodRow], w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "method,fraction,snr_db,seconds")?;
    for r in rows {
        writeln!(w, "{},{},{},{}", r.method, r.fraction, csv_f64(r.snr), r.seconds)?;
    }
    w.flush()
}

/// Serialize depth-sweep rows (Fig. 6).
pub fn depth_rows_csv<W: Write>(rows: &[DepthRow], w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "hidden_layers,snr_db,train_seconds")?;
    for r in rows {
        writeln!(w, "{},{},{}", r.depth, csv_f64(r.snr), r.train_seconds)?;
    }
    w.flush()
}

/// Serialize variant series (Figs. 7, 8, 14): one row per (label, fraction).
pub fn variant_series_csv<W: Write>(series: &[VariantSeries], w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "label,fraction,snr_db,train_seconds")?;
    for s in series {
        for &(fraction, snr) in &s.points {
            writeln!(w, "{},{},{},{}", s.label, fraction, csv_f64(snr), s.train_seconds)?;
        }
    }
    w.flush()
}

/// Serialize replay rows (Fig. 11); `label` distinguishes the curves.
pub fn replay_rows_csv<W: Write>(
    labeled: &[(&str, &[ReplayRow])],
    w: W,
) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "label,t,snr_db,fine_tune_loss")?;
    for (label, rows) in labeled {
        for r in *rows {
            let ft = r
                .fine_tune_loss
                .map(|l| l.to_string())
                .unwrap_or_default();
            writeln!(w, "{},{},{},{}", label, r.t, csv_f64(r.snr), ft)?;
        }
    }
    w.flush()
}

/// Serialize upscale rows (Fig. 13).
pub fn upscale_rows_csv<W: Write>(rows: &[UpscaleRow], w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "fraction,snr_linear,snr_full,snr_transferred")?;
    for r in rows {
        writeln!(
            w,
            "{},{},{},{}",
            r.fraction,
            csv_f64(r.snr_linear),
            csv_f64(r.snr_full),
            csv_f64(r.snr_transferred)
        )?;
    }
    w.flush()
}

/// Serialize a loss history (Fig. 12).
pub fn history_csv<W: Write>(history: &fv_nn::train::History, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "epoch,train_loss,val_loss,learning_rate")?;
    for (e, &loss) in history.epoch_loss.iter().enumerate() {
        let val = history
            .val_loss
            .get(e)
            .map(|v| v.to_string())
            .unwrap_or_default();
        let lr = history
            .learning_rates
            .get(e)
            .map(|v| v.to_string())
            .unwrap_or_default();
        writeln!(w, "{e},{loss},{val},{lr}")?;
    }
    w.flush()
}

/// NaN/inf-safe float formatting (empty cell for NaN, `inf` spelled out).
fn csv_f64(v: f64) -> String {
    if v.is_nan() {
        String::new()
    } else if v.is_infinite() {
        if v > 0.0 { "inf".into() } else { "-inf".into() }
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_rows_have_header_and_rows() {
        let rows = vec![
            MethodRow {
                method: "fcnn".into(),
                fraction: 0.01,
                snr: 27.5,
                seconds: 0.2,
            },
            MethodRow {
                method: "linear".into(),
                fraction: 0.01,
                snr: f64::NAN,
                seconds: 1.5,
            },
        ];
        let mut buf = Vec::new();
        method_rows_csv(&rows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "method,fraction,snr_db,seconds");
        assert_eq!(lines[1], "fcnn,0.01,27.5,0.2");
        assert_eq!(lines[2], "linear,0.01,,1.5"); // NaN -> empty cell
    }

    #[test]
    fn depth_and_upscale_rows() {
        let mut buf = Vec::new();
        depth_rows_csv(
            &[DepthRow {
                depth: 5,
                snr: 28.0,
                train_seconds: 12.5,
            }],
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("5,28,12.5"));

        let mut buf = Vec::new();
        upscale_rows_csv(
            &[UpscaleRow {
                fraction: 0.02,
                snr_linear: 15.0,
                snr_full: 20.0,
                snr_transferred: 19.0,
            }],
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("0.02,15,20,19"));
    }

    #[test]
    fn variant_series_flattens_points() {
        let s = VariantSeries {
            label: "1%+5%".into(),
            points: vec![(0.01, 20.0), (0.05, 25.0)],
            train_seconds: 3.0,
        };
        let mut buf = Vec::new();
        variant_series_csv(&[s], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("1%+5%,0.05,25,3"));
    }

    #[test]
    fn replay_rows_and_history() {
        let rows = vec![ReplayRow {
            t: 3,
            snr: 22.0,
            fine_tune_loss: Some(0.01),
        }];
        let mut buf = Vec::new();
        replay_rows_csv(&[("tuned", rows.as_slice())], &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("tuned,3,22,0.01"));

        let h = fv_nn::train::History {
            epoch_loss: vec![1.0, 0.5],
            learning_rates: vec![0.001, 0.001],
            ..Default::default()
        };
        let mut buf = Vec::new();
        history_csv(&h, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("0,1,,0.001"));
        assert!(text.contains("1,0.5,,0.001"));
    }

    #[test]
    fn inf_formatting() {
        assert_eq!(csv_f64(f64::INFINITY), "inf");
        assert_eq!(csv_f64(f64::NEG_INFINITY), "-inf");
        assert_eq!(csv_f64(1.25), "1.25");
        assert_eq!(csv_f64(f64::NAN), "");
    }
}
