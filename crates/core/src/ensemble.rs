//! Uncertainty-aware reconstruction via deep ensembles — the paper's
//! future-work item (3) in Sec. V, implemented.
//!
//! An [`EnsemblePipeline`] trains `E` independent FCNNs that differ only
//! in their initialization/shuffling seeds (the standard deep-ensembles
//! recipe of Lakshminarayanan et al.). Reconstruction returns both the
//! ensemble-mean field and a per-voxel standard-deviation field — a
//! practical error proxy: where the members disagree, the reconstruction
//! is untrustworthy (typically far from any sample, or across a feature
//! the sampling missed).

use crate::error::CoreError;
use crate::pipeline::{FcnnPipeline, FineTuneSpec, PipelineConfig};
use fv_field::{Grid3, ScalarField};
use fv_sampling::PointCloud;

/// A reconstruction with a per-voxel uncertainty estimate.
#[derive(Debug, Clone)]
pub struct UncertainReconstruction {
    /// Ensemble-mean reconstruction.
    pub mean: ScalarField,
    /// Per-voxel standard deviation across ensemble members.
    pub std_dev: ScalarField,
}

/// An ensemble of independently trained reconstruction pipelines.
#[derive(Debug, Clone)]
pub struct EnsemblePipeline {
    members: Vec<FcnnPipeline>,
}

impl EnsemblePipeline {
    /// Train `size` members on the same timestep with decorrelated seeds.
    pub fn train(
        field: &ScalarField,
        config: &PipelineConfig,
        size: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if size == 0 {
            return Err(CoreError::BadConfig("ensemble size must be >= 1".into()));
        }
        let mut members = Vec::with_capacity(size);
        for e in 0..size {
            let member_seed = seed ^ ((e as u64 + 1).wrapping_mul(0x9E37_79B9));
            members.push(FcnnPipeline::train(field, config, member_seed)?);
        }
        Ok(Self { members })
    }

    /// Number of ensemble members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Borrow the members (e.g. to persist them individually).
    pub fn members(&self) -> &[FcnnPipeline] {
        &self.members
    }

    /// Fine-tune every member on a new timestep.
    pub fn fine_tune(
        &mut self,
        field: &ScalarField,
        spec: &FineTuneSpec,
    ) -> Result<(), CoreError> {
        for (e, member) in self.members.iter_mut().enumerate() {
            let mut member_spec = spec.clone();
            member_spec.seed ^= e as u64;
            member.fine_tune(field, &member_spec)?;
        }
        Ok(())
    }

    /// Reconstruct with uncertainty: mean and standard deviation across
    /// members at every grid node.
    ///
    /// At nodes that were *sampled* (when `target` matches the cloud's
    /// grid), every member reproduces the stored value exactly, so the
    /// standard deviation there is zero — the uncertainty map highlights
    /// void regions only, as it should.
    pub fn reconstruct(
        &self,
        cloud: &PointCloud,
        target: &Grid3,
    ) -> Result<UncertainReconstruction, CoreError> {
        let reconstructions: Vec<ScalarField> = self
            .members
            .iter()
            .map(|m| m.reconstruct(cloud, target))
            .collect::<Result<_, _>>()?;
        let n = target.num_points();
        let e = reconstructions.len() as f64;
        let mut mean = vec![0.0f64; n];
        for r in &reconstructions {
            for (acc, &v) in mean.iter_mut().zip(r.values()) {
                *acc += v as f64;
            }
        }
        for m in &mut mean {
            *m /= e;
        }
        let mut var = vec![0.0f64; n];
        for r in &reconstructions {
            for ((acc, &v), &m) in var.iter_mut().zip(r.values()).zip(mean.iter()) {
                let d = v as f64 - m;
                *acc += d * d;
            }
        }
        let std_dev: Vec<f32> = var.iter().map(|&s| ((s / e).sqrt()) as f32).collect();
        let mean: Vec<f32> = mean.into_iter().map(|m| m as f32).collect();
        Ok(UncertainReconstruction {
            mean: ScalarField::from_vec(*target, mean)?,
            std_dev: ScalarField::from_vec(*target, std_dev)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_sampling::{FieldSampler, ImportanceSampler};

    fn field() -> ScalarField {
        let g = Grid3::new([12, 12, 6]).unwrap();
        ScalarField::from_world_fn(g, |p| ((p[0] * 0.5).sin() + 0.2 * p[1]) as f32)
    }

    fn config() -> PipelineConfig {
        let mut cfg = PipelineConfig::small_for_tests();
        cfg.trainer.epochs = 8;
        cfg
    }

    #[test]
    fn rejects_empty_ensemble() {
        assert!(matches!(
            EnsemblePipeline::train(&field(), &config(), 0, 1),
            Err(CoreError::BadConfig(_))
        ));
    }

    #[test]
    fn members_differ_and_mean_is_reasonable() {
        let f = field();
        let ens = EnsemblePipeline::train(&f, &config(), 3, 7).unwrap();
        assert_eq!(ens.size(), 3);
        // members trained with different seeds have different weights
        assert_ne!(ens.members()[0].mlp(), ens.members()[1].mlp());

        let cloud = ImportanceSampler::default().sample(&f, 0.05, 2);
        let ur = ens.reconstruct(&cloud, f.grid()).unwrap();
        assert_eq!(ur.mean.len(), f.len());
        assert_eq!(ur.std_dev.len(), f.len());
        assert!(ur.std_dev.values().iter().all(|&s| s >= 0.0 && s.is_finite()));
    }

    #[test]
    fn sampled_nodes_have_zero_uncertainty() {
        let f = field();
        let ens = EnsemblePipeline::train(&f, &config(), 2, 3).unwrap();
        let cloud = ImportanceSampler::default().sample(&f, 0.05, 5);
        let ur = ens.reconstruct(&cloud, f.grid()).unwrap();
        for &idx in cloud.indices() {
            assert_eq!(ur.std_dev.values()[idx], 0.0, "sampled node {idx}");
            assert_eq!(ur.mean.values()[idx], f.values()[idx]);
        }
        // but *some* void node carries nonzero uncertainty
        let max_std = ur.std_dev.values().iter().cloned().fold(0.0f32, f32::max);
        assert!(max_std > 0.0);
    }

    #[test]
    fn single_member_ensemble_matches_pipeline() {
        let f = field();
        let cfg = config();
        let ens = EnsemblePipeline::train(&f, &cfg, 1, 11).unwrap();
        let cloud = ImportanceSampler::default().sample(&f, 0.05, 1);
        let ur = ens.reconstruct(&cloud, f.grid()).unwrap();
        // std of a single member is identically zero
        assert!(ur.std_dev.values().iter().all(|&s| s == 0.0));
        let direct = ens.members()[0].reconstruct(&cloud, f.grid()).unwrap();
        for (a, b) in ur.mean.values().iter().zip(direct.values()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fine_tune_updates_all_members() {
        let f = field();
        let mut ens = EnsemblePipeline::train(&f, &config(), 2, 5).unwrap();
        let before: Vec<_> = ens.members().iter().map(|m| m.mlp().clone()).collect();
        ens.fine_tune(
            &f,
            &FineTuneSpec {
                epochs: 2,
                ..FineTuneSpec::case1()
            },
        )
        .unwrap();
        for (b, m) in before.iter().zip(ens.members()) {
            assert_ne!(b, m.mlp(), "member not updated");
        }
    }
}
