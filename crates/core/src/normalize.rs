//! The normalization frame that makes one model work across sampling
//! rates, resolutions and spatial domains.
//!
//! Feature coordinates are expressed in *unit-domain* coordinates
//! (`(p - origin) / extent` of whichever grid is being reconstructed), and
//! scalar values in the `[0, 1]` range of the *training* cloud. Gradients
//! are scaled into the same dimensionless frame (`∂v̂/∂û = ∂v/∂u · extent /
//! value_range`). Because the network only ever sees dimensionless inputs
//! and outputs, a model trained on a 64³ grid over one physical domain
//! transfers to a 128³ grid over a shifted domain (the paper's Experiment
//! 3) with at most a brief fine-tune.

use fv_field::Grid3;

/// Value range of the training data, used to map scalars into `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueNorm {
    /// Lower bound of the training values.
    pub lo: f32,
    /// Upper bound of the training values.
    pub hi: f32,
}

impl ValueNorm {
    /// Fit from a value slice; constant/empty data gets a unit range.
    pub fn fit(values: &[f32]) -> Self {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in values {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if !(lo.is_finite() && hi.is_finite() && hi > lo) {
            let base = if lo.is_finite() { lo } else { 0.0 };
            return Self {
                lo: base,
                hi: base + 1.0,
            };
        }
        Self { lo, hi }
    }

    /// Width of the range.
    #[inline(always)]
    pub fn span(&self) -> f32 {
        self.hi - self.lo
    }

    /// Map a raw value into the normalized frame.
    #[inline(always)]
    pub fn normalize(&self, v: f32) -> f32 {
        (v - self.lo) / self.span()
    }

    /// Map a normalized value back to raw units.
    #[inline(always)]
    pub fn denormalize(&self, v: f32) -> f32 {
        v * self.span() + self.lo
    }
}

/// Coordinate frame of one grid: maps world positions into `[0, 1]³`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordFrame {
    origin: [f64; 3],
    inv_extent: [f64; 3],
    extent: [f64; 3],
}

impl CoordFrame {
    /// The unit frame of a grid's bounding box (singleton axes get unit
    /// extent so the division is always defined).
    pub fn of_grid(grid: &Grid3) -> Self {
        let origin = grid.origin();
        let mut extent = grid.extent();
        for e in &mut extent {
            if *e <= 0.0 {
                *e = 1.0;
            }
        }
        Self {
            origin,
            inv_extent: [1.0 / extent[0], 1.0 / extent[1], 1.0 / extent[2]],
            extent,
        }
    }

    /// World → unit coordinates.
    #[inline(always)]
    pub fn to_unit(&self, p: [f64; 3]) -> [f32; 3] {
        [
            ((p[0] - self.origin[0]) * self.inv_extent[0]) as f32,
            ((p[1] - self.origin[1]) * self.inv_extent[1]) as f32,
            ((p[2] - self.origin[2]) * self.inv_extent[2]) as f32,
        ]
    }

    /// Physical extent per axis.
    #[inline(always)]
    pub fn extent(&self) -> [f64; 3] {
        self.extent
    }

    /// Scale a world-space gradient component into the dimensionless frame.
    #[inline(always)]
    pub fn gradient_to_unit(&self, g: f32, axis: usize, values: &ValueNorm) -> f32 {
        (g as f64 * self.extent[axis] / values.span() as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_norm_roundtrip() {
        let n = ValueNorm::fit(&[2.0, 4.0, 10.0]);
        assert_eq!(n.lo, 2.0);
        assert_eq!(n.hi, 10.0);
        assert_eq!(n.normalize(2.0), 0.0);
        assert_eq!(n.normalize(10.0), 1.0);
        let v = 7.3f32;
        assert!((n.denormalize(n.normalize(v)) - v).abs() < 1e-5);
    }

    #[test]
    fn value_norm_degenerate_inputs() {
        let constant = ValueNorm::fit(&[3.0, 3.0]);
        assert_eq!(constant.span(), 1.0);
        assert_eq!(constant.normalize(3.0), 0.0);
        let empty = ValueNorm::fit(&[]);
        assert_eq!(empty.span(), 1.0);
        let nan = ValueNorm::fit(&[f32::NAN]);
        assert_eq!(nan.span(), 1.0);
    }

    #[test]
    fn coord_frame_unit_mapping() {
        let g = Grid3::with_geometry([5, 5, 5], [10.0, 0.0, -4.0], [0.5, 1.0, 2.0]).unwrap();
        let f = CoordFrame::of_grid(&g);
        let lo = f.to_unit([10.0, 0.0, -4.0]);
        let hi = f.to_unit([12.0, 4.0, 4.0]);
        for a in 0..3 {
            assert!((lo[a] - 0.0).abs() < 1e-6);
            assert!((hi[a] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn coord_frame_singleton_axis() {
        let g = Grid3::new([4, 4, 1]).unwrap();
        let f = CoordFrame::of_grid(&g);
        let u = f.to_unit([1.0, 2.0, 0.0]);
        assert!(u[2].abs() < 1e-6);
        assert_eq!(f.extent()[2], 1.0);
    }

    #[test]
    fn different_domains_map_to_same_unit_frame() {
        // The transfer property: corresponding points of two shifted/scaled
        // grids receive identical unit coordinates.
        let a = Grid3::spanning([10, 10, 10], [0.0; 3], [1.0; 3]).unwrap();
        let b = Grid3::spanning([20, 20, 20], [100.0; 3], [104.0; 3]).unwrap();
        let fa = CoordFrame::of_grid(&a);
        let fb = CoordFrame::of_grid(&b);
        // midpoints of both domains
        let ua = fa.to_unit([0.5, 0.5, 0.5]);
        let ub = fb.to_unit([102.0, 102.0, 102.0]);
        for x in 0..3 {
            assert!((ua[x] - ub[x]).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_scaling() {
        let g = Grid3::spanning([3, 3, 3], [0.0; 3], [2.0, 4.0, 8.0]).unwrap();
        let f = CoordFrame::of_grid(&g);
        let v = ValueNorm { lo: 0.0, hi: 10.0 };
        // dv/dx = 5 in world units => dv̂/dû = 5 * 2 / 10 = 1
        assert!((f.gradient_to_unit(5.0, 0, &v) - 1.0).abs() < 1e-6);
        // axis 2 has extent 8 => 5 * 8 / 10 = 4
        assert!((f.gradient_to_unit(5.0, 2, &v) - 4.0).abs() < 1e-6);
    }
}
