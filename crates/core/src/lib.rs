//! # fillvoid-core
//!
//! The paper's primary contribution: data-driven FCNN reconstruction of
//! sampled spatiotemporal scientific simulation data.
//!
//! The pipeline mirrors Figure 1 of the paper:
//!
//! 1. a full-resolution timestep is importance-sampled down to 0.1%–5% of
//!    its points (`fv-sampling`);
//! 2. grid nodes are partitioned into *sampled points* and *void
//!    locations*; for every void location, [`features`] builds the paper's
//!    `[1×23]` vector from the five nearest sampled points (normalized into
//!    a resolution- and domain-independent frame — the key to Experiment
//!    3's cross-resolution transfer);
//! 3. a five-hidden-layer FCNN ([`fv_nn`]) is trained to predict the
//!    `[1×4]` output — scalar value plus x/y/z gradients — on the union of
//!    a 1% and a 5% sampling (the "1%+5% model" of Fig. 7);
//! 4. [`pipeline::FcnnPipeline::reconstruct`] fills every void of an
//!    arbitrarily-sampled cloud, at any resolution, in one batched forward
//!    pass.
//!
//! Supporting modules: [`metrics`] (SNR as defined in Sec. IV), [`timesteps`]
//! (Experiment 2 workflows with Case 1/Case 2 fine-tuning), [`upscale`]
//! (Experiment 3), [`experiment`] (sweep harnesses shared by the bench
//! binaries) and [`render`] (qualitative slice dumps, Figs. 2–3).

pub mod brick;
pub mod checkpoint;
pub mod error;
pub mod ensemble;
pub mod experiment;
pub mod features;
pub mod insitu;
pub mod metrics;
pub mod normalize;
pub mod pipeline;
pub mod render;
pub mod report;
pub mod timesteps;
pub mod upscale;

/// Chaos plans are process-global; every test in this binary that installs
/// one must hold this lock so concurrently running tests cannot bleed
/// injected faults into each other.
#[cfg(test)]
pub(crate) static CHAOS_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

pub use brick::{reconstruct_bricked, BrickReconConfig, BrickRunReport, BrickStreamer};
pub use error::CoreError;
pub use features::FeatureScratch;
pub use pipeline::{FcnnPipeline, PipelineConfig, ReconstructWorkspace, DEFAULT_PREDICTION_BATCH};
