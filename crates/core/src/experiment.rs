//! Shared experiment harnesses: the sweeps behind the paper's figures.
//!
//! The bench binaries (`crates/bench/src/bin/exp_*`) are thin wrappers
//! around these functions, which produce plain row structs so results can
//! be printed, asserted on in tests, or dumped to CSV.

use crate::error::CoreError;
use crate::metrics::snr_db;
use crate::pipeline::{FcnnPipeline, PipelineConfig};
use fv_field::{Grid3, ScalarField};
use fv_interp::{InterpError, Reconstructor};
use fv_sampling::{FieldSampler, ImportanceConfig, ImportanceSampler, PointCloud};
use std::time::Instant;

/// Adapter: expose a trained [`FcnnPipeline`] through the classical
/// [`Reconstructor`] interface so it slots into the same sweeps and timing
/// harnesses as the baselines (Figs. 9–10).
pub struct FcnnReconstructor<'a> {
    pipeline: &'a FcnnPipeline,
}

impl<'a> FcnnReconstructor<'a> {
    /// Wrap a trained pipeline.
    pub fn new(pipeline: &'a FcnnPipeline) -> Self {
        Self { pipeline }
    }
}

impl Reconstructor for FcnnReconstructor<'_> {
    fn name(&self) -> &'static str {
        "fcnn"
    }

    fn reconstruct(
        &self,
        cloud: &PointCloud,
        target: &Grid3,
    ) -> Result<ScalarField, InterpError> {
        match self.pipeline.reconstruct(cloud, target) {
            Ok(f) => Ok(f),
            Err(CoreError::EmptyCloud) => Err(InterpError::EmptyCloud),
            Err(e) => Err(InterpError::Triangulation(e.to_string())),
        }
    }
}

/// One `(method, fraction)` cell of the Fig. 9 / Fig. 10 grids.
#[derive(Debug, Clone)]
pub struct MethodRow {
    /// Reconstruction method name.
    pub method: String,
    /// Sampling fraction.
    pub fraction: f64,
    /// Reconstruction SNR in dB (NaN when the method failed).
    pub snr: f64,
    /// Wall-clock reconstruction time in seconds (excludes FCNN training,
    /// exactly as Fig. 10 does).
    pub seconds: f64,
}

/// Sweep reconstruction methods over sampling fractions on one timestep.
///
/// For each fraction the field is sampled once (all methods see the same
/// cloud) and every method reconstructs the full grid; quality and time are
/// recorded.
pub fn method_sweep(
    field: &ScalarField,
    methods: &[&dyn Reconstructor],
    fractions: &[f64],
    sampler_config: ImportanceConfig,
    seed: u64,
) -> Vec<MethodRow> {
    let sampler = ImportanceSampler::new(sampler_config);
    let mut rows = Vec::with_capacity(methods.len() * fractions.len());
    for (i, &fraction) in fractions.iter().enumerate() {
        let cloud = sampler.sample(field, fraction, seed ^ ((i as u64 + 1) << 24));
        for method in methods {
            let start = Instant::now();
            let outcome = method.reconstruct(&cloud, field.grid());
            let seconds = start.elapsed().as_secs_f64();
            let snr = match outcome {
                Ok(recon) => snr_db(field, &recon),
                Err(_) => f64::NAN,
            };
            rows.push(MethodRow {
                method: method.name().to_string(),
                fraction,
                snr,
                seconds,
            });
        }
    }
    rows
}

/// One depth's outcome in the hidden-layer sweep (Fig. 6).
#[derive(Debug, Clone)]
pub struct DepthRow {
    /// Number of hidden layers.
    pub depth: usize,
    /// Mean SNR over the evaluation fractions.
    pub snr: f64,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
}

/// Train pipelines of increasing depth and score each (Fig. 6).
///
/// Depth `d` uses the first `d` entries of `width_ladder` as hidden sizes.
pub fn hidden_layer_sweep(
    field: &ScalarField,
    width_ladder: &[usize],
    depths: &[usize],
    base: &PipelineConfig,
    eval_fractions: &[f64],
    seed: u64,
) -> Result<Vec<DepthRow>, CoreError> {
    let sampler = ImportanceSampler::new(base.sampler);
    let mut rows = Vec::with_capacity(depths.len());
    for &depth in depths {
        let d = depth.clamp(1, width_ladder.len());
        let config = PipelineConfig {
            hidden: width_ladder[..d].to_vec(),
            ..base.clone()
        };
        let start = Instant::now();
        let pipeline = FcnnPipeline::train(field, &config, seed)?;
        let train_seconds = start.elapsed().as_secs_f64();
        let mut snr_sum = 0.0;
        for (i, &fraction) in eval_fractions.iter().enumerate() {
            let cloud = sampler.sample(field, fraction, seed ^ ((i as u64 + 3) << 20));
            let recon = pipeline.reconstruct(&cloud, field.grid())?;
            snr_sum += snr_db(field, &recon);
        }
        rows.push(DepthRow {
            depth: d,
            snr: snr_sum / eval_fractions.len().max(1) as f64,
            train_seconds,
        });
    }
    Ok(rows)
}

/// One pipeline-variant's SNR series over test fractions (Figs. 7, 8, 14).
#[derive(Debug, Clone)]
pub struct VariantSeries {
    /// Label of the variant ("1%+5%", "no-gradient", "25% rows", ...).
    pub label: String,
    /// `(fraction, snr)` pairs.
    pub points: Vec<(f64, f64)>,
    /// Wall-clock training time in seconds (Table II).
    pub train_seconds: f64,
}

/// Train one pipeline variant and score it across test sampling fractions.
pub fn variant_series(
    field: &ScalarField,
    label: &str,
    config: &PipelineConfig,
    test_fractions: &[f64],
    seed: u64,
) -> Result<VariantSeries, CoreError> {
    let start = Instant::now();
    let pipeline = FcnnPipeline::train(field, config, seed)?;
    let train_seconds = start.elapsed().as_secs_f64();
    let sampler = ImportanceSampler::new(config.sampler);
    let mut points = Vec::with_capacity(test_fractions.len());
    for (i, &fraction) in test_fractions.iter().enumerate() {
        let cloud = sampler.sample(field, fraction, seed ^ ((i as u64 + 11) << 18));
        let recon = pipeline.reconstruct(&cloud, field.grid())?;
        points.push((fraction, snr_db(field, &recon)));
    }
    Ok(VariantSeries {
        label: label.to_string(),
        points,
        train_seconds,
    })
}

/// Render a sequence of rows as an aligned text table (the bench binaries'
/// output format).
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_interp::nearest::NearestReconstructor;
    use fv_interp::shepard::ShepardReconstructor;

    fn field() -> ScalarField {
        let g = Grid3::new([10, 10, 6]).unwrap();
        ScalarField::from_world_fn(g, |p| ((p[0] * 0.5).sin() + 0.2 * p[1]) as f32)
    }

    #[test]
    fn method_sweep_covers_grid() {
        let f = field();
        let nearest = NearestReconstructor;
        let shepard = ShepardReconstructor::default();
        let methods: Vec<&dyn Reconstructor> = vec![&nearest, &shepard];
        let rows = method_sweep(&f, &methods, &[0.05, 0.1], ImportanceConfig::default(), 1);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.snr.is_finite() && r.seconds >= 0.0));
        // same cloud per fraction: both methods at 0.05 come first
        assert_eq!(rows[0].fraction, rows[1].fraction);
    }

    #[test]
    fn fcnn_adapter_reconstructs() {
        let f = field();
        let cfg = PipelineConfig::small_for_tests();
        let pipeline = FcnnPipeline::train(&f, &cfg, 2).unwrap();
        let adapter = FcnnReconstructor::new(&pipeline);
        assert_eq!(adapter.name(), "fcnn");
        let sampler = ImportanceSampler::default();
        let cloud = sampler.sample(&f, 0.05, 3);
        let recon = adapter.reconstruct(&cloud, f.grid()).unwrap();
        assert_eq!(recon.len(), f.len());
        let empty = PointCloud::from_indices(&f, vec![]);
        assert!(matches!(
            adapter.reconstruct(&empty, f.grid()),
            Err(InterpError::EmptyCloud)
        ));
    }

    #[test]
    fn hidden_layer_sweep_rows() {
        let f = field();
        let base = PipelineConfig::small_for_tests();
        let rows =
            hidden_layer_sweep(&f, &[16, 12, 8, 8], &[1, 3], &base, &[0.05], 1).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].depth, 1);
        assert_eq!(rows[1].depth, 3);
        assert!(rows.iter().all(|r| r.snr.is_finite() && r.train_seconds > 0.0));
    }

    #[test]
    fn variant_series_points() {
        let f = field();
        let cfg = PipelineConfig::small_for_tests();
        let s = variant_series(&f, "test", &cfg, &[0.03, 0.06], 4).unwrap();
        assert_eq!(s.label, "test");
        assert_eq!(s.points.len(), 2);
        assert!(s.points.iter().all(|(_, snr)| snr.is_finite()));
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["method", "snr"],
            &[
                vec!["nearest".into(), "12.3".into()],
                vec!["fcnn".into(), "28.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("method"));
        assert!(lines[2].ends_with("12.3"));
    }
}
