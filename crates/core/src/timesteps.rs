//! Experiment-2 workflows: reconstruction quality across a simulation run.
//!
//! The paper pretrains on one timestep and then asks how the model holds
//! up on the other 47 (Fig. 11): frozen, it degrades as the hurricane
//! drifts; with ~10 epochs of Case-1 fine-tuning per step it stays well
//! above the Delaunay-linear baseline. [`replay`] drives exactly that
//! in-situ loop — one timestep resident at a time — and records SNR per
//! step.

use crate::error::CoreError;
use crate::metrics::snr_db;
use crate::pipeline::{FcnnPipeline, FineTuneSpec};
use fv_interp::Reconstructor;
use fv_sampling::{FieldSampler, ImportanceConfig, ImportanceSampler};
use fv_sims::Simulation;

/// Configuration for an in-situ replay over timesteps.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Sampling fraction applied at every timestep (Fig. 11 uses 3%).
    pub fraction: f64,
    /// Fine-tune the model on each timestep before reconstructing it
    /// (`None` = frozen pretrained model).
    pub fine_tune: Option<FineTuneSpec>,
    /// Sampler seed base (combined with the timestep index).
    pub seed: u64,
    /// Importance-sampler settings.
    pub sampler: ImportanceConfig,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            fraction: 0.03,
            fine_tune: None,
            seed: 0,
            sampler: ImportanceConfig::default(),
        }
    }
}

/// One timestep's outcome in a replay.
#[derive(Debug, Clone)]
pub struct ReplayRow {
    /// Timestep index.
    pub t: usize,
    /// Reconstruction SNR (dB) against the ground-truth timestep.
    pub snr: f64,
    /// Final fine-tuning loss at this step, when fine-tuning ran.
    pub fine_tune_loss: Option<f32>,
}

/// Replay a simulation through a (possibly fine-tuned) FCNN pipeline.
///
/// For each timestep: materialize the field, sample it, optionally
/// fine-tune the pipeline on the field (in situ, the full data is present
/// at that moment), reconstruct from the samples alone, and score.
pub fn replay(
    sim: &dyn Simulation,
    pipeline: &mut FcnnPipeline,
    timesteps: &[usize],
    config: &ReplayConfig,
) -> Result<Vec<ReplayRow>, CoreError> {
    let sampler = ImportanceSampler::new(config.sampler);
    let mut rows = Vec::with_capacity(timesteps.len());
    for &t in timesteps {
        let field = sim.timestep(t);
        let cloud = sampler.sample(&field, config.fraction, config.seed ^ (t as u64) << 8);
        let fine_tune_loss = match &config.fine_tune {
            Some(spec) => {
                let mut spec = spec.clone();
                spec.seed ^= t as u64;
                let h = pipeline.fine_tune(&field, &spec)?;
                h.final_loss()
            }
            None => None,
        };
        let recon = pipeline.reconstruct(&cloud, field.grid())?;
        rows.push(ReplayRow {
            t,
            snr: snr_db(&field, &recon),
            fine_tune_loss,
        });
    }
    Ok(rows)
}

/// SNR of a classical reconstructor across timesteps (Fig. 11's black
/// baseline, typically [`fv_interp::linear::LinearReconstructor`]).
pub fn baseline_replay(
    sim: &dyn Simulation,
    method: &dyn Reconstructor,
    timesteps: &[usize],
    config: &ReplayConfig,
) -> Vec<ReplayRow> {
    let sampler = ImportanceSampler::new(config.sampler);
    timesteps
        .iter()
        .map(|&t| {
            let field = sim.timestep(t);
            let cloud = sampler.sample(&field, config.fraction, config.seed ^ (t as u64) << 8);
            let snr = match method.reconstruct(&cloud, field.grid()) {
                Ok(recon) => snr_db(&field, &recon),
                Err(_) => f64::NAN,
            };
            ReplayRow {
                t,
                snr,
                fine_tune_loss: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use fv_sims::Hurricane;

    fn tiny_sim() -> Hurricane {
        Hurricane::builder().resolution([14, 14, 6]).timesteps(6).build()
    }

    #[test]
    fn frozen_replay_produces_rows() {
        let sim = tiny_sim();
        let cfg = PipelineConfig::small_for_tests();
        let mut pipeline = FcnnPipeline::train(&sim.timestep(0), &cfg, 1).unwrap();
        let rows = replay(
            &sim,
            &mut pipeline,
            &[0, 2, 5],
            &ReplayConfig {
                fraction: 0.05,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].t, 0);
        assert!(rows.iter().all(|r| r.snr.is_finite()));
        assert!(rows.iter().all(|r| r.fine_tune_loss.is_none()));
    }

    #[test]
    fn finetuned_replay_records_losses() {
        let sim = tiny_sim();
        let cfg = PipelineConfig::small_for_tests();
        let mut pipeline = FcnnPipeline::train(&sim.timestep(0), &cfg, 1).unwrap();
        let rows = replay(
            &sim,
            &mut pipeline,
            &[1, 3],
            &ReplayConfig {
                fraction: 0.05,
                fine_tune: Some(FineTuneSpec {
                    epochs: 2,
                    ..FineTuneSpec::case1()
                }),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rows.iter().all(|r| r.fine_tune_loss.is_some()));
    }

    #[test]
    fn baseline_replay_scores_linear() {
        let sim = tiny_sim();
        let method = fv_interp::linear::LinearReconstructor::default();
        let rows = baseline_replay(
            &sim,
            &method,
            &[0, 4],
            &ReplayConfig {
                fraction: 0.08,
                ..Default::default()
            },
        );
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.snr.is_finite()));
    }
}
