//! Error type for the reconstruction pipeline.

use std::fmt;

/// Errors from the FCNN reconstruction pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// A field-layer failure (grid mismatch, I/O, ...).
    Field(fv_field::FieldError),
    /// A network-layer failure (widths, training, serialization).
    Nn(fv_nn::NnError),
    /// The sampled cloud is empty.
    EmptyCloud,
    /// The sampling left no void locations to train on.
    NoVoids,
    /// Configuration rejected.
    BadConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Field(e) => write!(f, "field error: {e}"),
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::EmptyCloud => write!(f, "sampled cloud is empty"),
            CoreError::NoVoids => write!(f, "sampling kept every point; nothing to train on"),
            CoreError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Field(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fv_field::FieldError> for CoreError {
    fn from(e: fv_field::FieldError) -> Self {
        CoreError::Field(e)
    }
}

impl From<fv_nn::NnError> for CoreError {
    fn from(e: fv_nn::NnError) -> Self {
        CoreError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: CoreError = fv_nn::NnError::EmptyNetwork.into();
        assert!(e.to_string().contains("network"));
        assert!(CoreError::EmptyCloud.to_string().contains("empty"));
        assert!(CoreError::NoVoids.to_string().contains("void") || CoreError::NoVoids.to_string().contains("train"));
        assert!(CoreError::BadConfig("k=0".into()).to_string().contains("k=0"));
    }
}
