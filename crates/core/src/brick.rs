//! Out-of-core bricked reconstruction with crash-only per-brick resume.
//!
//! [`reconstruct_bricked`] streams a reconstruction brick by brick instead
//! of materializing the dense output volume: a *prefetch* thread gathers
//! each brick's halo samples and builds its ghost k-d tree, the calling
//! thread runs the FCNN reconstruction, and a *commit* thread persists
//! finished bricks into a crash-safe [`BrickStore`] — three stages coupled
//! by bounded channels, so at most `prefetch + 2` bricks of dense data are
//! ever in flight regardless of volume size (DESIGN.md §13).
//!
//! Results are **bitwise-identical** to [`FcnnPipeline::reconstruct`] at
//! any brick size and thread count. The chain of guarantees:
//!
//! 1. the ghost tree certifies each kNN answer against a strict border
//!    bound ([`fv_spatial::GhostTree::k_nearest_exact`]); an uncertified
//!    brick regathers with a doubled halo — a geometry-only decision,
//!    independent of thread schedule — until certification succeeds
//!    (terminal state: the ghost set *is* the whole cloud);
//! 2. feature rows go through the same fill function as the whole-grid
//!    path ([`crate::features`]), so equal neighborhoods produce equal
//!    rows by construction;
//! 3. the forward pass is row-independent, so per-brick batching cannot
//!    change any row's value.
//!
//! Crash-only recovery: every committed brick is durable before the store's
//! ledger flags it complete, so a crash (or chaos-injected fault) at any
//! instant loses at most the bricks in flight. A rerun re-opens the store,
//! verifies the ledger's claims, and recomputes only what is missing.

use crate::error::CoreError;
use crate::features::fill_feature_row;
use crate::normalize::CoordFrame;
use crate::pipeline::FcnnPipeline;
use fv_field::brick::{BrickLayout, BrickStore};
use fv_field::Grid3;
use fv_linalg::granularity::{go_parallel, OpCounter};
use fv_linalg::Matrix;
use fv_nn::InferWorkspace;
use fv_runtime::{chaos, telemetry, ExecCtx, StopReason};
use fv_sampling::PointCloud;
use fv_spatial::{GhostTree, KnnScratch, Neighbor};
use rayon::prelude::*;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;

static OP_BRICK_KNN: OpCounter = OpCounter::new("core.brick_knn");

// Brick-pipeline telemetry (inert and allocation-free unless
// FV_TELEMETRY=1): one parent span per run, child spans per brick on the
// reconstruct and commit stages, progress counters, and a queue-depth
// gauge for the prefetch channel.
static TM_BRICK: telemetry::Site = telemetry::Site::new("brick.pipeline", None);
static TM_BRICK_RECON: telemetry::Site = telemetry::Site::new("brick.recon", Some("brick.pipeline"));
static TM_BRICK_COMMIT: telemetry::Site =
    telemetry::Site::new("brick.commit", Some("brick.pipeline"));
static TM_BRICK_COMPLETED: telemetry::Counter = telemetry::Counter::new("brick.completed");
static TM_BRICK_RESUMED: telemetry::Counter = telemetry::Counter::new("brick.resumed");
static TM_BRICK_RECOMPUTED: telemetry::Counter = telemetry::Counter::new("brick.recomputed");
static TM_BRICK_HALO_BYTES: telemetry::Counter = telemetry::Counter::new("brick.halo_bytes");
static TM_PREFETCH_DEPTH: telemetry::Gauge = telemetry::Gauge::new("brick.prefetch_depth");

/// Bytes per ghost sample gathered: one `[f64; 3]` position + one `f32`.
const GHOST_SAMPLE_BYTES: u64 = 28;

/// Configuration for [`reconstruct_bricked`].
#[derive(Debug, Clone, Copy)]
pub struct BrickReconConfig {
    /// Voxels per brick along each axis (the unit of recovery and of the
    /// memory budget). May exceed the grid: the run degenerates to one
    /// brick.
    pub brick_dims: [usize; 3],
    /// Initial halo width, in cloud-grid cells, around each brick's ghost
    /// gather. Too small only costs retries (the halo doubles until the
    /// kNN certificate holds); it can never change the result.
    pub halo: usize,
    /// Bound on the prefetch channel: how many gathered-but-unprocessed
    /// bricks may queue ahead of the reconstruct stage.
    pub prefetch: usize,
    /// Re-verify (CRC) every brick the ledger claims complete before
    /// skipping it on resume; bricks failing verification are recomputed.
    pub verify_resumed: bool,
}

impl Default for BrickReconConfig {
    fn default() -> Self {
        Self {
            brick_dims: [32, 32, 32],
            halo: 2,
            prefetch: 2,
            verify_resumed: true,
        }
    }
}

impl BrickReconConfig {
    fn validate(&self) -> Result<(), CoreError> {
        if self.brick_dims.contains(&0) {
            return Err(CoreError::BadConfig(format!(
                "brick_dims must be positive: {:?}",
                self.brick_dims
            )));
        }
        if self.halo == 0 {
            return Err(CoreError::BadConfig("halo must be >= 1".into()));
        }
        if self.prefetch == 0 {
            return Err(CoreError::BadConfig("prefetch must be >= 1".into()));
        }
        Ok(())
    }
}

/// What a [`reconstruct_bricked`] run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrickRunReport {
    /// Bricks in the decomposition.
    pub total_bricks: usize,
    /// Bricks reconstructed and committed by *this* run.
    pub completed: usize,
    /// Bricks found complete in the ledger and verified, skipped entirely.
    pub resumed: usize,
    /// Bricks the ledger claimed complete but that failed verification and
    /// were recomputed (counted in `completed` as well).
    pub recomputed: usize,
    /// Why the run stopped early, if it did. Unfinished bricks remain
    /// pending in the ledger; a later run picks them up.
    pub interrupted: Option<StopReason>,
    /// Ghost-sample bytes gathered across all bricks and halo retries.
    pub halo_bytes: u64,
    /// Peak bytes of dense brick payloads simultaneously in flight
    /// (reconstructing + queued for commit + committing). Bounded by
    /// `(prefetch + 2) · max_brick_len · 4` by construction.
    pub peak_inflight_bytes: usize,
    /// Largest halo any brick needed before its kNN certificate held.
    pub max_halo: usize,
}

impl BrickRunReport {
    /// `true` when every brick in the volume is complete on disk.
    pub fn is_complete(&self) -> bool {
        self.resumed + self.completed == self.total_bricks
    }
}

/// Per-query lower bound on the squared distance to any sample *outside*
/// the ghost box. Each closed face contributes the plane of the nearest
/// excluded cloud-grid index; open faces (box flush with the grid) exclude
/// nothing. Both the plane coordinate (`origin + i·spacing`) and the
/// distance term mirror the expressions used for the samples themselves,
/// so comparisons against real neighbor distances are exact — monotone fp
/// arithmetic, no epsilons.
#[derive(Debug, Clone, Copy)]
struct Border {
    low: [Option<f64>; 3],
    high: [Option<f64>; 3],
}

impl Border {
    fn bound_d2(&self, q: [f64; 3]) -> f64 {
        let mut best = f64::INFINITY;
        for (a, &qa) in q.iter().enumerate() {
            if let Some(x) = self.low[a] {
                let d = qa - x;
                if d <= 0.0 {
                    // Query at or beyond the excluded plane: no usable
                    // bound; force the inexact path (halo grows).
                    return 0.0;
                }
                best = best.min(d * d);
            }
            if let Some(x) = self.high[a] {
                let d = x - qa;
                if d <= 0.0 {
                    return 0.0;
                }
                best = best.min(d * d);
            }
        }
        best
    }
}

/// Gather the ghost samples for a brick's world box expanded by `halo`
/// cloud-grid cells, and the matching border bound.
///
/// Membership is decided in *integer index space* of the cloud's grid —
/// a sample is kept iff its `[i, j, k]` lies inside the expanded box —
/// so the excluded set is exactly "indices beyond the border planes" and
/// the bound in [`Border`] is airtight. The kept list is ascending by
/// cloud-array position, which [`GhostTree::gather`] requires for global
/// tie-break agreement.
fn gather_ghost(
    positions: &[[f64; 3]],
    sample_ijk: &[[usize; 3]],
    cloud_grid: &Grid3,
    wlo: [f64; 3],
    whi: [f64; 3],
    halo: usize,
) -> (GhostTree, Border) {
    let dims = cloud_grid.dims();
    let origin = cloud_grid.origin();
    let spacing = cloud_grid.spacing();
    let mut glo = [0i64; 3];
    let mut ghi = [0i64; 3];
    let mut low = [None; 3];
    let mut high = [None; 3];
    for a in 0..3 {
        let flo = (wlo[a] - origin[a]) / spacing[a];
        let fhi = (whi[a] - origin[a]) / spacing[a];
        glo[a] = flo.floor() as i64 - halo as i64;
        ghi[a] = fhi.ceil() as i64 + halo as i64;
        if glo[a] > 0 {
            low[a] = Some(origin[a] + (glo[a] - 1) as f64 * spacing[a]);
        }
        if ghi[a] < dims[a] as i64 - 1 {
            high[a] = Some(origin[a] + (ghi[a] + 1) as f64 * spacing[a]);
        }
    }
    let keep: Vec<usize> = (0..sample_ijk.len())
        .filter(|&pos| {
            let ijk = sample_ijk[pos];
            (0..3).all(|a| {
                let i = ijk[a] as i64;
                i >= glo[a].max(0) && i <= ghi[a].min(dims[a] as i64 - 1)
            })
        })
        .collect();
    let complete = keep.len() == positions.len();
    (
        GhostTree::gather(positions, &keep, complete),
        Border { low, high },
    )
}

/// One prefetched brick: its ghost tree, border bound, and the halo the
/// gather used (the reconstruct stage's starting point for growth).
struct BrickJob {
    b: usize,
    ghost: GhostTree,
    border: Border,
    halo: usize,
}

/// Buffers reused across bricks by the reconstruct stage.
struct BrickWorkspace {
    /// (offset within brick, grid-linear index) of each voxel to predict.
    queries: Vec<(usize, usize)>,
    qpos: Vec<[f64; 3]>,
    neighbors: Vec<Neighbor>,
    knn: Vec<KnnScratch>,
    features: Matrix<f32>,
    infer: InferWorkspace,
}

impl Default for BrickWorkspace {
    fn default() -> Self {
        Self {
            queries: Vec::new(),
            qpos: Vec::new(),
            neighbors: Vec::new(),
            knn: Vec::new(),
            features: Matrix::zeros(0, 0),
            infer: InferWorkspace::default(),
        }
    }
}

/// Reconstruct `target` from `cloud` through `pipeline`, streaming bricks
/// through the crash-safe store in `dir`.
///
/// Opens (or resumes) a [`BrickStore`] for `target` decomposed by
/// `cfg.brick_dims`, reconstructs every pending brick, and returns the
/// store plus a [`BrickRunReport`]. A cancelled or deadline-expired `ctx`
/// stops at the next brick/batch boundary with `interrupted` set — already
/// committed bricks stay durable, so the next call continues where this
/// one stopped. The assembled volume (see [`BrickStore::assemble`]) is
/// bitwise-identical to [`FcnnPipeline::reconstruct`] on the same inputs.
pub fn reconstruct_bricked(
    pipeline: &FcnnPipeline,
    cloud: &PointCloud,
    target: &Grid3,
    dir: impl AsRef<Path>,
    cfg: &BrickReconConfig,
    ctx: &ExecCtx,
) -> Result<(BrickStore, BrickRunReport), CoreError> {
    cfg.validate()?;
    if cloud.is_empty() {
        return Err(CoreError::EmptyCloud);
    }
    let _span = TM_BRICK.span();
    let mut store = BrickStore::open(dir, *target, cfg.brick_dims)?;
    let layout = *store.layout();

    // Resume: re-verify what the ledger claims before trusting it.
    let mut resumed = 0usize;
    let mut recomputed = 0usize;
    if cfg.verify_resumed {
        for b in 0..layout.num_bricks() {
            if !store.is_done(b) {
                continue;
            }
            match store.read_brick(b) {
                Ok(_) => resumed += 1,
                Err(_) => {
                    store.invalidate(b)?;
                    recomputed += 1;
                }
            }
        }
    } else {
        resumed = store.num_done();
    }
    let pending = store.pending();

    let frame = CoordFrame::of_grid(target);
    let same_grid = cloud.grid() == target;
    let sample_ijk: Vec<[usize; 3]> = cloud
        .indices()
        .iter()
        .map(|&idx| cloud.grid().unlinear(idx))
        .collect();

    let halo_bytes = AtomicU64::new(0);
    let inflight = AtomicUsize::new(0);
    let peak_inflight = AtomicUsize::new(0);
    let sent = AtomicUsize::new(0);
    let received = AtomicUsize::new(0);
    let mut max_halo = cfg.halo;
    let mut interrupted = None;
    let mut fatal: Option<CoreError> = None;

    let store_ref = &mut store;
    let committed: usize = std::thread::scope(|s| {
        let (job_tx, job_rx) = mpsc::sync_channel::<BrickJob>(cfg.prefetch);
        let (commit_tx, commit_rx) = mpsc::sync_channel::<(usize, Vec<f32>)>(1);

        let prefetch = s.spawn({
            let pending = &pending;
            let sample_ijk = &sample_ijk;
            let halo_bytes = &halo_bytes;
            let sent = &sent;
            let received = &received;
            move || {
                for &b in pending {
                    if ctx.should_stop() {
                        return;
                    }
                    let (lo, hi) = layout.brick_range(b);
                    let wlo = target.world(lo);
                    let whi = target.world([hi[0] - 1, hi[1] - 1, hi[2] - 1]);
                    let (ghost, border) = gather_ghost(
                        cloud.positions(),
                        sample_ijk,
                        cloud.grid(),
                        wlo,
                        whi,
                        cfg.halo,
                    );
                    halo_bytes.fetch_add(ghost.len() as u64 * GHOST_SAMPLE_BYTES, Ordering::Relaxed);
                    TM_BRICK_HALO_BYTES.add(ghost.len() as u64 * GHOST_SAMPLE_BYTES);
                    if job_tx
                        .send(BrickJob {
                            b,
                            ghost,
                            border,
                            halo: cfg.halo,
                        })
                        .is_err()
                    {
                        return; // downstream shut down
                    }
                    let depth = sent.fetch_add(1, Ordering::Relaxed) + 1
                        - received.load(Ordering::Relaxed);
                    TM_PREFETCH_DEPTH.set(depth as u64);
                }
            }
        });

        let commit = s.spawn({
            let inflight = &inflight;
            move || -> Result<usize, fv_field::FieldError> {
                let mut n = 0usize;
                while let Ok((b, values)) = commit_rx.recv() {
                    let _span = TM_BRICK_COMMIT.span();
                    let bytes = values.len() * 4;
                    let committed = store_ref.commit(b, &values);
                    drop(values);
                    inflight.fetch_sub(bytes, Ordering::Relaxed);
                    committed?;
                    n += 1;
                    TM_BRICK_COMPLETED.incr();
                }
                Ok(n)
            }
        });

        let mut ws = BrickWorkspace::default();
        while let Ok(job) = job_rx.recv() {
            received.fetch_add(1, Ordering::Relaxed);
            if let Some(reason) = ctx.stop_reason() {
                interrupted = Some(reason);
                break;
            }
            chaos::point("brick.recon");
            let _span = TM_BRICK_RECON.span();
            match recon_brick(
                pipeline, cloud, target, &frame, &layout, same_grid, &sample_ijk, job, ctx, &mut ws,
                &halo_bytes, &inflight, &peak_inflight,
            ) {
                Ok(Some((b, mut values, brick_halo))) => {
                    max_halo = max_halo.max(brick_halo);
                    // Models silent corruption of the finished brick buffer
                    // before it reaches durable storage; the commit CRC is
                    // computed *after* this, so detection falls to the
                    // caller's non-finite scan / recompute policy, exactly
                    // like the whole-grid `recon.output` site.
                    chaos::corrupt_f32("brick.output", &mut values);
                    if commit_tx.send((b, values)).is_err() {
                        break; // commit stage died; its join tells us why
                    }
                }
                Ok(None) => {
                    interrupted = ctx.stop_reason();
                    break;
                }
                Err(e) => {
                    fatal = Some(e);
                    break;
                }
            }
        }

        drop(job_rx); // unblocks a prefetch stuck on send
        drop(commit_tx); // lets commit drain its queue and exit
        if let Err(panic) = prefetch.join() {
            std::panic::resume_unwind(panic);
        }
        match commit.join() {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(Ok(n)) => Ok(n),
            Ok(Err(e)) => Err(CoreError::from(e)),
        }
    })?;
    if let Some(e) = fatal {
        return Err(e);
    }
    if interrupted.is_none() {
        interrupted = ctx.stop_reason();
    }

    TM_BRICK_RESUMED.add(resumed as u64);
    TM_BRICK_RECOMPUTED.add(recomputed as u64);
    let report = BrickRunReport {
        total_bricks: layout.num_bricks(),
        completed: committed,
        resumed,
        recomputed,
        interrupted,
        halo_bytes: halo_bytes.load(Ordering::Relaxed),
        peak_inflight_bytes: peak_inflight.load(Ordering::Relaxed),
        max_halo,
    };
    Ok((store, report))
}

/// On-demand single-brick reconstruction for serving layers.
///
/// [`reconstruct_bricked`] drives a whole volume through a disk-backed
/// store; a network server instead wants to compute *one brick at a time,
/// in whatever order its scheduler picks*, and ship each result straight
/// to a socket. `BrickStreamer` is that seam: it owns the derived state a
/// brick computation needs (layout, coordinate frame, the cloud's integer
/// index table, reusable workspaces) and exposes [`BrickStreamer::recon`]
/// for any brick index.
///
/// Every brick goes through the same ghost-gather + certified-kNN +
/// forward-pass path as the pipelined run, and each brick's value is a
/// pure function of `(pipeline, cloud, target, brick index)` — halo growth
/// is geometry-only — so results are **bitwise-identical** to both
/// [`reconstruct_bricked`] and the whole-grid
/// [`FcnnPipeline::reconstruct`], regardless of the order bricks are
/// requested, interleaving with other streams, or thread width.
///
/// The `cloud` and `pipeline` handed to [`BrickStreamer::recon`] must be
/// the ones `new` was called with; the streamer only caches state derived
/// from them.
pub struct BrickStreamer {
    layout: BrickLayout,
    frame: CoordFrame,
    same_grid: bool,
    sample_ijk: Vec<[usize; 3]>,
    cfg: BrickReconConfig,
    ws: BrickWorkspace,
    halo_bytes: AtomicU64,
    inflight: AtomicUsize,
    peak_inflight: AtomicUsize,
    max_halo: usize,
}

impl BrickStreamer {
    /// Build the per-volume state for streaming `target` bricked by
    /// `cfg.brick_dims` from `cloud`. Cost is O(cloud) — no dense
    /// allocation proportional to the target volume is ever made.
    pub fn new(
        cloud: &PointCloud,
        target: &Grid3,
        cfg: &BrickReconConfig,
    ) -> Result<Self, CoreError> {
        cfg.validate()?;
        if cloud.is_empty() {
            return Err(CoreError::EmptyCloud);
        }
        let layout = BrickLayout::new(*target, cfg.brick_dims)?;
        let frame = CoordFrame::of_grid(target);
        let same_grid = cloud.grid() == target;
        let sample_ijk: Vec<[usize; 3]> = cloud
            .indices()
            .iter()
            .map(|&idx| cloud.grid().unlinear(idx))
            .collect();
        Ok(Self {
            layout,
            frame,
            same_grid,
            sample_ijk,
            cfg: *cfg,
            ws: BrickWorkspace::default(),
            halo_bytes: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            peak_inflight: AtomicUsize::new(0),
            max_halo: cfg.halo,
        })
    }

    /// The brick decomposition this streamer computes over.
    pub fn layout(&self) -> &BrickLayout {
        &self.layout
    }

    /// Bricks in the decomposition.
    pub fn num_bricks(&self) -> usize {
        self.layout.num_bricks()
    }

    /// Largest halo any brick computed so far needed before its kNN
    /// certificate held.
    pub fn max_halo(&self) -> usize {
        self.max_halo
    }

    /// Ghost-sample bytes gathered across all bricks and halo retries.
    pub fn halo_bytes(&self) -> u64 {
        self.halo_bytes.load(Ordering::Relaxed)
    }

    /// Reconstruct brick `b` and return its dense payload in the brick's
    /// x-fastest local order (the order [`BrickLayout::voxels`] yields).
    ///
    /// Returns `Ok(None)` when `ctx` stopped the run mid-brick.
    pub fn recon(
        &mut self,
        pipeline: &FcnnPipeline,
        cloud: &PointCloud,
        b: usize,
        ctx: &ExecCtx,
    ) -> Result<Option<Vec<f32>>, CoreError> {
        if b >= self.layout.num_bricks() {
            return Err(CoreError::BadConfig(format!(
                "brick index {b} out of range ({} bricks)",
                self.layout.num_bricks()
            )));
        }
        let _span = TM_BRICK_RECON.span();
        let target = *self.layout.grid();
        let (lo, hi) = self.layout.brick_range(b);
        let wlo = target.world(lo);
        let whi = target.world([hi[0] - 1, hi[1] - 1, hi[2] - 1]);
        let (ghost, border) = gather_ghost(
            cloud.positions(),
            &self.sample_ijk,
            cloud.grid(),
            wlo,
            whi,
            self.cfg.halo,
        );
        self.halo_bytes
            .fetch_add(ghost.len() as u64 * GHOST_SAMPLE_BYTES, Ordering::Relaxed);
        TM_BRICK_HALO_BYTES.add(ghost.len() as u64 * GHOST_SAMPLE_BYTES);
        let job = BrickJob {
            b,
            ghost,
            border,
            halo: self.cfg.halo,
        };
        match recon_brick(
            pipeline,
            cloud,
            &target,
            &self.frame,
            &self.layout,
            self.same_grid,
            &self.sample_ijk,
            job,
            ctx,
            &mut self.ws,
            &self.halo_bytes,
            &self.inflight,
            &self.peak_inflight,
        )? {
            Some((_, values, brick_halo)) => {
                self.max_halo = self.max_halo.max(brick_halo);
                // `recon_brick` hands inflight-byte ownership to a commit
                // stage that doesn't exist here; settle the gauge now.
                self.inflight.fetch_sub(values.len() * 4, Ordering::Relaxed);
                TM_BRICK_COMPLETED.incr();
                Ok(Some(values))
            }
            None => Ok(None),
        }
    }
}

/// Reconstruct one brick. Returns `Ok(None)` when the context stopped the
/// run mid-brick (the brick is abandoned, staying pending in the ledger).
#[allow(clippy::too_many_arguments)]
fn recon_brick(
    pipeline: &FcnnPipeline,
    cloud: &PointCloud,
    target: &Grid3,
    frame: &CoordFrame,
    layout: &BrickLayout,
    same_grid: bool,
    sample_ijk: &[[usize; 3]],
    job: BrickJob,
    ctx: &ExecCtx,
    ws: &mut BrickWorkspace,
    halo_bytes: &AtomicU64,
    inflight: &AtomicUsize,
    peak_inflight: &AtomicUsize,
) -> Result<Option<(usize, Vec<f32>, usize)>, CoreError> {
    let b = job.b;
    let brick_len = layout.brick_len(b);
    let mut values = vec![0.0f32; brick_len];
    let cur = inflight.fetch_add(brick_len * 4, Ordering::Relaxed) + brick_len * 4;
    peak_inflight.fetch_max(cur, Ordering::Relaxed);
    // On every early return the buffer dies here; balance the gauge.
    struct InflightGuard<'a>(&'a AtomicUsize, usize, bool);
    impl Drop for InflightGuard<'_> {
        fn drop(&mut self) {
            if self.2 {
                self.0.fetch_sub(self.1, Ordering::Relaxed);
            }
        }
    }
    let mut guard = InflightGuard(inflight, brick_len * 4, true);

    // Split the brick's voxels into stored samples (copied bit-for-bit,
    // same-grid only) and queries for the network — the same partition the
    // whole-grid path makes globally.
    ws.queries.clear();
    ws.qpos.clear();
    for (offset, idx) in layout.voxels(b).enumerate() {
        if same_grid {
            if let Ok(pos) = cloud.indices().binary_search(&idx) {
                values[offset] = cloud.values()[pos];
                continue;
            }
        }
        ws.queries.push((offset, idx));
        ws.qpos.push(target.world_linear(idx));
    }

    // Phase 1: certified kNN against the ghost tree, growing the halo
    // until every query's certificate holds. Chunked like the whole-grid
    // batch path; rows land in disjoint slices, so the neighbor buffer is
    // identical at any thread width.
    let k = pipeline.feature_config().k;
    let mut ghost = job.ghost;
    let mut border = job.border;
    let mut halo = job.halo;
    let n = ws.queries.len();
    let mut stride;
    loop {
        stride = k.min(ghost.len());
        ws.neighbors.clear();
        ws.neighbors.resize(
            n * stride,
            Neighbor {
                index: usize::MAX,
                dist_sq: f64::INFINITY,
            },
        );
        if n == 0 {
            break;
        }
        let chunk_rows = fv_runtime::chunk_size(n, 1, usize::MAX);
        let n_chunks = n.div_ceil(chunk_rows);
        if ws.knn.len() < n_chunks {
            ws.knn.resize_with(n_chunks, KnnScratch::default);
        }
        let any_inexact = AtomicBool::new(false);
        let qpos = &ws.qpos;
        let ghost_ref = &ghost;
        let border_ref = &border;
        let run_chunk = |ci: usize, rows_out: &mut [Neighbor], scr: &mut KnnScratch| {
            let q0 = ci * chunk_rows;
            let mut row_buf = Vec::with_capacity(k);
            for (r, row) in rows_out.chunks_mut(stride).enumerate() {
                let q = qpos[q0 + r];
                let exact =
                    ghost_ref.k_nearest_exact(q, k, border_ref.bound_d2(q), scr, &mut row_buf);
                if !exact {
                    any_inexact.store(true, Ordering::Relaxed);
                    return;
                }
                row.copy_from_slice(&row_buf);
            }
        };
        let work = n.saturating_mul(k).saturating_mul(64);
        if stride > 0 && go_parallel(&OP_BRICK_KNN, work) {
            ws.neighbors
                .par_chunks_mut(chunk_rows * stride)
                .zip(ws.knn[..n_chunks].par_iter_mut())
                .enumerate()
                .for_each(|(ci, (rows_out, scr))| run_chunk(ci, rows_out, scr));
        } else if stride > 0 {
            for (ci, (rows_out, scr)) in ws
                .neighbors
                .chunks_mut(chunk_rows * stride)
                .zip(ws.knn[..n_chunks].iter_mut())
                .enumerate()
            {
                run_chunk(ci, rows_out, scr);
            }
        }
        if (stride > 0 && !any_inexact.load(Ordering::Relaxed)) || ghost.is_complete() {
            break;
        }
        // Geometry-only growth: same decision at every thread width.
        halo = halo.saturating_mul(2);
        let (lo, hi) = layout.brick_range(b);
        let wlo = target.world(lo);
        let whi = target.world([hi[0] - 1, hi[1] - 1, hi[2] - 1]);
        let (g, brd) = gather_ghost(cloud.positions(), sample_ijk, cloud.grid(), wlo, whi, halo);
        halo_bytes.fetch_add(g.len() as u64 * GHOST_SAMPLE_BYTES, Ordering::Relaxed);
        TM_BRICK_HALO_BYTES.add(g.len() as u64 * GHOST_SAMPLE_BYTES);
        ghost = g;
        border = brd;
    }

    // Phase 2: feature fill + forward pass in the same batch cadence as
    // the whole-grid path (row values don't depend on batching; the cadence
    // only matches cancellation granularity).
    let fc = pipeline.feature_config();
    let width = fc.input_width();
    let value_norm = pipeline.value_norm();
    let positions = cloud.positions();
    let sample_values = cloud.values();
    let batch = pipeline.prediction_batch();
    for (c0, chunk) in ws.queries.chunks(batch).enumerate() {
        if ctx.should_stop() {
            return Ok(None);
        }
        let base = c0 * batch;
        ws.features.resize(chunk.len(), width);
        for (r, row) in ws.features.as_mut_slice().chunks_mut(width).enumerate() {
            let g = base + r;
            let up = frame.to_unit(ws.qpos[g]);
            let row_neighbors = &ws.neighbors[g * stride..(g + 1) * stride];
            fill_feature_row(
                row,
                k,
                fc.relative_coords,
                up,
                row_neighbors,
                positions,
                sample_values,
                frame,
                value_norm,
            );
        }
        let pred = pipeline.mlp().forward_with(&ws.features, &mut ws.infer)?;
        for (r, &(offset, _)) in chunk.iter().enumerate() {
            values[offset] = value_norm.denormalize(pred[(r, 0)]);
        }
    }

    // Ownership of the inflight bytes passes to the commit stage.
    guard.2 = false;
    Ok(Some((b, values, halo)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(BrickReconConfig::default().validate().is_ok());
        for bad in [
            BrickReconConfig {
                brick_dims: [0, 4, 4],
                ..Default::default()
            },
            BrickReconConfig {
                halo: 0,
                ..Default::default()
            },
            BrickReconConfig {
                prefetch: 0,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn border_bound_is_min_over_closed_faces() {
        let border = Border {
            low: [Some(1.0), None, None],
            high: [None, Some(10.0), None],
        };
        let q = [4.0, 3.0, 0.0];
        // low-x term: (4-1)² = 9; high-y term: (10-3)² = 49.
        assert_eq!(border.bound_d2(q), 9.0);
        // Query beyond a closed plane: defensively unbounded-unsafe.
        assert_eq!(border.bound_d2([0.5, 3.0, 0.0]), 0.0);
        // No closed faces: nothing is excluded.
        let open = Border {
            low: [None; 3],
            high: [None; 3],
        };
        assert_eq!(open.bound_d2(q), f64::INFINITY);
    }

    #[test]
    fn ghost_gather_keeps_exactly_the_box_and_marks_completeness() {
        use fv_field::ScalarField;
        use fv_sampling::PointCloud;
        let g = Grid3::new([8, 8, 8]).unwrap();
        let f = ScalarField::from_world_fn(g, |p| p[0] as f32);
        // Samples on a diagonal: indices 0, 73, 146, ... (i=j=k).
        let idx: Vec<usize> = (0..8).map(|i| g.linear([i, i, i])).collect();
        let cloud = PointCloud::from_indices(&f, idx);
        let ijk: Vec<[usize; 3]> = cloud.indices().iter().map(|&i| g.unlinear(i)).collect();
        // Box around the low corner, halo 1: world [0,2]³ expands to
        // indices [-1, 3]³ → diagonal samples 0..=3.
        let (ghost, border) = gather_ghost(
            cloud.positions(),
            &ijk,
            cloud.grid(),
            [0.0; 3],
            [2.0; 3],
            1,
        );
        assert_eq!(ghost.len(), 4);
        assert!(!ghost.is_complete());
        // Low faces open (box reaches index -1 ≤ 0), high faces closed at
        // plane index 4.
        assert!(border.low.iter().all(|x| x.is_none()));
        assert!(border.high.iter().all(|&x| x == Some(4.0)));
        // A big enough halo covers everything.
        let (all, _) = gather_ghost(
            cloud.positions(),
            &ijk,
            cloud.grid(),
            [0.0; 3],
            [2.0; 3],
            16,
        );
        assert!(all.is_complete());
    }
}
