//! Feature engineering: the paper's `[1×23]` input and `[1×4]` target
//! vectors (Sec. III-D, Fig. 4).
//!
//! For each void location, the `k = 5` nearest sampled points are found
//! with a k-d tree; the feature vector concatenates, for each neighbor,
//! its unit-frame coordinates and normalized scalar value (`k×4` entries),
//! followed by the void location's own unit coordinates (3 entries) —
//! `5·4 + 3 = 23`. The training target is the normalized scalar at the
//! void plus its three dimensionless gradient components (`1 + 3 = 4`);
//! dropping the gradients reproduces the "no gradient" ablation of Fig. 8.

use crate::normalize::{CoordFrame, ValueNorm};
use fv_field::gradient::GradientField;
use fv_field::{Grid3, ScalarField};
use fv_linalg::granularity::{go_parallel, OpCounter};
use fv_linalg::Matrix;
use fv_runtime::telemetry;
use fv_sampling::PointCloud;
use fv_spatial::{KdTree, KnnScratch, Neighbor};
use rayon::prelude::*;

static OP_FEATURE_ROWS: OpCounter = OpCounter::new("core.feature_rows");

// Feature-build telemetry (inert unless FV_TELEMETRY=1): one span per
// batched extraction plus the number of feature rows produced.
static TM_FEATURE_BUILD: telemetry::Site = telemetry::Site::new("core.feature_build", None);
static TM_FEATURE_ROWS: telemetry::Counter = telemetry::Counter::new("core.feature_rows");

/// Reusable buffers for [`FeatureExtractor::features_for_into`]: query
/// world positions, the flat batched k-nearest results, and the per-chunk
/// k-d tree scratch. Keep one alive across reconstruction batches and the
/// feature path stops allocating after its first (largest) batch.
#[derive(Debug, Default)]
pub struct FeatureScratch {
    positions: Vec<[f64; 3]>,
    neighbors: Vec<Neighbor>,
    knn: Vec<KnnScratch>,
}

/// Feature-extraction configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureConfig {
    /// Number of nearest sampled points per void location (paper: 5).
    pub k: usize,
    /// Express neighbor coordinates relative to the void location instead
    /// of absolutely (ablation; the paper uses absolute coordinates).
    pub relative_coords: bool,
    /// Supervise on gradients in addition to the scalar (paper: true;
    /// `false` reproduces Fig. 8's "without gradient" curve).
    pub predict_gradients: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self {
            k: 5,
            relative_coords: false,
            predict_gradients: true,
        }
    }
}

impl FeatureConfig {
    /// Width of the input vector: `k·4 + 3`.
    pub fn input_width(&self) -> usize {
        self.k * 4 + 3
    }

    /// Width of the target vector: 4 with gradients, 1 without.
    pub fn target_width(&self) -> usize {
        if self.predict_gradients {
            4
        } else {
            1
        }
    }
}

/// A reusable feature extractor bound to one sampled cloud.
///
/// Holds the cloud's k-d tree so repeated extractions (training set build,
/// then full-grid reconstruction) share the index.
pub struct FeatureExtractor<'a> {
    cloud: &'a PointCloud,
    tree: KdTree,
    config: FeatureConfig,
    values: &'a [f32],
}

impl<'a> FeatureExtractor<'a> {
    /// Build the extractor (constructs the k-d tree).
    pub fn new(cloud: &'a PointCloud, config: FeatureConfig) -> Self {
        Self {
            tree: KdTree::build(cloud.positions()),
            values: cloud.values(),
            cloud,
            config,
        }
    }

    /// The bound configuration.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Feature matrix for a set of query positions expressed as linear
    /// indices of `grid`. Rows align with `queries`.
    ///
    /// `frame` must be the unit frame of `grid`; `values` the value
    /// normalization fitted on the *training* data.
    pub fn features_for(
        &self,
        grid: &Grid3,
        frame: &CoordFrame,
        values: &ValueNorm,
        queries: &[usize],
    ) -> Matrix<f32> {
        let mut out = Matrix::zeros(0, 0);
        let mut scratch = FeatureScratch::default();
        self.features_for_into(grid, frame, values, queries, &mut out, &mut scratch);
        out
    }

    /// [`Self::features_for`] into reusable buffers: neighborhoods come
    /// from one batched k-d tree pass instead of a tree walk per row, and
    /// both the output matrix and all intermediate storage are recycled
    /// through `scratch`, so a warmed call allocates nothing. Row contents
    /// are bitwise-identical to `features_for` at any thread count.
    pub fn features_for_into(
        &self,
        grid: &Grid3,
        frame: &CoordFrame,
        values: &ValueNorm,
        queries: &[usize],
        out: &mut Matrix<f32>,
        scratch: &mut FeatureScratch,
    ) {
        let _span = TM_FEATURE_BUILD.span();
        TM_FEATURE_ROWS.add(queries.len() as u64);
        let width = self.config.input_width();
        let k = self.config.k;
        let relative = self.config.relative_coords;
        let positions = self.cloud.positions();
        out.resize(queries.len(), width);

        scratch.positions.clear();
        scratch
            .positions
            .extend(queries.iter().map(|&q| grid.world_linear(q)));
        let stride = self.tree.k_nearest_batch_into(
            positions,
            &scratch.positions,
            k,
            &mut scratch.neighbors,
            &mut scratch.knn,
        );
        let query_pos = &scratch.positions;
        let flat = &scratch.neighbors;

        let fill = |row: &mut [f32], r: usize| {
            let up = frame.to_unit(query_pos[r]);
            let neighbors = &flat[r * stride..(r + 1) * stride];
            fill_feature_row(
                row, k, relative, up, neighbors, positions, self.values, frame, values,
            );
        };
        // ~4 scalar ops per feature entry; rows are independent, so the
        // parallel and sequential fills are element-identical.
        let work = queries.len().saturating_mul(width).saturating_mul(4);
        if go_parallel(&OP_FEATURE_ROWS, work) {
            out.as_mut_slice()
                .par_chunks_mut(width)
                .enumerate()
                .for_each(|(r, row)| fill(row, r));
        } else {
            for (r, row) in out.as_mut_slice().chunks_mut(width).enumerate() {
                fill(row, r);
            }
        }
    }
}

/// Write one `[1×(k·4+3)]` feature row from a resolved neighborhood.
///
/// Shared by the whole-grid extractor above and the bricked out-of-core
/// path in [`crate::brick`]: both produce the *same* neighbor set (global
/// cloud indices, ascending `(dist², index)`), so routing them through one
/// fill function makes their feature rows bitwise-identical by
/// construction rather than by careful duplication.
///
/// If the cloud has fewer than `k` points the last neighbor is repeated so
/// the width stays fixed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_feature_row(
    row: &mut [f32],
    k: usize,
    relative: bool,
    up: [f32; 3],
    neighbors: &[Neighbor],
    positions: &[[f64; 3]],
    sample_values: &[f32],
    frame: &CoordFrame,
    values: &ValueNorm,
) {
    for slot in 0..k {
        let n = neighbors
            .get(slot)
            .or_else(|| neighbors.last())
            .expect("cloud checked non-empty at pipeline level");
        let un = frame.to_unit(positions[n.index]);
        let base = slot * 4;
        if relative {
            row[base] = un[0] - up[0];
            row[base + 1] = un[1] - up[1];
            row[base + 2] = un[2] - up[2];
        } else {
            row[base] = un[0];
            row[base + 1] = un[1];
            row[base + 2] = un[2];
        }
        row[base + 3] = values.normalize(sample_values[n.index]);
    }
    row[k * 4] = up[0];
    row[k * 4 + 1] = up[1];
    row[k * 4 + 2] = up[2];
}

/// Build training targets for void locations from the ground-truth field
/// (available in situ for the current timestep).
pub fn training_targets(
    field: &ScalarField,
    frame: &CoordFrame,
    values: &ValueNorm,
    voids: &[usize],
    config: &FeatureConfig,
) -> Matrix<f32> {
    let width = config.target_width();
    let mut out = Matrix::zeros(voids.len(), width);
    if config.predict_gradients {
        let grads = GradientField::compute(field);
        out.as_mut_slice()
            .par_chunks_mut(width)
            .zip(voids.par_iter())
            .for_each(|(row, &idx)| {
                row[0] = values.normalize(field.values()[idx]);
                let g = grads.at_linear(idx);
                for a in 0..3 {
                    row[1 + a] = frame.gradient_to_unit(g[a], a, values);
                }
            });
    } else {
        out.as_mut_slice()
            .par_chunks_mut(width)
            .zip(voids.par_iter())
            .for_each(|(row, &idx)| {
                row[0] = values.normalize(field.values()[idx]);
            });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_sampling::{FieldSampler, RandomSampler};

    fn setup() -> (ScalarField, PointCloud) {
        let g = Grid3::new([8, 8, 8]).unwrap();
        let f = ScalarField::from_world_fn(g, |p| (p[0] + 2.0 * p[1] + 3.0 * p[2]) as f32);
        let cloud = RandomSampler.sample(&f, 0.1, 5);
        (f, cloud)
    }

    #[test]
    fn widths_match_paper() {
        let cfg = FeatureConfig::default();
        assert_eq!(cfg.input_width(), 23);
        assert_eq!(cfg.target_width(), 4);
        let no_grad = FeatureConfig {
            predict_gradients: false,
            ..cfg
        };
        assert_eq!(no_grad.target_width(), 1);
        let k3 = FeatureConfig { k: 3, ..cfg };
        assert_eq!(k3.input_width(), 15);
    }

    #[test]
    fn feature_rows_have_expected_layout() {
        let (f, cloud) = setup();
        let cfg = FeatureConfig::default();
        let frame = CoordFrame::of_grid(f.grid());
        let vnorm = ValueNorm::fit(cloud.values());
        let ex = FeatureExtractor::new(&cloud, cfg);
        let voids = cloud.void_indices();
        let feats = ex.features_for(f.grid(), &frame, &vnorm, &voids[..10]);
        assert_eq!(feats.shape(), (10, 23));
        for (r, &q) in voids[..10].iter().enumerate() {
            let row = feats.row(r);
            // all unit coordinates in [0, 1]
            for slot in 0..5 {
                for a in 0..3 {
                    let c = row[slot * 4 + a];
                    assert!((-0.01..=1.01).contains(&c), "coord {c}");
                }
                let v = row[slot * 4 + 3];
                assert!((-0.01..=1.01).contains(&v), "value {v}");
            }
            // void coords are the query position in unit frame
            let uq = frame.to_unit(f.grid().world_linear(q));
            assert!((row[20] - uq[0]).abs() < 1e-6);
            assert!((row[21] - uq[1]).abs() < 1e-6);
            assert!((row[22] - uq[2]).abs() < 1e-6);
        }
    }

    #[test]
    fn nearest_neighbor_is_first_slot() {
        let (f, cloud) = setup();
        let cfg = FeatureConfig::default();
        let frame = CoordFrame::of_grid(f.grid());
        let vnorm = ValueNorm::fit(cloud.values());
        let ex = FeatureExtractor::new(&cloud, cfg);
        // Query exactly at a sampled point: first neighbor must be itself.
        let sample_idx = cloud.indices()[3];
        let feats = ex.features_for(f.grid(), &frame, &vnorm, &[sample_idx]);
        let row = feats.row(0);
        let up = frame.to_unit(f.grid().world_linear(sample_idx));
        assert!((row[0] - up[0]).abs() < 1e-6);
        assert!((row[3] - vnorm.normalize(cloud.values()[3])).abs() < 1e-6);
    }

    #[test]
    fn relative_coords_shift_neighbors() {
        let (f, cloud) = setup();
        let frame = CoordFrame::of_grid(f.grid());
        let vnorm = ValueNorm::fit(cloud.values());
        let absolute = FeatureExtractor::new(&cloud, FeatureConfig::default());
        let relative = FeatureExtractor::new(
            &cloud,
            FeatureConfig {
                relative_coords: true,
                ..FeatureConfig::default()
            },
        );
        let q = cloud.void_indices()[0];
        let fa = absolute.features_for(f.grid(), &frame, &vnorm, &[q]);
        let fr = relative.features_for(f.grid(), &frame, &vnorm, &[q]);
        let uq = frame.to_unit(f.grid().world_linear(q));
        for slot in 0..5 {
            for (a, &uqa) in uq.iter().enumerate() {
                let abs_c = fa.row(0)[slot * 4 + a];
                let rel_c = fr.row(0)[slot * 4 + a];
                assert!((abs_c - uqa - rel_c).abs() < 1e-6);
            }
            // values identical
            assert_eq!(fa.row(0)[slot * 4 + 3], fr.row(0)[slot * 4 + 3]);
        }
    }

    #[test]
    fn tiny_cloud_pads_neighbors() {
        let g = Grid3::new([4, 4, 4]).unwrap();
        let f = ScalarField::from_world_fn(g, |p| p[0] as f32);
        let cloud = PointCloud::from_indices(&f, vec![0, 63]);
        let cfg = FeatureConfig::default();
        let ex = FeatureExtractor::new(&cloud, cfg);
        let frame = CoordFrame::of_grid(&g);
        let vnorm = ValueNorm::fit(cloud.values());
        let feats = ex.features_for(&g, &frame, &vnorm, &[30]);
        assert_eq!(feats.shape(), (1, 23));
        // slots 2..5 repeat the second (last available) neighbor
        let row = feats.row(0);
        for slot in 2..5 {
            for off in 0..4 {
                assert_eq!(row[slot * 4 + off], row[4 + off]);
            }
        }
    }

    #[test]
    fn targets_scalar_and_gradient() {
        let (f, cloud) = setup();
        let cfg = FeatureConfig::default();
        let frame = CoordFrame::of_grid(f.grid());
        let vnorm = ValueNorm::fit(f.values()); // full-range norm for clarity
        let voids = cloud.void_indices();
        let t = training_targets(&f, &frame, &vnorm, &voids[..6], &cfg);
        assert_eq!(t.shape(), (6, 4));
        // f = x + 2y + 3z on a 7-extent cube; value range = 42.
        // unit-gradients: 1*7/42, 2*7/42, 3*7/42
        for r in 0..6 {
            let row = t.row(r);
            assert!((row[1] - 7.0 / 42.0).abs() < 1e-3, "gx {}", row[1]);
            assert!((row[2] - 14.0 / 42.0).abs() < 1e-3);
            assert!((row[3] - 21.0 / 42.0).abs() < 1e-3);
        }
        let scalar_only = FeatureConfig {
            predict_gradients: false,
            ..cfg
        };
        let t1 = training_targets(&f, &frame, &vnorm, &voids[..6], &scalar_only);
        assert_eq!(t1.shape(), (6, 1));
        for r in 0..6 {
            assert_eq!(t1.row(r)[0], t.row(r)[0]);
        }
    }
}
