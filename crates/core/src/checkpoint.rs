//! Crash-safe, generation-numbered pipeline checkpoints.
//!
//! An in-situ session cannot afford a checkpoint that is *silently* bad:
//! a torn write during a node failure, or a bit flip on scratch storage,
//! must surface as "this generation is corrupt, use the previous one" —
//! not as a model full of garbage weights. [`CheckpointStore`] provides
//! that contract:
//!
//! * every checkpoint is written atomically (temp + fsync + rename), so a
//!   crash mid-save leaves at worst a stale `*.tmp` that the next
//!   [`CheckpointStore::open`] sweeps away;
//! * every checkpoint carries an envelope with an explicit payload length
//!   and a trailing CRC-32 over the serialized pipeline, validated on
//!   load;
//! * the store keeps the last *K* generations and
//!   [`CheckpointStore::load_latest`] walks them newest-first, skipping
//!   corrupt or truncated files, so one bad generation degrades recovery
//!   by one save interval instead of killing the session.
//!
//! Envelope layout (little-endian):
//!
//! ```text
//! magic "FVCK" | payload_len u64 | payload (FVPL pipeline bytes) | crc32 u32
//! ```

use crate::error::CoreError;
use crate::pipeline::FcnnPipeline;
use fv_field::checksum::crc32;
use fv_field::FieldError;
use fv_nn::serialize::write_file_atomic;
use std::io::Read;
use std::path::{Path, PathBuf};

// Checkpoint-I/O telemetry (inert unless FV_TELEMETRY=1): spans around
// every save/load plus the retry count, so slow or flaky scratch storage
// shows up in the end-of-run snapshot.
static TM_SAVE: fv_runtime::telemetry::Site =
    fv_runtime::telemetry::Site::new("ckpt.save", None);
static TM_LOAD: fv_runtime::telemetry::Site =
    fv_runtime::telemetry::Site::new("ckpt.load", None);
static TM_RETRIES: fv_runtime::telemetry::Counter =
    fv_runtime::telemetry::Counter::new("ckpt.retries");
static TM_SAVE_BYTES: fv_runtime::telemetry::Counter =
    fv_runtime::telemetry::Counter::new("ckpt.saved_bytes");

const MAGIC: &[u8; 4] = b"FVCK";
/// Ceiling on an envelope payload (4 GiB) — larger lengths are corrupt.
const MAX_PAYLOAD: u64 = 1 << 32;
const PREFIX: &str = "ckpt-";
const EXT: &str = "fvck";

/// A directory of verified, generation-numbered pipeline checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    generations: Vec<u64>,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory, keeping at most
    /// `keep` generations. Sweeps leftover `*.tmp` files from interrupted
    /// saves and indexes the generations already on disk.
    pub fn open(dir: impl AsRef<Path>, keep: usize) -> Result<Self, CoreError> {
        if keep == 0 {
            return Err(CoreError::BadConfig(
                "checkpoint store must keep at least 1 generation".into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        // Interrupted atomic saves leave `*.tmp` debris (the real file was
        // never renamed); sweep it before indexing, via the shared helper
        // every crash-safe store in the workspace uses.
        fv_field::io::sweep_tmp_files(&dir).map_err(io_err)?;
        let mut generations = Vec::new();
        for entry in std::fs::read_dir(&dir).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(gen) = parse_generation(&name) {
                generations.push(gen);
            }
        }
        generations.sort_unstable();
        Ok(Self {
            dir,
            keep,
            generations,
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Generations currently on disk, oldest first.
    pub fn generations(&self) -> &[u64] {
        &self.generations
    }

    /// The newest generation number, if any checkpoint exists.
    pub fn latest(&self) -> Option<u64> {
        self.generations.last().copied()
    }

    /// On-disk path of generation `gen` (it may or may not exist).
    pub fn path_for(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("{PREFIX}{gen:08}.{EXT}"))
    }

    /// Save `pipeline` as a new generation, then prune to the last `keep`
    /// generations. Returns the new generation number.
    pub fn save(&mut self, pipeline: &FcnnPipeline) -> Result<u64, CoreError> {
        let outcome = self.save_with_retry(pipeline, &fv_runtime::retry::Backoff::none())?;
        Ok(outcome.0)
    }

    /// [`Self::save`] with retry-with-backoff for transient I/O failures
    /// (shared scratch filesystems hiccup; one failed save must not cost
    /// the session its recovery point). Returns the new generation number
    /// and how many retries the save needed. The atomic-rename protocol
    /// makes retries safe: a failed attempt leaves at worst a swept-on-open
    /// `*.tmp`, never a torn checkpoint.
    pub fn save_with_retry(
        &mut self,
        pipeline: &FcnnPipeline,
        policy: &fv_runtime::retry::Backoff,
    ) -> Result<(u64, usize), CoreError> {
        let _span = TM_SAVE.span();
        let gen = self.latest().map_or(0, |g| g + 1);
        let mut payload = Vec::new();
        pipeline.write_to(&mut payload)?;
        let digest = crc32(&payload);
        let outcome = fv_runtime::retry::retry(policy, |_attempt| {
            if let Some(e) = fv_runtime::chaos::io_error("ckpt.save") {
                return Err(io_err(e));
            }
            write_file_atomic(self.path_for(gen), |w| {
                use std::io::Write;
                w.write_all(MAGIC)?;
                w.write_all(&(payload.len() as u64).to_le_bytes())?;
                w.write_all(&payload)?;
                w.write_all(&digest.to_le_bytes())?;
                Ok(())
            })
            .map_err(CoreError::from)
        })?;
        self.generations.push(gen);
        while self.generations.len() > self.keep {
            let old = self.generations.remove(0);
            std::fs::remove_file(self.path_for(old)).ok();
        }
        TM_RETRIES.add(outcome.retries as u64);
        TM_SAVE_BYTES.add(payload.len() as u64);
        Ok((gen, outcome.retries))
    }

    /// Load a specific generation, validating the envelope checksum.
    pub fn load_generation(&self, gen: u64) -> Result<FcnnPipeline, CoreError> {
        let _span = TM_LOAD.span();
        if let Some(e) = fv_runtime::chaos::io_error("ckpt.load") {
            return Err(io_err(e));
        }
        let mut r = std::io::BufReader::new(std::fs::File::open(self.path_for(gen)).map_err(io_err)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(io_err)?;
        if &magic != MAGIC {
            return Err(format_err(format!("bad checkpoint magic {magic:?}")));
        }
        let mut len_buf = [0u8; 8];
        r.read_exact(&mut len_buf).map_err(io_err)?;
        let payload_len = u64::from_le_bytes(len_buf);
        if payload_len == 0 || payload_len > MAX_PAYLOAD {
            return Err(format_err(format!(
                "implausible checkpoint payload length {payload_len}"
            )));
        }
        // Read in bounded chunks so a corrupt length errors before a
        // multi-gigabyte allocation.
        const CHUNK: u64 = 1 << 16;
        let mut payload = Vec::new();
        let mut remaining = payload_len;
        while remaining > 0 {
            let take = remaining.min(CHUNK) as usize;
            let start = payload.len();
            payload.resize(start + take, 0);
            r.read_exact(&mut payload[start..]).map_err(io_err)?;
            remaining -= take as u64;
        }
        let mut crc_buf = [0u8; 4];
        r.read_exact(&mut crc_buf).map_err(io_err)?;
        let stored = u32::from_le_bytes(crc_buf);
        let computed = crc32(&payload);
        if stored != computed {
            return Err(format_err(format!(
                "checkpoint checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        FcnnPipeline::read_from(payload.as_slice())
    }

    /// Load the newest generation that validates, walking backwards past
    /// corrupt or truncated files. Returns `Ok(None)` when no generation
    /// is loadable.
    pub fn load_latest(&self) -> Result<Option<(u64, FcnnPipeline)>, CoreError> {
        for &gen in self.generations.iter().rev() {
            if let Ok(pipeline) = self.load_generation(gen) {
                return Ok(Some((gen, pipeline)));
            }
        }
        Ok(None)
    }
}

fn parse_generation(name: &str) -> Option<u64> {
    let stem = name.strip_prefix(PREFIX)?.strip_suffix(&format!(".{EXT}"))?;
    stem.parse().ok()
}

fn io_err(e: std::io::Error) -> CoreError {
    CoreError::Field(FieldError::Io(e))
}

fn format_err(msg: String) -> CoreError {
    CoreError::Field(FieldError::Format(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use fv_field::grid::Grid3;
    use fv_field::volume::ScalarField;

    fn tiny_pipeline(seed: u64) -> FcnnPipeline {
        let g = Grid3::new([10, 10, 6]).unwrap();
        let field = ScalarField::from_world_fn(g, |p| {
            ((p[0] * 1.3).sin() + (p[1] * 0.7).cos() + p[2] * 0.2) as f32
        });
        let cfg = PipelineConfig::small_for_tests();
        FcnnPipeline::train(&field, &cfg, seed).unwrap()
    }

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fvck_test_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn save_load_roundtrip_and_pruning() {
        let dir = temp_store_dir("roundtrip");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        assert!(store.latest().is_none());
        assert!(store.load_latest().unwrap().is_none());

        let p = tiny_pipeline(3);
        assert_eq!(store.save(&p).unwrap(), 0);
        assert_eq!(store.save(&p).unwrap(), 1);
        assert_eq!(store.save(&p).unwrap(), 2);
        // pruned to the last 2 generations
        assert_eq!(store.generations(), &[1, 2]);
        assert!(!store.path_for(0).exists());

        let (gen, restored) = store.load_latest().unwrap().unwrap();
        assert_eq!(gen, 2);
        assert_eq!(restored.mlp(), p.mlp());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_generation() {
        let dir = temp_store_dir("fallback");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        let p = tiny_pipeline(5);
        store.save(&p).unwrap();
        store.save(&p).unwrap();

        // truncate the newest generation mid-payload
        let newest = store.path_for(1);
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        let (gen, restored) = store.load_latest().unwrap().unwrap();
        assert_eq!(gen, 0, "should have skipped the truncated generation");
        assert_eq!(restored.mlp(), p.mlp());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_is_detected() {
        let dir = temp_store_dir("bitflip");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        let p = tiny_pipeline(7);
        store.save(&p).unwrap();
        let path = store.path_for(0);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load_generation(0).is_err());
        assert!(store.load_latest().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_sweeps_leftover_temp_files_and_reindexes() {
        let dir = temp_store_dir("sweep");
        {
            let mut store = CheckpointStore::open(&dir, 4).unwrap();
            let p = tiny_pipeline(9);
            store.save(&p).unwrap();
            store.save(&p).unwrap();
        }
        // simulate a crash mid-save: a stray temp file
        std::fs::write(dir.join("ckpt-00000002.fvck.1234.tmp"), b"partial").unwrap();
        let valid_bytes = std::fs::read(dir.join("ckpt-00000001.fvck")).unwrap();
        let store = CheckpointStore::open(&dir, 4).unwrap();
        assert_eq!(store.generations(), &[0, 1]);
        assert_eq!(
            std::fs::read(dir.join("ckpt-00000001.fvck")).unwrap(),
            valid_bytes,
            "sweep must not touch valid checkpoints"
        );
        assert!(
            store.load_latest().unwrap().is_some(),
            "valid generations must still load after the sweep"
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .collect();
        assert!(leftovers.is_empty(), "temp files not swept");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_keep_is_rejected() {
        let dir = temp_store_dir("zerokeep");
        assert!(matches!(
            CheckpointStore::open(&dir, 0),
            Err(CoreError::BadConfig(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_with_retry_rides_out_injected_io_errors() {
        use fv_runtime::chaos::{self, FaultPlan};
        use fv_runtime::retry::Backoff;
        let _serial = crate::CHAOS_TEST_LOCK.lock().unwrap();
        let dir = temp_store_dir("retryok");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        let p = tiny_pipeline(11);
        // Fail the first two save attempts; a 4-attempt policy must succeed.
        let _guard = chaos::install(FaultPlan::new(42).io_error_first("ckpt.save", 2));
        let policy = Backoff {
            attempts: 4,
            base: std::time::Duration::from_millis(1),
            factor: 2,
            max: std::time::Duration::from_millis(4),
        };
        let (gen, retries) = store.save_with_retry(&p, &policy).unwrap();
        assert_eq!(gen, 0);
        assert_eq!(retries, 2, "both injected failures should be retried away");
        drop(_guard);
        let restored = store.load_generation(0).unwrap();
        assert_eq!(restored.mlp(), p.mlp());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_with_retry_surfaces_persistent_failure() {
        use fv_runtime::chaos::{self, FaultPlan};
        use fv_runtime::retry::Backoff;
        let _serial = crate::CHAOS_TEST_LOCK.lock().unwrap();
        let dir = temp_store_dir("retryfail");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        let p = tiny_pipeline(13);
        let _guard = chaos::install(FaultPlan::new(7).io_error_at("ckpt.save", 1.0));
        let policy = Backoff {
            attempts: 3,
            base: std::time::Duration::from_millis(1),
            factor: 2,
            max: std::time::Duration::from_millis(2),
        };
        assert!(store.save_with_retry(&p, &policy).is_err());
        assert!(store.generations().is_empty(), "failed save must not be indexed");
        drop(_guard);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_generation_has_a_chaos_site() {
        use fv_runtime::chaos::{self, FaultPlan};
        let _serial = crate::CHAOS_TEST_LOCK.lock().unwrap();
        let dir = temp_store_dir("loadsite");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        let p = tiny_pipeline(17);
        store.save(&p).unwrap();
        let _guard = chaos::install(FaultPlan::new(3).io_error_at("ckpt.load", 1.0));
        assert!(store.load_generation(0).is_err());
        drop(_guard);
        assert!(store.load_generation(0).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
