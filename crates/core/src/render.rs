//! Qualitative output: greyscale slice renders and CSV dumps.
//!
//! The paper's Figs. 2–3 show side-by-side volume renders of FCNN vs
//! classical reconstructions. Offline we emit z-slices as portable graymap
//! (PGM) images — viewable anywhere — plus CSV for external plotting.

use fv_field::{FieldError, ScalarField};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Write the z-slice `plane` of a field as an 8-bit binary PGM image,
/// normalizing the *whole field's* range so multiple methods' slices share
/// one color scale.
pub fn write_slice_pgm<W: Write>(
    field: &ScalarField,
    plane: usize,
    w: W,
) -> Result<(), FieldError> {
    let [nx, ny, nz] = field.grid().dims();
    if plane >= nz {
        return Err(FieldError::Format(format!(
            "plane {plane} out of range (nz = {nz})"
        )));
    }
    let (lo, hi) = field.min_max().unwrap_or((0.0, 1.0));
    let scale = if hi > lo { 255.0 / (hi - lo) } else { 0.0 };
    let slice = field.slice_z(plane);
    let mut w = BufWriter::new(w);
    writeln!(w, "P5")?;
    writeln!(w, "{nx} {ny}")?;
    writeln!(w, "255")?;
    let bytes: Vec<u8> = slice
        .iter()
        .map(|&v| (((v - lo) * scale).clamp(0.0, 255.0)) as u8)
        .collect();
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Write the z-slice `plane` as CSV (`i,j,value` rows with a header).
pub fn write_slice_csv<W: Write>(
    field: &ScalarField,
    plane: usize,
    w: W,
) -> Result<(), FieldError> {
    let [nx, ny, nz] = field.grid().dims();
    if plane >= nz {
        return Err(FieldError::Format(format!(
            "plane {plane} out of range (nz = {nz})"
        )));
    }
    let slice = field.slice_z(plane);
    let mut w = BufWriter::new(w);
    writeln!(w, "i,j,value")?;
    for j in 0..ny {
        for i in 0..nx {
            writeln!(w, "{i},{j},{}", slice[i + nx * j])?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Save a slice PGM to a file path.
pub fn save_slice_pgm(
    field: &ScalarField,
    plane: usize,
    path: impl AsRef<Path>,
) -> Result<(), FieldError> {
    write_slice_pgm(field, plane, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_field::Grid3;

    fn field() -> ScalarField {
        let g = Grid3::new([4, 3, 2]).unwrap();
        ScalarField::from_vec(g, (0..24).map(|v| v as f32).collect()).unwrap()
    }

    #[test]
    fn pgm_structure() {
        let f = field();
        let mut buf = Vec::new();
        write_slice_pgm(&f, 0, &mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf[..11]);
        assert!(text.starts_with("P5\n4 3\n255"));
        // 12 pixels follow the header
        let header_len = b"P5\n4 3\n255\n".len();
        assert_eq!(buf.len() - header_len, 12);
        // full-field normalization: value 23 (field max) is not in plane 0,
        // so plane 0's max pixel is below 255
        let pixels = &buf[header_len..];
        assert!(*pixels.iter().max().unwrap() < 255);
    }

    #[test]
    fn pgm_plane_bounds_checked() {
        let f = field();
        let mut buf = Vec::new();
        assert!(write_slice_pgm(&f, 5, &mut buf).is_err());
    }

    #[test]
    fn csv_rows() {
        let f = field();
        let mut buf = Vec::new();
        write_slice_csv(&f, 1, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "i,j,value");
        assert_eq!(lines.len(), 1 + 12);
        assert_eq!(lines[1], "0,0,12");
    }

    #[test]
    fn constant_field_pgm_is_black() {
        let g = Grid3::new([2, 2, 1]).unwrap();
        let f = ScalarField::filled(g, 7.0);
        let mut buf = Vec::new();
        write_slice_pgm(&f, 0, &mut buf).unwrap();
        let header_len = b"P5\n2 2\n255\n".len();
        assert!(buf[header_len..].iter().all(|&b| b == 0));
    }
}
